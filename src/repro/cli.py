"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user the paper's headline analyses without writing
code:

=============  =====================================================
command        output
=============  =====================================================
``table1``     Table I re-derived for a configuration
``flow``       the seven-stage design flow report
``droop``      Fig. 2 droop numbers + ASCII voltage map
``fig6``       the Fig. 6 disconnection Monte Carlo
``clock``      clock setup simulation (optionally with faults)
``loadtime``   Section VII JTAG load-time table
``yield``      Section V bonding-yield table
``shmoo``      prototype characterization (frequency binning)
``validate``   cross-subsystem consistency checks
``report``     full Markdown design review (``--output`` to a file)
``bringup``    bring-up sequence on a randomly-faulted wafer
``remap``      logical fault-free grid extraction
``lot``        production-lot binning at 1 vs 2 pillars/pad
=============  =====================================================

All commands accept ``--rows/--cols`` to scale the array.
"""

from __future__ import annotations

import argparse
import sys

from .config import SystemConfig


def _add_size_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=32, help="tile rows")
    parser.add_argument("--cols", type=int, default=32, help="tile columns")


def _config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig(rows=args.rows, cols=args.cols)


def _cmd_table1(args: argparse.Namespace) -> int:
    from .flow.report import table1_report

    print(table1_report(_config(args)).render())
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from .flow.designer import run_design_flow

    flow = run_design_flow(_config(args), connectivity_trials=args.trials)
    print(flow.summary())
    return 0 if flow.ok else 1


def _cmd_droop(args: argparse.Namespace) -> int:
    from .analysis.render import render_field
    from .pdn.solver import solve_pdn

    solution = solve_pdn(_config(args))
    print(
        f"edge {solution.max_voltage:.3f}V -> centre {solution.min_voltage:.3f}V, "
        f"{solution.total_current_a:.0f}A, {solution.supply_power_w:.0f}W"
    )
    print(render_field(solution.voltages))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .noc.connectivity import monte_carlo_disconnection

    stats = monte_carlo_disconnection(
        _config(args),
        fault_counts=list(range(1, args.max_faults + 1)),
        trials=args.trials,
        seed=args.seed,
    )
    print(f"{'faults':>7} {'single %':>9} {'dual %':>8}")
    for s in stats:
        print(f"{s.fault_count:>7} {s.mean_single_pct:>9.2f} {s.mean_dual_pct:>8.3f}")
    return 0


def _cmd_clock(args: argparse.Namespace) -> int:
    from .clock.forwarding import render_forwarding_map, simulate_clock_setup
    from .noc.faults import random_fault_map

    config = _config(args)
    faulty = (
        random_fault_map(config, args.faults, rng=args.seed).faulty
        if args.faults
        else frozenset()
    )
    result = simulate_clock_setup(config, faulty=faulty)
    print(render_forwarding_map(result))
    print(
        f"coverage {result.coverage:.1%}, max depth {result.max_hops} hops, "
        f"setup {result.setup_time_s() * 1e6:.1f}us"
    )
    return 0


def _cmd_loadtime(args: argparse.Namespace) -> int:
    from .dft.multichain import paper_load_time_comparison

    comparison = paper_load_time_comparison(_config(args))
    print(f"single chain: {comparison['single_chain_hours']:.2f} h")
    print(f"row chains:   {comparison['multi_chain_minutes']:.2f} min")
    print(f"speedup:      {comparison['speedup']:.0f}x")
    return 0


def _cmd_yield(args: argparse.Namespace) -> int:
    from .io.bonding import BondingYieldModel

    config = _config(args)
    for pillars in (1, 2):
        model = BondingYieldModel(
            chiplet_count=config.chiplets,
            io_count=config.ios_per_compute_chiplet,
            pillars_per_pad=pillars,
        )
        print(
            f"{pillars} pillar(s)/pad: chiplet yield {model.chiplet_yield:.5f}, "
            f"expected faulty {model.expected_faulty:.2f}"
        )
    return 0


def _cmd_shmoo(args: argparse.Namespace) -> int:
    from .flow.characterize import characterization_report, characterize

    result = characterize(_config(args), seed=args.seed)
    print(characterization_report(result))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .flow.validate import validate_design

    report = validate_design(_config(args))
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .flow.export import design_report_markdown, export_design_report

    if args.output:
        export_design_report(
            args.output, _config(args), connectivity_trials=args.trials
        )
        print(f"wrote design report to {args.output}")
    else:
        print(design_report_markdown(_config(args), connectivity_trials=args.trials))
    return 0


def _cmd_bringup(args: argparse.Namespace) -> int:
    from .flow.bringup import fault_map_to_json, run_bringup
    from .noc.faults import random_fault_map

    config = _config(args)
    faults = set(random_fault_map(config, args.faults, rng=args.seed).faulty)
    report = run_bringup(config, true_bonding_faults=faults)
    print(f"dead tiles located: {sorted(report.bonding_faults)}")
    print(f"unroll tests run:   {report.unroll_tests_run}")
    print(f"clock-unreachable:  {sorted(report.clock_unreachable) or 'none'}")
    print(f"usable tiles:       {report.usable_tiles}/{config.tiles}")
    print(fault_map_to_json(report.final_map))
    return 0


def _cmd_remap(args: argparse.Namespace) -> int:
    from .noc.faults import random_fault_map
    from .noc.remap import (
        best_logical_grid,
        largest_fault_free_rectangle,
        row_column_deletion,
    )

    config = _config(args)
    fmap = random_fault_map(config, args.faults, rng=args.seed)
    rect = largest_fault_free_rectangle(fmap)
    deletion = row_column_deletion(fmap)
    best = best_logical_grid(fmap)
    print(f"faults: {sorted(fmap.faulty)}")
    print(f"contiguous rectangle: {rect.rows}x{rect.cols} = {rect.tiles} tiles")
    print(f"row/col deletion:     {deletion.rows}x{deletion.cols} = {deletion.tiles} tiles")
    print(f"best logical grid:    {best.rows}x{best.cols} = {best.tiles} tiles")
    return 0


def _cmd_lot(args: argparse.Namespace) -> int:
    from .yieldmodel.lots import pillar_redundancy_lot_comparison

    lots = pillar_redundancy_lot_comparison(
        _config(args), wafers=args.wafers, seed=args.seed
    )
    for pillars, report in lots.items():
        print(
            f"{pillars} pillar(s)/pad: {report.bins} "
            f"(mean faults {report.mean_faults:.2f}, "
            f"sellable {report.sellable_fraction:.0%})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Waferscale chiplet processor design-flow analyses",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, handler, extras in (
        ("table1", _cmd_table1, ()),
        ("flow", _cmd_flow, ("trials",)),
        ("droop", _cmd_droop, ()),
        ("fig6", _cmd_fig6, ("trials", "seed", "max_faults")),
        ("clock", _cmd_clock, ("seed", "faults")),
        ("loadtime", _cmd_loadtime, ()),
        ("yield", _cmd_yield, ()),
        ("shmoo", _cmd_shmoo, ("seed",)),
        ("report", _cmd_report, ("trials", "output")),
        ("bringup", _cmd_bringup, ("seed", "faults")),
        ("remap", _cmd_remap, ("seed", "faults")),
        ("lot", _cmd_lot, ("seed", "wafers")),
        ("validate", _cmd_validate, ()),
    ):
        p = sub.add_parser(name)
        _add_size_args(p)
        if "trials" in extras:
            p.add_argument("--trials", type=int, default=10)
        if "seed" in extras:
            p.add_argument("--seed", type=int, default=0)
        if "max_faults" in extras:
            p.add_argument("--max-faults", dest="max_faults", type=int, default=10)
        if "faults" in extras:
            p.add_argument("--faults", type=int, default=0)
        if "output" in extras:
            p.add_argument("--output", type=str, default="")
        if "wafers" in extras:
            p.add_argument("--wafers", type=int, default=50)
        p.set_defaults(handler=handler)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":     # pragma: no cover
    sys.exit(main())
