"""Test infrastructure: JTAG, DAP chains, unrolling, multi-chain (Sec. VII)."""

from .assembly import (
    AssemblyPolicy,
    assemble_wafer,
    evaluate_policy,
    sweep_check_intervals,
)
from .broadcast import BroadcastLoader, LoadMode
from .dap import CoreDap, TileDapChain
from .jtag import JtagChain, JtagDevice, TapController, TapState
from .mbist import (
    FaultKind,
    FaultyBank,
    InjectedFault,
    march_c_minus,
    mats_plus,
    mbist_runtime_s,
)
from .multichain import ChainPlan, MultiChainPlan, load_time_model
from .probe import PadSet, ProbeCard, can_probe, probe_plan
from .unrolling import ChainTestSession, TileUnderTest, locate_faulty_tiles

__all__ = [
    "AssemblyPolicy",
    "assemble_wafer",
    "evaluate_policy",
    "sweep_check_intervals",
    "BroadcastLoader",
    "LoadMode",
    "CoreDap",
    "TileDapChain",
    "JtagChain",
    "JtagDevice",
    "TapController",
    "TapState",
    "FaultKind",
    "FaultyBank",
    "InjectedFault",
    "march_c_minus",
    "mats_plus",
    "mbist_runtime_s",
    "ChainPlan",
    "MultiChainPlan",
    "load_time_model",
    "PadSet",
    "ProbeCard",
    "can_probe",
    "probe_plan",
    "ChainTestSession",
    "TileUnderTest",
    "locate_faulty_tiles",
]
