"""Broadcast program loading across cores and tiles (paper Section VII).

Analysis of the paper's irregular workloads showed most cores run the
*same* program (independently, on different data).  The test circuitry
exploits this: the tile's TDI is broadcast to all 14 DAPs and TDO is taken
from the first core, so the external controller shifts each program word
once per tile instead of once per core — a 14x latency reduction — and
the same trick extends across tiles in a chain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import JtagError
from .dap import DAP_ACCESS_DR_BITS, ChainMode, TileDapChain


class LoadMode(enum.Enum):
    """How program/data words reach the cores."""

    UNICAST = "unicast"         # distinct image per core (chained shifts)
    BROADCAST_TILE = "broadcast_tile"   # same image to all cores of a tile
    BROADCAST_CHAIN = "broadcast_chain" # same image to all tiles of a chain


@dataclass(frozen=True)
class LoadEstimate:
    """Shift-bit and time estimate for one load operation."""

    mode: LoadMode
    program_bits: int
    total_shift_bits: int
    tck_hz: float

    @property
    def seconds(self) -> float:
        """Wall-clock shift time at the configured TCK."""
        return self.total_shift_bits / self.tck_hz

    @property
    def reduction_vs_unicast(self) -> float:
        """Latency ratio against loading each core separately."""
        if self.total_shift_bits == 0:
            return 1.0
        # Unicast shifts the image once per core of every target tile.
        return self._unicast_bits / self.total_shift_bits

    @property
    def _unicast_bits(self) -> int:
        return self.program_bits * self._cores_targeted

    # populated by BroadcastLoader
    _cores_targeted: int = 1


class BroadcastLoader:
    """Estimates and simulates broadcast loading (Fig. 9's optimisation)."""

    def __init__(
        self,
        cores_per_tile: int = 14,
        tiles_in_chain: int = 32,
        tck_hz: float = 10e6,
    ):
        if cores_per_tile < 1 or tiles_in_chain < 1:
            raise JtagError("cores and tiles must be positive")
        if tck_hz <= 0:
            raise JtagError("TCK must be positive")
        self.cores_per_tile = cores_per_tile
        self.tiles_in_chain = tiles_in_chain
        self.tck_hz = tck_hz

    def estimate(self, program_bytes: int, mode: LoadMode) -> LoadEstimate:
        """Shift-bit count to load one program image in the given mode."""
        if program_bytes < 0:
            raise JtagError("program size must be non-negative")
        program_bits = program_bytes * 8
        cores_total = self.cores_per_tile * self.tiles_in_chain

        if mode is LoadMode.UNICAST:
            total = program_bits * cores_total
            targeted = cores_total
        elif mode is LoadMode.BROADCAST_TILE:
            # One shift per tile reaches all that tile's cores.
            total = program_bits * self.tiles_in_chain
            targeted = cores_total
        else:
            # One shift reaches every core of every tile in the chain.
            total = program_bits
            targeted = cores_total

        estimate = LoadEstimate(
            mode=mode,
            program_bits=program_bits,
            total_shift_bits=total,
            tck_hz=self.tck_hz,
        )
        object.__setattr__(estimate, "_cores_targeted", targeted)
        return estimate

    def tile_latency_reduction(self) -> float:
        """The paper's headline: broadcast turns 14 visible DAPs into 1."""
        chain = TileDapChain(self.cores_per_tile, ChainMode.CHAINED)
        return chain.latency_reduction(DAP_ACCESS_DR_BITS)

    def simulate_tile_load(self, words: list[int]) -> TileDapChain:
        """Broadcast a word list into a tile; returns the loaded chain."""
        tile = TileDapChain(self.cores_per_tile, ChainMode.BROADCAST)
        tile.broadcast_load(words)
        return tile
