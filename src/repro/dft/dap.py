"""Per-core Debug Access Ports and the intra-tile DAP chain (Fig. 9).

Each of the 14 Cortex-M3 cores exposes a DAP (JTAG IR = 4 bits; the data
scans we model are the 35-bit AP/DP access registers: 32 data + 2 register
select + 1 RnW).  Inside the compute chiplet the 14 DAPs are daisy-chained
so one tile needs only one JTAG interface.  Two access modes exist:

* **chained** — the standard serial chain: a scan targeting every core
  must shift 14x the data (each DAP's DR sits in series);
* **broadcast** — TDI fans out to *all* DAPs in parallel and TDO is taken
  from the first core; the external controller sees a single DAP, cutting
  bit-shift latency by 14x when all cores receive the same program, the
  common case in the paper's workloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import JtagError
from .jtag import JtagChain, JtagDevice

DAP_IR_BITS = 4
DAP_ACCESS_DR_BITS = 35     # 32 data + 2 addr + RnW


def make_dap(name: str) -> JtagDevice:
    """One ARM-style DAP as a JTAG chain device."""
    return JtagDevice(
        name=name,
        ir_length=DAP_IR_BITS,
        dr_lengths={
            "BYPASS": 1,
            "IDCODE": 32,
            "DPACC": DAP_ACCESS_DR_BITS,
            "APACC": DAP_ACCESS_DR_BITS,
        },
    )


class CoreDap:
    """Debug access to one core through its DAP."""

    def __init__(self, core_index: int):
        if core_index < 0:
            raise JtagError("core index must be non-negative")
        self.core_index = core_index
        self.device = make_dap(f"core{core_index}-dap")
        self.loaded_words: list[int] = []

    def load_word(self, word: int) -> None:
        """Model a 32-bit memory write arriving through the DAP."""
        if not 0 <= word < (1 << 32):
            raise JtagError("word exceeds 32 bits")
        self.loaded_words.append(word)


class ChainMode(enum.Enum):
    """Intra-tile DAP chain access modes (Fig. 9)."""

    CHAINED = "chained"
    BROADCAST = "broadcast"


@dataclass
class TileDapChain:
    """The 14-DAP daisy chain inside one compute chiplet."""

    cores: int = 14
    mode: ChainMode = ChainMode.CHAINED

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise JtagError("tile needs at least one core")
        self.daps = [CoreDap(i) for i in range(self.cores)]
        self._chain = JtagChain([d.device for d in self.daps])

    @property
    def chain(self) -> JtagChain:
        """The underlying JTAG chain (chained-mode view)."""
        return self._chain

    def visible_dap_count(self) -> int:
        """DAPs the external controller sees: 14 chained, 1 in broadcast."""
        return 1 if self.mode is ChainMode.BROADCAST else self.cores

    def scan_bits_for_all_cores(self, payload_bits: int) -> int:
        """Bits shifted to deliver ``payload_bits`` to every core.

        Chained mode shifts every DAP's slice through the serial chain
        (``cores x payload``); broadcast mode shifts the payload once.
        """
        if payload_bits < 1:
            raise JtagError("payload must be at least one bit")
        if self.mode is ChainMode.BROADCAST:
            return payload_bits
        return self.cores * payload_bits

    def latency_reduction(self, payload_bits: int = DAP_ACCESS_DR_BITS) -> float:
        """Broadcast-vs-chained shift-latency ratio (the paper's 14x)."""
        chained = TileDapChain(self.cores, ChainMode.CHAINED)
        broadcast = TileDapChain(self.cores, ChainMode.BROADCAST)
        return (
            chained.scan_bits_for_all_cores(payload_bits)
            / broadcast.scan_bits_for_all_cores(payload_bits)
        )

    def broadcast_load(self, words: list[int]) -> None:
        """Deliver the same words to all cores (broadcast mode only)."""
        if self.mode is not ChainMode.BROADCAST:
            raise JtagError("broadcast_load requires BROADCAST mode")
        for word in words:
            for dap in self.daps:
                dap.load_word(word)

    def chained_load(self, per_core_words: list[list[int]]) -> None:
        """Deliver distinct words per core (chained mode only)."""
        if self.mode is not ChainMode.CHAINED:
            raise JtagError("chained_load requires CHAINED mode")
        if len(per_core_words) != self.cores:
            raise JtagError(
                f"expected {self.cores} word lists, got {len(per_core_words)}"
            )
        for dap, words in zip(self.daps, per_core_words):
            for word in words:
                dap.load_word(word)
