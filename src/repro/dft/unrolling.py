"""Progressive multi-chiplet JTAG chain unrolling (Section VII-B, Fig. 10).

Every tile's JTAG interface can either forward its TDO to the next tile in
the chain or **loop it back** toward the external controller through the
upstream tiles' TDI-bypass path (similar in spirit to the IEEE P1838
serial control mechanism for 3D stacks).  On power-up every tile is in
loop-back, so the controller initially sees only the first tile.  Testing
proceeds by *unrolling*:

1. test the first tile in loop-back;
2. if it passes, switch it to forward mode — the controller now sees the
   second tile through it — and test that one;
3. repeat down the chain; the first test failure pin-points the faulty
   chiplet (everything nearer the controller already passed).

The same procedure runs *during* assembly on partially-bonded wafers, so
a bad wafer is caught before more known-good chiplets are wasted on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import JtagError


@dataclass
class TileUnderTest:
    """One tile's test view in a chain."""

    index: int
    healthy: bool = True
    bonded: bool = True
    forward_mode: bool = False      # False = loop-back (power-up default)

    def responds(self) -> bool:
        """Does a test of this tile pass?

        Requires the chiplet to be bonded and internally healthy.
        """
        return self.bonded and self.healthy


@dataclass
class UnrollStep:
    """Record of one test in the unrolling procedure."""

    tile_index: int
    passed: bool
    visible_chain_length: int


@dataclass
class ChainTestSession:
    """Progressive unrolling over one chain of tiles."""

    tiles: list[TileUnderTest]
    steps: list[UnrollStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.tiles:
            raise JtagError("chain has no tiles")
        for i, tile in enumerate(self.tiles):
            if tile.index != i:
                raise JtagError("tile indices must match chain positions")

    def reachable_prefix(self) -> int:
        """Tiles reachable from the controller given current modes.

        Tile k is reachable when tiles 0..k-1 are all in forward mode and
        all bonded (a missing/faulty chiplet physically breaks the chain
        wiring through its bypass path).
        """
        for i, tile in enumerate(self.tiles):
            if not tile.bonded:
                return i
            if not tile.forward_mode:
                return i + 1
        return len(self.tiles)

    def test_tile(self, index: int) -> bool:
        """Run the test routine on one tile (must be the unroll frontier)."""
        frontier = self.reachable_prefix() - 1
        if index != frontier:
            raise JtagError(
                f"tile {index} is not the unroll frontier ({frontier})"
            )
        tile = self.tiles[index]
        passed = tile.responds()
        self.steps.append(
            UnrollStep(
                tile_index=index,
                passed=passed,
                visible_chain_length=index + 1,
            )
        )
        return passed

    def unroll(self) -> list[int]:
        """Run the full progressive procedure; returns faulty tile indices.

        A failing tile is left in loop-back and skipped logically — in
        hardware the physical chain cannot continue past a dead chiplet,
        so unrolling stops at the first failure.  (The 32-row multi-chain
        organisation bounds the blast radius of one dead tile to its row.)
        """
        faulty: list[int] = []
        for index, tile in enumerate(self.tiles):
            passed = self.test_tile(index)
            if not passed:
                faulty.append(index)
                break
            tile.forward_mode = True
        return faulty

    @property
    def tests_run(self) -> int:
        """Number of per-tile test invocations so far."""
        return len(self.steps)


def locate_faulty_tiles(health: list[bool]) -> list[int]:
    """Convenience wrapper: unroll a chain described by a health vector."""
    tiles = [TileUnderTest(index=i, healthy=h) for i, h in enumerate(health)]
    return ChainTestSession(tiles=tiles).unroll()


def during_assembly_check(bonded_count: int, health: list[bool]) -> tuple[list[int], bool]:
    """Intermittent check of a partially-bonded chain (Section VII-B).

    Only the first ``bonded_count`` tiles exist; returns the faulty
    indices found and whether the partial assembly is still good (no
    failures among bonded tiles), letting the fab abandon a bad wafer
    before wasting more known-good chiplets on it.
    """
    if bonded_count < 0 or bonded_count > len(health):
        raise JtagError("bonded_count out of range")
    tiles = [
        TileUnderTest(index=i, healthy=h, bonded=i < bonded_count)
        for i, h in enumerate(health)
    ]
    session = ChainTestSession(tiles=tiles)
    faulty: list[int] = []
    for index in range(bonded_count):
        if not session.test_tile(index):
            faulty.append(index)
            break
        session.tiles[index].forward_mode = True
    return faulty, not faulty
