"""Pre-bond probe testing and the duplicate-pad scheme (Sec. VII-A, Fig. 8).

Fine-pitch Si-IF pads (10um pitch, 7um wide) cannot be touched by probe
cards: probe pitch is >=50um, and a probe scrub ruins the pad planarity
that direct metal-metal bonding needs.  The chiplets therefore carry
**larger duplicate pads** for the JTAG and auxiliary test signals:

* pre-bond (known-good-die) testing probes only the large pads;
* bonding uses only the *unprobed* fine-pitch pads (pillars are never
  placed on probed pads);
* post-bond, the same JTAG signals are reachable through the fine-pitch
  pillars.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import params
from ..errors import JtagError


@dataclass(frozen=True)
class PadSet:
    """A set of same-geometry pads on a chiplet."""

    name: str
    count: int
    pitch_um: float
    width_um: float
    probed: bool = False        # probing destroys bonding planarity

    def __post_init__(self) -> None:
        if self.count < 0:
            raise JtagError("pad count must be non-negative")
        if self.pitch_um <= 0 or self.width_um <= 0:
            raise JtagError("pad geometry must be positive")
        if self.width_um > self.pitch_um:
            raise JtagError("pad width cannot exceed pitch")


@dataclass(frozen=True)
class ProbeCard:
    """A probe card's mechanical capability."""

    min_pitch_um: float = params.PROBE_PITCH_MIN_UM

    def can_touch(self, pads: PadSet) -> bool:
        """True when the card's probes can land on this pad set."""
        return pads.pitch_um >= self.min_pitch_um


def can_probe(pads: PadSet, card: ProbeCard | None = None) -> bool:
    """Is probe-card testing of this pad set possible?"""
    return (card or ProbeCard()).can_touch(pads)


@dataclass(frozen=True)
class ProbePlan:
    """Pre-bond test plan for one chiplet."""

    fine_pads: PadSet
    test_pads: PadSet

    def validate(self, card: ProbeCard | None = None) -> None:
        """Check the plan satisfies every Section VII-A constraint."""
        probe = card or ProbeCard()
        if probe.can_touch(self.fine_pads):
            # Not an error per se, but the design intent is that fine
            # pads are beyond probing — flag a mis-sized pad set.
            raise JtagError("fine-pitch pads should not be probeable")
        if not probe.can_touch(self.test_pads):
            raise JtagError(
                f"test pads at {self.test_pads.pitch_um}um pitch are below "
                f"the {probe.min_pitch_um}um probe limit"
            )
        if self.test_pads.probed and self.fine_pads.probed:
            raise JtagError("fine pads must never be probed")

    def bondable_pads(self) -> PadSet:
        """Pads eligible for Cu-pillar bonding: unprobed fine pads only."""
        if self.fine_pads.probed:
            raise JtagError("probed pads lost planarity; cannot bond")
        return self.fine_pads


def probe_plan(
    fine_pad_count: int,
    test_signal_count: int = 12,
    probe_pad_pitch_um: float = 90.0,
) -> ProbePlan:
    """Build the paper's duplicate-pad plan for one chiplet.

    ``test_signal_count`` covers JTAG (TDI/TDO/TMS/TCK), clock and a few
    auxiliary signals, each duplicated onto a large probeable pad.
    """
    fine = PadSet(
        name="fine-pitch",
        count=fine_pad_count,
        pitch_um=params.CU_PILLAR_PITCH_UM,
        width_um=params.IO_PAD_WIDTH_UM,
    )
    test = PadSet(
        name="probe-test",
        count=test_signal_count,
        pitch_um=probe_pad_pitch_um,
        width_um=probe_pad_pitch_um * 0.7,
        probed=True,
    )
    plan = ProbePlan(fine_pads=fine, test_pads=test)
    plan.validate()
    return plan
