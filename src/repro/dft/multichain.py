"""Multi-chain JTAG organisation and load-time modelling (Section VII-B-b).

One 1024-tile daisy chain would make testing and program/data loading
serial and put the broadcast TMS/TCK signals behind a 1024-tile load.
The prototype instead runs **32 chains, one per tile row**:

1. the rows are tested/loaded in parallel — up to a 32x speedup, taking
   the whole-wafer memory load from ~2.5 hours to roughly under 5 minutes;
2. each row has private TMS/TCK, cutting their fan-out 32x and allowing
   up to 10 MHz operation.

The load-time model charges a fixed number of TCK cycles per 32-bit word
delivered through a DAP (DR scan + ACK/state overhead) and divides the
work across chains.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import params
from ..config import SystemConfig
from ..errors import JtagError
from ..obs.telemetry import Telemetry, resolve_telemetry

# TCK cycles to deliver one 32-bit word through an ARM DAP: the 35-bit
# APACC scan plus controller state moves, ACK polling and periodic address
# setup.  Calibrated against the paper's own estimate (2.5 hours for the
# full wafer over a single chain at 10 MHz).
CYCLES_PER_WORD_DEFAULT = 224

# TMS/TCK fan-out limit: a chain of n tiles loads the broadcast signals;
# the prototype's buffers sustain 10 MHz at 32 tiles.
TCK_FANOUT_LIMIT_HZ_TILES = 10e6 * 32


@dataclass(frozen=True)
class ChainPlan:
    """One JTAG chain: which tiles it covers."""

    chain_index: int
    tiles: tuple[tuple[int, int], ...]

    @property
    def length(self) -> int:
        """Tiles in this chain."""
        return len(self.tiles)


@dataclass(frozen=True)
class MultiChainPlan:
    """The wafer's chain organisation (rows by default)."""

    config: SystemConfig
    chains: tuple[ChainPlan, ...]

    @property
    def chain_count(self) -> int:
        """Number of parallel chains."""
        return len(self.chains)

    @property
    def max_chain_length(self) -> int:
        """Longest chain (bounds the serial part of testing)."""
        return max(c.length for c in self.chains)

    def tck_hz(self) -> float:
        """Achievable TCK given per-chain TMS/TCK fan-out."""
        return min(params.JTAG_TCK_MAX_HZ, TCK_FANOUT_LIMIT_HZ_TILES / self.max_chain_length)


def row_chains(config: SystemConfig | None = None) -> MultiChainPlan:
    """The paper's organisation: one chain per tile row."""
    cfg = config or SystemConfig()
    chains = tuple(
        ChainPlan(
            chain_index=r,
            tiles=tuple((r, c) for c in range(cfg.cols)),
        )
        for r in range(cfg.rows)
    )
    return MultiChainPlan(config=cfg, chains=chains)


def single_chain(config: SystemConfig | None = None) -> MultiChainPlan:
    """The rejected baseline: one serpentine chain over all 1024 tiles."""
    cfg = config or SystemConfig()
    tiles: list[tuple[int, int]] = []
    for r in range(cfg.rows):
        cols = range(cfg.cols) if r % 2 == 0 else range(cfg.cols - 1, -1, -1)
        tiles.extend((r, c) for c in cols)
    return MultiChainPlan(
        config=cfg, chains=(ChainPlan(chain_index=0, tiles=tuple(tiles)),)
    )


@dataclass(frozen=True)
class LoadTimeEstimate:
    """Whole-wafer memory load-time estimate."""

    plan_chains: int
    total_bytes: int
    tck_hz: float
    cycles_per_word: int
    seconds: float

    @property
    def minutes(self) -> float:
        """Load time in minutes."""
        return self.seconds / 60.0

    @property
    def hours(self) -> float:
        """Load time in hours."""
        return self.seconds / 3600.0


def load_time_model(
    plan: MultiChainPlan,
    total_bytes: int | None = None,
    tck_hz: float | None = None,
    cycles_per_word: int = CYCLES_PER_WORD_DEFAULT,
    telemetry: Telemetry | None = None,
) -> LoadTimeEstimate:
    """Time to load ``total_bytes`` across the wafer through JTAG.

    Defaults to loading *all* memory in the system (shared banks, the
    tile-private bank and every core's private SRAM), the workload behind
    the paper's 2.5-hour/5-minute comparison.  Chains work in parallel;
    within a chain, words stream through back-to-back.
    """
    cfg = plan.config
    if total_bytes is None:
        total_bytes = cfg.total_memory_bytes
    if total_bytes < 0:
        raise JtagError("total_bytes must be non-negative")
    if cycles_per_word < 1:
        raise JtagError("cycles_per_word must be positive")
    hz = tck_hz if tck_hz is not None else params.JTAG_TCK_MAX_HZ
    if hz <= 0:
        raise JtagError("TCK must be positive")

    words = total_bytes // 4
    words_per_chain = -(-words // plan.chain_count)    # ceil
    seconds = words_per_chain * cycles_per_word / hz

    tel = resolve_telemetry(telemetry)
    if tel.enabled:
        metrics = tel.metrics
        metrics.counter("dft.load_models_evaluated").inc()
        metrics.counter("dft.chains_planned").inc(plan.chain_count)
        metrics.counter("dft.words_loaded").inc(words)
        metrics.histogram("dft.chain_length_tiles").observe(
            plan.max_chain_length
        )
        tel.tracer.instant(
            f"dft.load:{plan.chain_count}-chain",
            cat="dft",
            seconds=seconds,
            tck_hz=hz,
        )
    return LoadTimeEstimate(
        plan_chains=plan.chain_count,
        total_bytes=total_bytes,
        tck_hz=hz,
        cycles_per_word=cycles_per_word,
        seconds=seconds,
    )


def paper_load_time_comparison(
    config: SystemConfig | None = None,
    telemetry: Telemetry | None = None,
) -> dict[str, float]:
    """The Section VII numbers: single-chain hours vs 32-chain minutes."""
    cfg = config or SystemConfig()
    tel = resolve_telemetry(telemetry)
    with tel.tracer.span("dft.load_time_comparison", cat="dft"):
        single = load_time_model(single_chain(cfg), telemetry=tel)
        multi = load_time_model(row_chains(cfg), telemetry=tel)
    return {
        "single_chain_hours": single.hours,
        "multi_chain_minutes": multi.minutes,
        "speedup": single.seconds / multi.seconds,
    }
