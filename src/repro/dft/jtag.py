"""IEEE 1149.1 TAP controller and daisy-chain model (paper Section VII).

The cores expose ARM Debug Access Ports driven over JTAG (IEEE 1149.1
minus boundary scan).  This module implements the standard 16-state TAP
controller state machine and a bit-exact shift model for a chain of JTAG
devices, which the DAP/broadcast/unrolling layers build on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import JtagError


class TapState(enum.Enum):
    """The 16 states of the IEEE 1149.1 TAP controller."""

    TEST_LOGIC_RESET = "test-logic-reset"
    RUN_TEST_IDLE = "run-test-idle"
    SELECT_DR_SCAN = "select-dr-scan"
    CAPTURE_DR = "capture-dr"
    SHIFT_DR = "shift-dr"
    EXIT1_DR = "exit1-dr"
    PAUSE_DR = "pause-dr"
    EXIT2_DR = "exit2-dr"
    UPDATE_DR = "update-dr"
    SELECT_IR_SCAN = "select-ir-scan"
    CAPTURE_IR = "capture-ir"
    SHIFT_IR = "shift-ir"
    EXIT1_IR = "exit1-ir"
    PAUSE_IR = "pause-ir"
    EXIT2_IR = "exit2-ir"
    UPDATE_IR = "update-ir"


# (state, tms) -> next state, straight from the standard's state diagram.
_TRANSITIONS: dict[tuple[TapState, int], TapState] = {
    (TapState.TEST_LOGIC_RESET, 0): TapState.RUN_TEST_IDLE,
    (TapState.TEST_LOGIC_RESET, 1): TapState.TEST_LOGIC_RESET,
    (TapState.RUN_TEST_IDLE, 0): TapState.RUN_TEST_IDLE,
    (TapState.RUN_TEST_IDLE, 1): TapState.SELECT_DR_SCAN,
    (TapState.SELECT_DR_SCAN, 0): TapState.CAPTURE_DR,
    (TapState.SELECT_DR_SCAN, 1): TapState.SELECT_IR_SCAN,
    (TapState.CAPTURE_DR, 0): TapState.SHIFT_DR,
    (TapState.CAPTURE_DR, 1): TapState.EXIT1_DR,
    (TapState.SHIFT_DR, 0): TapState.SHIFT_DR,
    (TapState.SHIFT_DR, 1): TapState.EXIT1_DR,
    (TapState.EXIT1_DR, 0): TapState.PAUSE_DR,
    (TapState.EXIT1_DR, 1): TapState.UPDATE_DR,
    (TapState.PAUSE_DR, 0): TapState.PAUSE_DR,
    (TapState.PAUSE_DR, 1): TapState.EXIT2_DR,
    (TapState.EXIT2_DR, 0): TapState.SHIFT_DR,
    (TapState.EXIT2_DR, 1): TapState.UPDATE_DR,
    (TapState.UPDATE_DR, 0): TapState.RUN_TEST_IDLE,
    (TapState.UPDATE_DR, 1): TapState.SELECT_DR_SCAN,
    (TapState.SELECT_IR_SCAN, 0): TapState.CAPTURE_IR,
    (TapState.SELECT_IR_SCAN, 1): TapState.TEST_LOGIC_RESET,
    (TapState.CAPTURE_IR, 0): TapState.SHIFT_IR,
    (TapState.CAPTURE_IR, 1): TapState.EXIT1_IR,
    (TapState.SHIFT_IR, 0): TapState.SHIFT_IR,
    (TapState.SHIFT_IR, 1): TapState.EXIT1_IR,
    (TapState.EXIT1_IR, 0): TapState.PAUSE_IR,
    (TapState.EXIT1_IR, 1): TapState.UPDATE_IR,
    (TapState.PAUSE_IR, 0): TapState.PAUSE_IR,
    (TapState.PAUSE_IR, 1): TapState.EXIT2_IR,
    (TapState.EXIT2_IR, 0): TapState.SHIFT_IR,
    (TapState.EXIT2_IR, 1): TapState.UPDATE_IR,
    (TapState.UPDATE_IR, 0): TapState.RUN_TEST_IDLE,
    (TapState.UPDATE_IR, 1): TapState.SELECT_DR_SCAN,
}


class TapController:
    """One TAP controller state machine."""

    def __init__(self) -> None:
        self.state = TapState.TEST_LOGIC_RESET
        self.tck_cycles = 0

    def step(self, tms: int) -> TapState:
        """Advance one TCK with the given TMS value."""
        if tms not in (0, 1):
            raise JtagError("TMS must be 0 or 1")
        self.state = _TRANSITIONS[(self.state, tms)]
        self.tck_cycles += 1
        return self.state

    def reset(self) -> None:
        """Five TMS=1 clocks reach Test-Logic-Reset from any state."""
        for _ in range(5):
            self.step(1)
        if self.state is not TapState.TEST_LOGIC_RESET:
            raise JtagError("TAP failed to reset (corrupt transition table)")

    def goto_shift_dr(self) -> int:
        """Drive TMS from Run-Test/Idle to Shift-DR; returns cycles used."""
        before = self.tck_cycles
        for tms in (1, 0, 0):       # Select-DR, Capture-DR, Shift-DR
            self.step(tms)
        return self.tck_cycles - before

    def goto_shift_ir(self) -> int:
        """Drive TMS from Run-Test/Idle to Shift-IR; returns cycles used."""
        before = self.tck_cycles
        for tms in (1, 1, 0, 0):
            self.step(tms)
        return self.tck_cycles - before

    def exit_to_idle(self) -> int:
        """Shift -> Exit1 -> Update -> Run-Test/Idle; returns cycles used."""
        before = self.tck_cycles
        for tms in (1, 1, 0):       # Exit1, Update, Run-Test/Idle
            self.step(tms)
        return self.tck_cycles - before


@dataclass
class JtagDevice:
    """One device on a JTAG chain: an IR and per-instruction DRs."""

    name: str
    ir_length: int
    dr_lengths: dict[str, int] = field(
        default_factory=lambda: {"BYPASS": 1, "IDCODE": 32}
    )
    current_instruction: str = "BYPASS"
    dr_value: int = 0
    faulty: bool = False

    def __post_init__(self) -> None:
        if self.ir_length < 2:
            raise JtagError("IEEE 1149.1 requires IR length >= 2")
        if "BYPASS" not in self.dr_lengths:
            raise JtagError("every device must implement BYPASS")

    @property
    def dr_length(self) -> int:
        """Length of the currently selected data register."""
        return self.dr_lengths[self.current_instruction]

    def select(self, instruction: str) -> None:
        """Load an instruction (as if shifted through the IR)."""
        if instruction not in self.dr_lengths:
            raise JtagError(f"{self.name}: unknown instruction {instruction!r}")
        self.current_instruction = instruction


class JtagChain:
    """A daisy chain of JTAG devices with bit-exact DR shifting.

    A faulty device breaks the chain: bits shifted in never reach devices
    behind it and TDO is garbage — this is the failure mode progressive
    unrolling (Section VII-B) exists to localise.
    """

    def __init__(self, devices: list[JtagDevice]):
        if not devices:
            raise JtagError("chain needs at least one device")
        self.devices = list(devices)

    @property
    def total_dr_bits(self) -> int:
        """Total shift length through all selected DRs."""
        return sum(d.dr_length for d in self.devices)

    @property
    def broken(self) -> bool:
        """True when any device in the chain is faulty."""
        return any(d.faulty for d in self.devices)

    def select_all(self, instruction: str) -> None:
        """Load the same instruction into every device."""
        for device in self.devices:
            device.select(instruction)

    def shift_dr(self, tdi_bits: list[int]) -> list[int]:
        """Shift a bit sequence through the chain; returns TDO bits.

        TDI enters the first device; each device is a shift register of
        its DR length; TDO leaves the last device.  After shifting exactly
        ``total_dr_bits`` bits, each device's DR holds its slice.
        """
        if any(b not in (0, 1) for b in tdi_bits):
            raise JtagError("TDI bits must be 0/1")
        if self.broken:
            raise JtagError("chain is broken by a faulty device")
        registers = [
            [(d.dr_value >> i) & 1 for i in range(d.dr_length)]
            for d in self.devices
        ]
        tdo: list[int] = []
        for bit in tdi_bits:
            carry = bit
            for reg in registers:
                # Shift in at index 0 (nearest TDI), out at the far end.
                reg.insert(0, carry)
                carry = reg.pop()
            tdo.append(carry)
        for device, reg in zip(self.devices, registers):
            device.dr_value = sum(b << i for i, b in enumerate(reg))
        return tdo

    def scan_cycles(self, words: int, word_bits: int, overhead_per_scan: int = 10) -> int:
        """TCK cycles to scan ``words`` DR values through the chain.

        Each scan shifts ``word_bits`` per *target* device plus one bypass
        bit per other device, with TMS state overhead per scan.
        """
        if words < 0 or word_bits < 1:
            raise JtagError("invalid scan size")
        bypass_bits = len(self.devices) - 1
        return words * (word_bits + bypass_bits + overhead_per_scan)
