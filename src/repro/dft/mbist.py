"""Memory built-in self-test: march algorithms over the SRAM banks.

Section VII loads "test routines" into the cores through JTAG; the
routine any memory-heavy chiplet runs first is a march test over its
banks.  This module implements the standard March C- algorithm (and the
cheaper MATS+ for quick during-assembly checks) against the
:class:`~repro.arch.membank.MemoryBank` model, with a fault-injection
wrapper so detection coverage is testable.

March C- elements (⇕ any order, ⇑ ascending, ⇓ descending):

    ⇕(w0) ⇑(r0,w1) ⇑(r1,w0) ⇓(r0,w1) ⇓(r1,w0) ⇕(r0)

March C- detects all stuck-at, transition, and coupling faults in the
classic fault model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..arch.membank import MemoryBank, WORD_BYTES
from ..errors import JtagError

ALL_ONES = 0xFFFF_FFFF


class FaultKind(enum.Enum):
    """Injectable memory fault models."""

    STUCK_AT_0 = "sa0"
    STUCK_AT_1 = "sa1"
    TRANSITION_UP = "tf_up"       # cell cannot make a 0 -> 1 transition


@dataclass
class InjectedFault:
    """One injected cell fault (word offset + bit position)."""

    kind: FaultKind
    offset: int
    bit: int

    def __post_init__(self) -> None:
        if not 0 <= self.bit < 32:
            raise JtagError("bit must be in 0..31")
        if self.offset % WORD_BYTES:
            raise JtagError("offset must be word-aligned")


class FaultyBank:
    """A MemoryBank wrapper that applies injected faults on access."""

    def __init__(self, bank: MemoryBank, faults: list[InjectedFault] | None = None):
        self.bank = bank
        self.faults = list(faults or [])

    def _apply_read_faults(self, offset: int, value: int) -> int:
        for fault in self.faults:
            if fault.offset != offset:
                continue
            mask = 1 << fault.bit
            if fault.kind is FaultKind.STUCK_AT_0:
                value &= ~mask
            elif fault.kind is FaultKind.STUCK_AT_1:
                value |= mask
        return value & ALL_ONES

    def read_word(self, offset: int) -> int:
        """Read with stuck-at faults applied."""
        return self._apply_read_faults(offset, self.bank.read_word(offset))

    def write_word(self, offset: int, value: int) -> None:
        """Write with transition faults applied."""
        for fault in self.faults:
            if fault.offset != offset:
                continue
            if fault.kind is FaultKind.TRANSITION_UP:
                mask = 1 << fault.bit
                old = self.bank.read_word(offset)
                if not old & mask and value & mask:
                    value &= ~mask      # the 0->1 transition fails
        self.bank.write_word(offset, value & ALL_ONES)

    @property
    def size_bytes(self) -> int:
        """Capacity of the wrapped bank."""
        return self.bank.size_bytes


@dataclass
class MbistResult:
    """Outcome of one march run."""

    algorithm: str
    passed: bool
    failures: list[tuple[int, int, int]] = field(default_factory=list)
    # (offset, expected, observed)
    operations: int = 0

    @property
    def failing_offsets(self) -> list[int]:
        """Distinct word offsets that miscompared."""
        return sorted({offset for offset, _, _ in self.failures})


def _march(
    bank: FaultyBank | MemoryBank,
    elements: list[tuple[str, list[tuple[str, int]]]],
    name: str,
) -> MbistResult:
    """Run a march algorithm described as (direction, [(op, value)])."""
    result = MbistResult(algorithm=name, passed=True)
    words = bank.size_bytes // WORD_BYTES
    for direction, ops in elements:
        if direction == "up":
            offsets = range(0, words * WORD_BYTES, WORD_BYTES)
        elif direction == "down":
            offsets = range((words - 1) * WORD_BYTES, -1, -WORD_BYTES)
        else:
            raise JtagError(f"bad march direction {direction!r}")
        for offset in offsets:
            for op, value in ops:
                result.operations += 1
                if op == "w":
                    bank.write_word(offset, value)
                elif op == "r":
                    observed = bank.read_word(offset)
                    if observed != value:
                        result.passed = False
                        result.failures.append((offset, value, observed))
                else:
                    raise JtagError(f"bad march op {op!r}")
    return result


def march_c_minus(bank: FaultyBank | MemoryBank) -> MbistResult:
    """Full March C- (10N operations): detects SAF, TF and CF faults."""
    one, zero = ALL_ONES, 0
    elements = [
        ("up", [("w", zero)]),
        ("up", [("r", zero), ("w", one)]),
        ("up", [("r", one), ("w", zero)]),
        ("down", [("r", zero), ("w", one)]),
        ("down", [("r", one), ("w", zero)]),
        ("down", [("r", zero)]),
    ]
    return _march(bank, elements, "March C-")


def mats_plus(bank: FaultyBank | MemoryBank) -> MbistResult:
    """MATS+ (5N operations): detects all stuck-at faults, cheap."""
    one, zero = ALL_ONES, 0
    elements = [
        ("up", [("w", zero)]),
        ("up", [("r", zero), ("w", one)]),
        ("down", [("r", one), ("w", zero)]),
    ]
    return _march(bank, elements, "MATS+")


def mbist_runtime_s(
    bank_bytes: int, freq_hz: float, operations_per_word: int = 10
) -> float:
    """Wall-clock estimate of a march run at the core's clock.

    March C- performs 10 operations per word; a core executing the test
    routine issues roughly one memory operation per few cycles, so this
    is the optimistic (bandwidth-bound) figure.
    """
    if bank_bytes < 0 or freq_hz <= 0 or operations_per_word < 1:
        raise JtagError("invalid MBIST runtime parameters")
    words = bank_bytes // WORD_BYTES
    return words * operations_per_word / freq_hz
