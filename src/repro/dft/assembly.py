"""During-assembly testing policy simulation (paper Section VII-B).

The paper: progressive unrolling "can also be used for during-assembly
testing to intermittently check for failures in a partially bonded
system.  This scheme would help to identify and discard partially
populated faulty systems and minimize wastage of KGD chiplets."

Whether that pays off depends on *policy*: checking after every bond
catches bad wafers earliest but costs tester time; never checking wastes
every known-good die bonded after the (undetected) first failure on a
wafer that will be scrapped.  This module simulates the bonding sequence
with Bernoulli per-chiplet bond failures and evaluates check policies by
their expected KGD wastage and test invocations.

A wafer is *scrapped* when its accumulated faulty-tile count exceeds the
fault budget the system architecture can tolerate (Section VI); faults
within the budget are simply recorded in the fault map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..errors import JtagError
from ..io.bonding import chiplet_bond_yield


@dataclass(frozen=True)
class AssemblyPolicy:
    """When to run the during-assembly check."""

    check_interval: int         # run a check after every N tiles (0 = never)
    fault_budget: int = 16      # faults tolerated before the wafer is scrap

    def __post_init__(self) -> None:
        if self.check_interval < 0:
            raise JtagError("check interval must be non-negative")
        if self.fault_budget < 0:
            raise JtagError("fault budget must be non-negative")


@dataclass
class AssemblyOutcome:
    """Result of assembling one wafer under a policy."""

    completed: bool             # wafer fully populated and within budget
    tiles_bonded: int
    faults_found: int
    kgd_wasted: int             # good chiplets bonded to a doomed wafer
    checks_run: int


def _tile_fail_probability(config: SystemConfig) -> float:
    """Per-tile bonding-failure probability from the Section V model."""
    y_compute = chiplet_bond_yield(
        config.ios_per_compute_chiplet, config.pillar_bond_yield,
        config.pillars_per_pad,
    )
    y_memory = chiplet_bond_yield(
        config.ios_per_memory_chiplet, config.pillar_bond_yield,
        config.pillars_per_pad,
    )
    return 1.0 - y_compute * y_memory


def assemble_wafer(
    config: SystemConfig,
    policy: AssemblyPolicy,
    rng: np.random.Generator | int | None = None,
    tile_fail_probability: float | None = None,
) -> AssemblyOutcome:
    """Bond tiles one at a time under a checking policy.

    Faults are only *discovered* at checks (or at the end); a wafer whose
    discovered fault count exceeds the budget is abandoned immediately —
    every good chiplet pair bonded after the budget-busting fault (and
    all good pairs on the wafer, since it is scrap) counts as wasted KGD.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    p_fail = (
        tile_fail_probability
        if tile_fail_probability is not None
        else _tile_fail_probability(config)
    )
    if not 0.0 <= p_fail <= 1.0:
        raise JtagError("tile failure probability must be in [0, 1]")

    total = config.tiles
    bonded = 0
    discovered = 0
    undiscovered = 0
    checks = 0
    good_bonded = 0

    for _ in range(total):
        bonded += 1
        if rng.random() < p_fail:
            undiscovered += 1
        else:
            good_bonded += 1

        run_check = (
            policy.check_interval > 0 and bonded % policy.check_interval == 0
        )
        if run_check:
            checks += 1
            discovered += undiscovered
            undiscovered = 0
            if discovered > policy.fault_budget:
                # Abandon: all good chiplets bonded so far are wasted
                # (2 chiplets per tile).
                return AssemblyOutcome(
                    completed=False,
                    tiles_bonded=bonded,
                    faults_found=discovered,
                    kgd_wasted=2 * good_bonded,
                    checks_run=checks,
                )

    # Final post-assembly test always runs.
    checks += 1
    discovered += undiscovered
    if discovered > policy.fault_budget:
        return AssemblyOutcome(
            completed=False,
            tiles_bonded=total,
            faults_found=discovered,
            kgd_wasted=2 * good_bonded,
            checks_run=checks,
        )
    return AssemblyOutcome(
        completed=True,
        tiles_bonded=total,
        faults_found=discovered,
        kgd_wasted=0,
        checks_run=checks,
    )


@dataclass(frozen=True)
class PolicyEvaluation:
    """Monte-Carlo statistics for one checking policy."""

    policy: AssemblyPolicy
    trials: int
    completion_rate: float
    mean_kgd_wasted: float
    mean_checks: float
    mean_tiles_bonded_when_scrapped: float


def evaluate_policy(
    config: SystemConfig,
    policy: AssemblyPolicy,
    trials: int = 200,
    seed: int = 0,
    tile_fail_probability: float | None = None,
) -> PolicyEvaluation:
    """Monte-Carlo a checking policy."""
    rng = np.random.default_rng(seed)
    completed = 0
    wasted: list[int] = []
    checks: list[int] = []
    scrapped_at: list[int] = []
    for _ in range(trials):
        outcome = assemble_wafer(
            config, policy, rng, tile_fail_probability=tile_fail_probability
        )
        if outcome.completed:
            completed += 1
        else:
            scrapped_at.append(outcome.tiles_bonded)
        wasted.append(outcome.kgd_wasted)
        checks.append(outcome.checks_run)
    return PolicyEvaluation(
        policy=policy,
        trials=trials,
        completion_rate=completed / trials,
        mean_kgd_wasted=float(np.mean(wasted)),
        mean_checks=float(np.mean(checks)),
        mean_tiles_bonded_when_scrapped=(
            float(np.mean(scrapped_at)) if scrapped_at else float("nan")
        ),
    )


def sweep_check_intervals(
    config: SystemConfig,
    intervals: list[int],
    trials: int = 200,
    seed: int = 0,
    tile_fail_probability: float | None = None,
    fault_budget: int = 16,
) -> list[PolicyEvaluation]:
    """The Section VII-B trade-off: wastage vs checking frequency."""
    return [
        evaluate_policy(
            config,
            AssemblyPolicy(check_interval=interval, fault_budget=fault_budget),
            trials=trials,
            seed=seed,
            tile_fail_probability=tile_fail_probability,
        )
        for interval in intervals
    ]
