"""The assembled waferscale system (paper Sections II and VI).

Builds the tile grid over a fault map, attaches the kernel's network
assignment (dual DoR networks, Section VI) and provides:

* a unified-memory view: any core can load/store any shared address, with
  remote accesses priced by the mesh round trip;
* whole-system program loading (broadcast, Section VII);
* lock-step execution of all cores.

Network latency model: a remote access costs
``base + hop_latency * hops(request) + service + hop_latency * hops(response)``
where the request/response hop counts come from the kernel-selected
network's DoR path (they are equal — Fig. 7).  Detoured pairs pay both
legs plus a software-forwarding penalty at the intermediate tile.
"""

from __future__ import annotations

from ..config import Coord, SystemConfig
from ..errors import EmulatorError, NetworkError
from ..noc.faults import FaultMap
from ..noc.kernel import KernelRouter
from .isa import Program
from .membank import MemoryBank
from .memorymap import MemoryMap
from .tile import Tile

HOP_LATENCY = 2         # router + link traversal per hop, cycles
NETWORK_BASE = 4        # injection + ejection overhead, cycles
SERVICE_LATENCY = 2     # remote bank access at the destination
DETOUR_SOFTWARE_PENALTY = 20    # cores forwarding in software (Section VI)


class WaferscaleSystem:
    """A (possibly reduced, possibly faulty) waferscale processor."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        fault_map: FaultMap | None = None,
    ):
        self.config = config or SystemConfig()
        self.fault_map = fault_map or FaultMap(self.config)
        self.memory_map = MemoryMap(self.config)
        self.kernel = KernelRouter(self.fault_map)
        self.tiles: dict[Coord, Tile] = {}
        for coord in self.config.tile_coords():
            if not self.fault_map.is_faulty(coord):
                tile = Tile(
                    coord,
                    self.config,
                    self.memory_map,
                    remote_access=self._remote_latency,
                )
                tile._bank_resolver = self._resolve_bank
                self.tiles[coord] = tile
        if not self.tiles:
            raise EmulatorError("no healthy tiles in the system")
        self.network_accesses = 0
        self.network_hops_total = 0

    # -- topology helpers ---------------------------------------------------

    def tile(self, coord: Coord) -> Tile:
        """A healthy tile (raises for faulty/absent tiles)."""
        try:
            return self.tiles[coord]
        except KeyError:
            raise EmulatorError(f"tile {coord} is faulty or absent") from None

    def healthy_coords(self) -> list[Coord]:
        """Healthy tile coordinates, row-major."""
        return [c for c in self.config.tile_coords() if c in self.tiles]

    # -- network model -------------------------------------------------------

    def _remote_latency(self, src: Coord, dst: Coord, is_write: bool) -> int:
        """Round-trip latency of one remote shared access."""
        assignment = self.kernel.assign(src, dst, allow_detour=True)
        if not assignment.reachable and not assignment.is_detour:
            raise NetworkError(f"{src} cannot reach {dst} (fault map)")
        self.network_accesses += 1
        if assignment.is_detour:
            via = assignment.detour_via
            assert via is not None
            hops = (
                self._hops(src, via)
                + self._hops(via, dst)
            )
            self.network_hops_total += 2 * hops
            return (
                NETWORK_BASE
                + SERVICE_LATENCY
                + DETOUR_SOFTWARE_PENALTY
                + 2 * hops * HOP_LATENCY
            )
        assert assignment.network is not None
        # DoR paths are minimal: the hop count is the Manhattan distance,
        # whichever network (X-Y or Y-X) the kernel assigned.
        hops = self._hops(src, dst)
        self.network_hops_total += 2 * hops
        return NETWORK_BASE + SERVICE_LATENCY + 2 * hops * HOP_LATENCY

    def _hops(self, a: Coord, b: Coord) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def _resolve_bank(self, coord: Coord, bank: int) -> MemoryBank:
        """The physical bank behind a shared address (for data movement)."""
        return self.tile(coord).banks[bank]

    # -- direct memory API (used by workloads and the DfT loader) -----------

    def read_shared(self, tile: Coord, bank: int, offset: int) -> int:
        """Host-side read of a shared word (no latency accounting)."""
        return self._resolve_bank(tile, bank).read_word(offset)

    def write_shared(self, tile: Coord, bank: int, offset: int, value: int) -> None:
        """Host-side write of a shared word (program/data loading path)."""
        self._resolve_bank(tile, bank).write_word(offset, value)

    # -- program execution ----------------------------------------------------

    def broadcast_program(self, program: Program) -> None:
        """Load one program into every core of every healthy tile."""
        for tile in self.tiles.values():
            tile.load_program_all_cores(program)

    def run_to_completion(self, max_cycles: int = 1_000_000) -> int:
        """Step all cores in lock-step until every core halts."""
        cycles = 0
        while not all(t.all_halted for t in self.tiles.values()):
            if cycles >= max_cycles:
                raise EmulatorError(f"system exceeded {max_cycles} cycles")
            for tile in self.tiles.values():
                tile.step()
            cycles += 1
        return cycles

    # -- accounting -----------------------------------------------------------

    @property
    def total_remote_accesses(self) -> int:
        """Remote shared accesses issued system-wide."""
        return sum(t.remote_reads + t.remote_writes for t in self.tiles.values())

    @property
    def mean_hops_per_access(self) -> float:
        """Average round-trip hop count per network access."""
        if self.network_accesses == 0:
            return 0.0
        return self.network_hops_total / self.network_accesses
