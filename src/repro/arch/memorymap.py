"""The unified global address space (paper Section II).

Any core on any tile can directly address the globally shared memory of
the entire wafer.  We adopt a concrete map consistent with the paper's
sizes (word-addressed, 32-bit words):

=====================  ==========================================
region                 layout
=====================  ==========================================
``SHARED``             ``0x0000_0000 +`` tile_id * 512KB
                       + bank * 128KB + offset — the four shared
                       banks of every tile, 512MB total
``TILE_PRIVATE``       ``0x2000_0000 +`` tile_id * 128KB + offset
                       — the fifth bank, accessible only from its
                       own tile (cores and routers)
``CORE_PRIVATE``       ``0x4000_0000 +`` core-local 64KB SRAM
                       (same window on every core)
=====================  ==========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import Coord, SystemConfig
from ..errors import MemoryMapError

SHARED_BASE = 0x0000_0000
TILE_PRIVATE_BASE = 0x2000_0000
CORE_PRIVATE_BASE = 0x4000_0000
CORE_PRIVATE_SIZE = 64 * 1024
WORD_BYTES = 4


class AddressRegion(enum.Enum):
    """Top-level regions of the unified address space."""

    SHARED = "shared"
    TILE_PRIVATE = "tile_private"
    CORE_PRIVATE = "core_private"


@dataclass(frozen=True)
class DecodedAddress:
    """A fully decoded global address."""

    region: AddressRegion
    tile: Coord | None          # None for core-private
    bank: int | None            # None for core-private
    offset: int                 # byte offset within the bank / SRAM

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise MemoryMapError("negative offset")


class MemoryMap:
    """Encoder/decoder for the unified address space of one configuration."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.shared_tile_bytes = config.shared_banks_per_tile * config.bank_bytes
        self.shared_size = config.tiles * self.shared_tile_bytes
        self.tile_private_size = config.tiles * config.bank_bytes
        if SHARED_BASE + self.shared_size > TILE_PRIVATE_BASE:
            raise MemoryMapError("shared region overflows its window")
        if TILE_PRIVATE_BASE + self.tile_private_size > CORE_PRIVATE_BASE:
            raise MemoryMapError("tile-private region overflows its window")

    # -- encode ---------------------------------------------------------

    def tile_id(self, tile: Coord) -> int:
        """Linear tile id (row-major)."""
        self.config.validate_coord(tile)
        return tile[0] * self.config.cols + tile[1]

    def tile_of_id(self, tile_id: int) -> Coord:
        """Inverse of :meth:`tile_id`."""
        if not 0 <= tile_id < self.config.tiles:
            raise MemoryMapError(f"tile id {tile_id} out of range")
        return (tile_id // self.config.cols, tile_id % self.config.cols)

    def shared_address(self, tile: Coord, bank: int, offset: int) -> int:
        """Global address of a byte in a shared bank."""
        if not 0 <= bank < self.config.shared_banks_per_tile:
            raise MemoryMapError(
                f"bank {bank} not in 0..{self.config.shared_banks_per_tile - 1}"
            )
        if not 0 <= offset < self.config.bank_bytes:
            raise MemoryMapError(f"offset {offset} outside bank")
        return (
            SHARED_BASE
            + self.tile_id(tile) * self.shared_tile_bytes
            + bank * self.config.bank_bytes
            + offset
        )

    def tile_private_address(self, tile: Coord, offset: int) -> int:
        """Global address of a byte in a tile's private bank."""
        if not 0 <= offset < self.config.bank_bytes:
            raise MemoryMapError(f"offset {offset} outside bank")
        return TILE_PRIVATE_BASE + self.tile_id(tile) * self.config.bank_bytes + offset

    def core_private_address(self, offset: int) -> int:
        """Core-local SRAM address (same window on every core)."""
        if not 0 <= offset < CORE_PRIVATE_SIZE:
            raise MemoryMapError(f"offset {offset} outside core SRAM")
        return CORE_PRIVATE_BASE + offset

    # -- decode ---------------------------------------------------------

    def decode(self, address: int) -> DecodedAddress:
        """Decode any global address; raises on unmapped ranges."""
        if address < 0:
            raise MemoryMapError("negative address")
        if SHARED_BASE <= address < SHARED_BASE + self.shared_size:
            rel = address - SHARED_BASE
            tile_id, rel = divmod(rel, self.shared_tile_bytes)
            bank, offset = divmod(rel, self.config.bank_bytes)
            return DecodedAddress(
                region=AddressRegion.SHARED,
                tile=self.tile_of_id(tile_id),
                bank=bank,
                offset=offset,
            )
        if (
            TILE_PRIVATE_BASE
            <= address
            < TILE_PRIVATE_BASE + self.tile_private_size
        ):
            rel = address - TILE_PRIVATE_BASE
            tile_id, offset = divmod(rel, self.config.bank_bytes)
            return DecodedAddress(
                region=AddressRegion.TILE_PRIVATE,
                tile=self.tile_of_id(tile_id),
                bank=self.config.shared_banks_per_tile,  # the fifth bank
                offset=offset,
            )
        if CORE_PRIVATE_BASE <= address < CORE_PRIVATE_BASE + CORE_PRIVATE_SIZE:
            return DecodedAddress(
                region=AddressRegion.CORE_PRIVATE,
                tile=None,
                bank=None,
                offset=address - CORE_PRIVATE_BASE,
            )
        raise MemoryMapError(f"address {address:#010x} unmapped")

    def is_remote(self, address: int, from_tile: Coord) -> bool:
        """Does an access from ``from_tile`` traverse the mesh?"""
        decoded = self.decode(address)
        if decoded.region is AddressRegion.CORE_PRIVATE:
            return False
        if decoded.region is AddressRegion.TILE_PRIVATE:
            if decoded.tile != from_tile:
                raise MemoryMapError(
                    f"tile-private bank of {decoded.tile} is not accessible "
                    f"from {from_tile}"
                )
            return False
        return decoded.tile != from_tile
