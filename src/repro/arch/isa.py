"""A minimal functional ISA for the core model.

The real chiplets carry ARM Cortex-M3 cores; the paper declares the
microarchitecture out of scope, and what the system-level emulation needs
is only "independently programmable cores that load/store into the unified
address space".  This 16-register load/store ISA covers that, with a tiny
two-pass assembler for writing test programs and examples.

Instruction set (rd/ra/rb are registers, imm a signed integer, label a
branch target):

=========  =======================  ====================================
mnemonic   operands                 semantics
=========  =======================  ====================================
``LDI``    rd, imm                  rd = imm
``MOV``    rd, ra                   rd = ra
``ADD``    rd, ra, rb               rd = ra + rb
``SUB``    rd, ra, rb               rd = ra - rb
``MUL``    rd, ra, rb               rd = ra * rb
``AND``    rd, ra, rb               bitwise and
``OR``     rd, ra, rb               bitwise or
``SHL``    rd, ra, imm              rd = ra << imm
``SHR``    rd, ra, imm              logical shift right
``LD``     rd, ra                   rd = mem32[ra]   (global address)
``ST``     ra, rb                   mem32[ra] = rb
``BEQ``    ra, rb, label            branch when ra == rb
``BNE``    ra, rb, label            branch when ra != rb
``BLT``    ra, rb, label            branch when ra < rb (signed)
``JMP``    label                    unconditional branch
``NOP``                             no operation
``HALT``                            stop the core
=========  =======================  ====================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import EmulatorError

REGISTER_COUNT = 16
WORD_MASK = 0xFFFF_FFFF


class Opcode(enum.Enum):
    """All opcodes of the minimal ISA."""

    LDI = "ldi"
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    SHL = "shl"
    SHR = "shr"
    LD = "ld"
    ST = "st"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    JMP = "jmp"
    NOP = "nop"
    HALT = "halt"


THREE_REG = {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR}
SHIFT_OPS = {Opcode.SHL, Opcode.SHR}
BRANCH_OPS = {Opcode.BEQ, Opcode.BNE, Opcode.BLT}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    opcode: Opcode
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0
    target: int = 0             # resolved branch target (instruction index)

    def __post_init__(self) -> None:
        for reg in (self.rd, self.ra, self.rb):
            if not 0 <= reg < REGISTER_COUNT:
                raise EmulatorError(f"register r{reg} out of range")


@dataclass
class Program:
    """An assembled program."""

    instructions: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)


def _parse_register(token: str) -> int:
    token = token.strip().rstrip(",")
    if not token.lower().startswith("r"):
        raise EmulatorError(f"expected register, got {token!r}")
    try:
        index = int(token[1:])
    except ValueError:
        raise EmulatorError(f"bad register {token!r}") from None
    if not 0 <= index < REGISTER_COUNT:
        raise EmulatorError(f"register {token!r} out of range")
    return index


def _parse_imm(token: str) -> int:
    token = token.strip().rstrip(",")
    try:
        return int(token, 0)
    except ValueError:
        raise EmulatorError(f"bad immediate {token!r}") from None


def assemble(source: str) -> Program:
    """Two-pass assembler: labels end with ``:``, ``;`` starts a comment."""
    lines: list[tuple[str, list[str]]] = []
    labels: dict[str, int] = {}

    for raw in source.splitlines():
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        while line.endswith(":") or (":" in line and not line.startswith(":")):
            if ":" not in line:
                break
            label, _, rest = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise EmulatorError(f"bad label {label!r}")
            if label in labels:
                raise EmulatorError(f"duplicate label {label!r}")
            labels[label] = len(lines)
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        parts = line.split()
        lines.append((parts[0].lower(), parts[1:]))

    instructions: list[Instruction] = []
    for mnemonic, operands in lines:
        try:
            opcode = Opcode(mnemonic)
        except ValueError:
            raise EmulatorError(f"unknown mnemonic {mnemonic!r}") from None

        if opcode is Opcode.LDI:
            instructions.append(
                Instruction(opcode, rd=_parse_register(operands[0]),
                            imm=_parse_imm(operands[1]))
            )
        elif opcode is Opcode.MOV:
            instructions.append(
                Instruction(opcode, rd=_parse_register(operands[0]),
                            ra=_parse_register(operands[1]))
            )
        elif opcode in THREE_REG:
            instructions.append(
                Instruction(
                    opcode,
                    rd=_parse_register(operands[0]),
                    ra=_parse_register(operands[1]),
                    rb=_parse_register(operands[2]),
                )
            )
        elif opcode in SHIFT_OPS:
            instructions.append(
                Instruction(
                    opcode,
                    rd=_parse_register(operands[0]),
                    ra=_parse_register(operands[1]),
                    imm=_parse_imm(operands[2]),
                )
            )
        elif opcode is Opcode.LD:
            instructions.append(
                Instruction(opcode, rd=_parse_register(operands[0]),
                            ra=_parse_register(operands[1]))
            )
        elif opcode is Opcode.ST:
            instructions.append(
                Instruction(opcode, ra=_parse_register(operands[0]),
                            rb=_parse_register(operands[1]))
            )
        elif opcode in BRANCH_OPS:
            label = operands[2].strip()
            if label not in labels:
                raise EmulatorError(f"undefined label {label!r}")
            instructions.append(
                Instruction(
                    opcode,
                    ra=_parse_register(operands[0]),
                    rb=_parse_register(operands[1]),
                    target=labels[label],
                )
            )
        elif opcode is Opcode.JMP:
            label = operands[0].strip()
            if label not in labels:
                raise EmulatorError(f"undefined label {label!r}")
            instructions.append(Instruction(opcode, target=labels[label]))
        elif opcode in (Opcode.NOP, Opcode.HALT):
            instructions.append(Instruction(opcode))
        else:   # pragma: no cover - exhaustive above
            raise EmulatorError(f"unhandled opcode {opcode}")

    return Program(instructions=instructions, labels=labels)
