"""The tile: compute chiplet + memory chiplet (paper Section II, Fig. 1).

A tile bundles 14 cores (each with private SRAM), the five banks of its
memory chiplet, the intra-tile crossbar and the network adapters.  The
tile implements the cores' memory port: it decodes global addresses,
serves local accesses (core SRAM, the tile's shared banks, the
tile-private bank) and forwards remote shared accesses to the system's
network model, charging the returned round-trip latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..config import Coord, SystemConfig
from ..errors import EmulatorError, MemoryMapError
from .core import Core
from .crossbar import Crossbar
from .isa import Program
from .membank import MemoryBank
from .memorymap import AddressRegion, MemoryMap

if TYPE_CHECKING:   # pragma: no cover
    from .system import WaferscaleSystem

# Local access latencies in cycles (crossbar traversal + SRAM).
CORE_SRAM_LATENCY = 1
LOCAL_BANK_LATENCY = 2


class Tile:
    """One tile of the waferscale array."""

    def __init__(
        self,
        coord: Coord,
        config: SystemConfig,
        memory_map: MemoryMap,
        remote_access: Callable[[Coord, Coord, bool], int] | None = None,
    ):
        """``remote_access(src, dst, is_write) -> latency_cycles``.

        Supplied by :class:`~repro.arch.system.WaferscaleSystem`; a tile
        created standalone treats remote accesses as errors.
        """
        self.coord = coord
        self.config = config
        self.memory_map = memory_map
        self._remote_access = remote_access

        self.banks = [
            MemoryBank(config.bank_bytes, name=f"tile{coord}-bank{i}")
            for i in range(config.memory_banks_per_tile)
        ]
        self.core_srams = [
            MemoryBank(
                config.private_sram_per_core_bytes,
                name=f"tile{coord}-core{i}-sram",
            )
            for i in range(config.cores_per_tile)
        ]
        targets = [f"bank{i}" for i in range(config.memory_banks_per_tile)]
        targets.append("network")
        self.crossbar = Crossbar(masters=config.cores_per_tile, targets=targets)
        self.cores = [
            Core(core_index=i, port=_TilePort(self, i))
            for i in range(config.cores_per_tile)
        ]
        self.remote_reads = 0
        self.remote_writes = 0

    # -- program loading ---------------------------------------------------

    def load_program_all_cores(self, program: Program) -> None:
        """Broadcast-load the same program to every core (Section VII)."""
        for core in self.cores:
            core.load_program(program)

    def load_program(self, core_index: int, program: Program) -> None:
        """Load a program into one core."""
        self.cores[core_index].load_program(program)

    # -- memory access (cores call through _TilePort) ----------------------

    def access(
        self, core_index: int, address: int, value: int | None
    ) -> tuple[int, int]:
        """Serve a core's load (value=None) or store; returns (data, latency)."""
        decoded = self.memory_map.decode(address)

        if decoded.region is AddressRegion.CORE_PRIVATE:
            sram = self.core_srams[core_index]
            if value is None:
                return (sram.read_word(decoded.offset), CORE_SRAM_LATENCY)
            sram.write_word(decoded.offset, value)
            return (0, CORE_SRAM_LATENCY)

        if decoded.region is AddressRegion.TILE_PRIVATE:
            if decoded.tile != self.coord:
                raise MemoryMapError(
                    f"tile-private bank of {decoded.tile} accessed from "
                    f"{self.coord}"
                )
            bank = self.banks[self.config.shared_banks_per_tile]
            if value is None:
                return (bank.read_word(decoded.offset), LOCAL_BANK_LATENCY)
            bank.write_word(decoded.offset, value)
            return (0, LOCAL_BANK_LATENCY)

        # Shared region.
        assert decoded.tile is not None and decoded.bank is not None
        if decoded.tile == self.coord:
            bank = self.banks[decoded.bank]
            if value is None:
                return (bank.read_word(decoded.offset), LOCAL_BANK_LATENCY)
            bank.write_word(decoded.offset, value)
            return (0, LOCAL_BANK_LATENCY)

        # Remote shared accesses are handled in _TilePort (they need the
        # owner tile's banks); reaching here means a standalone tile was
        # asked for remote data.
        raise EmulatorError(
            f"tile {self.coord}: remote access to {decoded.tile} must go "
            "through a system-attached port"
        )

    # -- stepping -----------------------------------------------------------

    def step(self) -> None:
        """Advance every core one cycle."""
        for core in self.cores:
            core.step()

    @property
    def all_halted(self) -> bool:
        """True when every core has halted."""
        return all(core.halted for core in self.cores)

    @property
    def shared_bank_accesses(self) -> int:
        """Accesses served by this tile's shared banks."""
        return sum(
            b.access_count
            for b in self.banks[: self.config.shared_banks_per_tile]
        )


class _TilePort:
    """Adapter giving one core its MemoryPort view of the tile."""

    def __init__(self, tile: Tile, core_index: int):
        self._tile = tile
        self._core_index = core_index

    def read(self, core_index: int, address: int) -> tuple[int, int]:
        decoded = self._tile.memory_map.decode(address)
        if (
            decoded.region is AddressRegion.SHARED
            and decoded.tile != self._tile.coord
        ):
            # Remote read: fetch from the owner tile's bank + network latency.
            system = self._tile._remote_access
            if system is None:
                raise EmulatorError("remote access without a network")
            latency = system(self._tile.coord, decoded.tile, False)
            self._tile.remote_reads += 1
            owner_bank = self._tile_owner_bank(decoded.tile, decoded.bank)
            return (owner_bank.read_word(decoded.offset), latency)
        value, latency = self._tile.access(core_index, address, None)
        return (value, latency)

    def write(self, core_index: int, address: int, value: int) -> int:
        decoded = self._tile.memory_map.decode(address)
        if (
            decoded.region is AddressRegion.SHARED
            and decoded.tile != self._tile.coord
        ):
            system = self._tile._remote_access
            if system is None:
                raise EmulatorError("remote access without a network")
            latency = system(self._tile.coord, decoded.tile, True)
            self._tile.remote_writes += 1
            owner_bank = self._tile_owner_bank(decoded.tile, decoded.bank)
            owner_bank.write_word(decoded.offset, value)
            return latency
        _, latency = self._tile.access(core_index, address, value)
        return latency

    def _tile_owner_bank(self, tile: Coord, bank: int) -> MemoryBank:
        resolver = getattr(self._tile, "_bank_resolver", None)
        if resolver is None:
            raise EmulatorError(
                "remote data access requires a system-attached tile"
            )
        return resolver(tile, bank)
