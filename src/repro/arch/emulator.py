"""Task-level multi-tile emulator (the FPGA-validation analogue).

The paper validated the architecture by emulating a reduced-size
multi-tile system on FPGA and running graph workloads.  Instruction-level
simulation of thousands of cores is impractical in Python, so — exactly
like the paper scaled down to FPGA — this emulator runs *task-level*
kernels: workloads are expressed as per-tile compute steps plus explicit
inter-tile messages, and the emulator accounts cycles using the same
latency model as :class:`~repro.arch.system.WaferscaleSystem`.

The superstep model (compute locally, exchange messages, repeat) matches
how BFS/SSSP are written for such machines, and the message path respects
the kernel's fault-aware network assignment — so a workload run on a
faulty wafer exercises the dual-network resiliency machinery end to end.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from ..config import Coord
from ..errors import EmulatorError, NetworkError
from ..fastpath import VECTOR_ENGINE_KINDS, resolve_engine_kind
from ..noc.faults import FaultMap
from ..noc.routing import dor_path
from ..obs.telemetry import Telemetry, resolve_telemetry
from .system import (
    DETOUR_SOFTWARE_PENALTY,
    HOP_LATENCY,
    NETWORK_BASE,
    SERVICE_LATENCY,
    WaferscaleSystem,
)

#: Engine kinds the emulator implements (mirrors ``noc.simulator.ENGINES``).
ENGINES = ("reference", "fast", "vector")

#: Route entry: (one-way hops, is_detour, reachable).
_Route = tuple[int, bool, bool]

# Shared per-fault-map route tables.  The flow cost of a (src, dst) pair —
# hop count, detour flag, reachability — is a pure function of the fault
# map (the kernel's network *choice* balances load but never changes the
# DoR hop count, which is the Manhattan distance), so emulators running
# over the same map share one table and each pair is derived exactly once.
_ROUTE_CACHE: OrderedDict[FaultMap, dict[tuple[Coord, Coord], _Route]] = (
    OrderedDict()
)
_ROUTE_CACHE_MAPS = 8


def _shared_routes(fault_map: FaultMap) -> dict[tuple[Coord, Coord], _Route]:
    """The shared route table for ``fault_map`` (LRU-bounded registry)."""
    routes = _ROUTE_CACHE.get(fault_map)
    if routes is None:
        routes = _ROUTE_CACHE[fault_map] = {}
        while len(_ROUTE_CACHE) > _ROUTE_CACHE_MAPS:
            _ROUTE_CACHE.popitem(last=False)
    else:
        _ROUTE_CACHE.move_to_end(fault_map)
    return routes


# Additional per-fault-map caches (the vector engine's route tables)
# register a clearer here so ``clear_route_cache`` drops them too.
_EXTRA_CACHE_CLEARERS: list[Callable[[], None]] = []


def clear_route_cache() -> None:
    """Drop all shared route tables (benchmark / test isolation)."""
    _ROUTE_CACHE.clear()
    for clearer in _EXTRA_CACHE_CLEARERS:
        clearer()


@dataclass
class Message:
    """One inter-tile message (a packet's worth of payload)."""

    src: Coord
    dst: Coord
    payload: object
    words: int = 2          # 64-bit payload = 2 words


@dataclass
class EmulationStats:
    """Accounting of one emulated workload run."""

    supersteps: int = 0
    messages_sent: int = 0
    message_hops: int = 0
    detoured_messages: int = 0
    local_compute_cycles: int = 0
    network_cycles: int = 0
    per_step_messages: list[int] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """Estimated cycles: compute and communication overlap per step."""
        return max(self.local_compute_cycles, self.network_cycles)

    @property
    def mean_hops_per_message(self) -> float:
        """Average one-way hops per message."""
        if self.messages_sent == 0:
            return 0.0
        return self.message_hops / self.messages_sent


class Emulator:
    """Superstep-driven task-level emulator over a waferscale system."""

    #: Histogram buckets for one-way hops per message.
    HOP_BUCKETS = tuple(float(2**i) for i in range(0, 8))

    def __new__(
        cls,
        system: WaferscaleSystem | None = None,
        telemetry: Telemetry | None = None,
        engine: str | None = None,
        route_cache: bool | None = None,
        checkers=None,
    ):
        # Factory dispatch (mirrors NocSimulator): Emulator(engine="vector")
        # builds the struct-of-arrays engine.  Resolution/validation of the
        # keyword happens once, in ``__init__``.
        if cls is Emulator and engine == "vector":
            from .vectoremu import VectorEmulator

            return super().__new__(VectorEmulator)
        return super().__new__(cls)

    def __init__(
        self,
        system: WaferscaleSystem,
        telemetry: Telemetry | None = None,
        engine: str | None = None,
        route_cache: bool | None = None,
        checkers=None,
    ):
        self.system = system
        self.engine = resolve_engine_kind(
            engine,
            entry_point="Emulator",
            kinds=VECTOR_ENGINE_KINDS,
            deprecated_name="route_cache",
            deprecated_value=route_cache,
            deprecated_map={True: "fast", False: "reference"},
        )
        self.stats = EmulationStats()
        # Route checkers (``on_route``) fire on shared-route-cache hits —
        # e.g. RouteCoherenceChecker re-deriving sampled cached entries.
        self.checkers = list(checkers or ())
        fns = [c.on_route for c in self.checkers if hasattr(c, "on_route")]
        self._chk_route = fns or None
        self._inboxes: dict[Coord, list[Message]] = {
            coord: [] for coord in system.healthy_coords()
        }
        self._outbox: list[Message] = []
        self._routes = (
            _shared_routes(system.fault_map) if self.engine == "fast" else None
        )

        tel = resolve_telemetry(telemetry)
        self.telemetry = tel
        self._obs: Telemetry | None = tel if tel.enabled else None
        self._timeline_cycles = 0        # trace timestamps: emulated cycles
        if self._obs is not None:
            metrics = tel.metrics
            self._m_messages = metrics.counter("emu.messages_sent")
            self._m_detoured = metrics.counter("emu.detoured_messages")
            self._m_supersteps = metrics.counter("emu.supersteps")
            self._m_route_hits = metrics.counter("emu.route_cache_hits")
            self._m_route_misses = metrics.counter("emu.route_cache_misses")
            self._m_hops = metrics.histogram(
                "emu.hops_per_message", buckets=self.HOP_BUCKETS
            )

    # -- messaging ---------------------------------------------------------

    def send(self, src: Coord, dst: Coord, payload: object, words: int = 2) -> None:
        """Queue a message for delivery at the next superstep barrier."""
        if src not in self._inboxes:
            raise EmulatorError(f"source tile {src} is faulty or absent")
        if dst not in self._inboxes:
            raise EmulatorError(f"destination tile {dst} is faulty or absent")
        if words < 1:
            raise EmulatorError("message must carry at least one word")
        self._outbox.append(Message(src=src, dst=dst, payload=payload, words=words))

    def send_batch(
        self,
        src: Coord,
        dsts,
        payload: object = None,
        words: int = 2,
    ) -> None:
        """Queue one message from ``src`` to every tile in ``dsts``.

        ``dsts`` is a sequence of coordinates or a numpy integer array of
        flat row-major tile ids.  Semantically identical to calling
        :meth:`send` once per destination with the same payload and word
        count; the vector engine overrides it to append the whole batch as
        flat arrays and materialise :class:`Message` objects lazily at the
        delivery barrier.
        """
        cols = self.system.config.cols
        for dst in dsts:
            if not isinstance(dst, tuple):
                dst = (int(dst) // cols, int(dst) % cols)
            self.send(src, dst, payload, words=words)

    def _route(self, src: Coord, dst: Coord) -> tuple[int, bool]:
        """One-way hops and detour flag for one flow.

        With the route cache enabled (the default), each (src, dst) pair
        is derived once per fault map — `kernel.assign` plus, for detours,
        the two-leg Manhattan sum — and every later flow is a dict hit.
        Non-detour hop counts use the closed form directly: DoR paths are
        minimal, so their hop count *is* the Manhattan distance.  The
        reference path (``engine="reference"``) keeps the explicit
        per-flow assignment and `dor_path` walk for differential testing.
        """
        routes = self._routes
        if routes is not None:
            cached = routes.get((src, dst))
            if cached is not None:
                if self._obs is not None:
                    self._m_route_hits.inc()
                if self._chk_route is not None:
                    for fn in self._chk_route:
                        fn(self, src, dst, cached)
                hops, is_detour, reachable = cached
                if not reachable:
                    raise NetworkError(f"no path for messages {src} -> {dst}")
                return hops, is_detour

        assignment = self.system.kernel.assign(src, dst, allow_detour=True)
        reachable = assignment.reachable or assignment.is_detour
        if assignment.is_detour:
            via = assignment.detour_via
            assert via is not None
            hops = (
                abs(via[0] - src[0]) + abs(via[1] - src[1])
                + abs(dst[0] - via[0]) + abs(dst[1] - via[1])
            )
            is_detour = True
        elif reachable:
            assert assignment.network is not None
            if routes is None:
                hops = len(dor_path(src, dst, assignment.network.policy)) - 1
            else:
                hops = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
            is_detour = False
        else:
            hops, is_detour = 0, False

        if routes is not None:
            if self._obs is not None:
                self._m_route_misses.inc()
            routes[(src, dst)] = (hops, is_detour, reachable)
        if not reachable:
            raise NetworkError(f"no path for messages {src} -> {dst}")
        return hops, is_detour

    def _deliver(self) -> int:
        """Deliver queued messages; returns the step's network cycle cost.

        Each (src, dst) flow is serialised on its assigned network; flows
        proceed in parallel, so the step cost is the slowest flow.
        """
        flows: dict[tuple[Coord, Coord], list[Message]] = {}
        for message in self._outbox:
            flows.setdefault((message.src, message.dst), []).append(message)
        self._outbox = []

        slowest = 0
        for (src, dst), messages in flows.items():
            if src == dst:
                for message in messages:
                    self._inboxes[dst].append(message)
                continue
            hops, is_detour = self._route(src, dst)
            if is_detour:
                per_message = DETOUR_SOFTWARE_PENALTY
                self.stats.detoured_messages += len(messages)
                if self._obs is not None:
                    self._m_detoured.inc(len(messages))
            else:
                per_message = 0

            # First message pays the full path; the rest pipeline behind it
            # (one packet per cycle per flow), each paying its word count.
            words = sum(m.words for m in messages)
            flow_cycles = (
                NETWORK_BASE
                + SERVICE_LATENCY
                + hops * HOP_LATENCY
                + words
                + per_message * len(messages)
            )
            slowest = max(slowest, flow_cycles)
            self.stats.messages_sent += len(messages)
            self.stats.message_hops += hops * len(messages)
            if self._obs is not None:
                self._m_messages.inc(len(messages))
                self._m_hops.observe(hops, count=len(messages))
                self.telemetry.metrics.counter(
                    "emu.tile_messages", tile=f"{src[0]},{src[1]}"
                ).inc(len(messages))
            for message in messages:
                self._inboxes[dst].append(message)
        return slowest

    # -- superstep loop -------------------------------------------------------

    def superstep(
        self,
        compute: Callable[[Coord, list[Message], "Emulator"], int],
    ) -> bool:
        """Run one superstep.

        ``compute(tile, inbox, emulator)`` processes the tile's inbox,
        optionally calls :meth:`send`, and returns its local compute cycle
        count.  Returns True when the step did any work (messages moved or
        compute reported nonzero cycles) — the workload's convergence test.
        """
        inboxes = self._inboxes
        self._inboxes = {coord: [] for coord in inboxes}

        busiest = 0
        any_messages = False
        for coord, inbox in inboxes.items():
            cycles = compute(coord, inbox, self)
            if cycles < 0:
                raise EmulatorError("compute cycles cannot be negative")
            busiest = max(busiest, cycles)
            any_messages = any_messages or bool(inbox)

        sent_before = self.stats.messages_sent
        network_cycles = self._deliver()
        self.stats.supersteps += 1
        self.stats.local_compute_cycles += busiest
        self.stats.network_cycles += network_cycles
        self.stats.per_step_messages.append(self.stats.messages_sent - sent_before)
        if self._obs is not None:
            self._m_supersteps.inc()
            step_messages = self.stats.messages_sent - sent_before
            step_cycles = max(busiest, network_cycles)
            start = self._timeline_cycles
            self._timeline_cycles += max(step_cycles, 1)
            self.telemetry.tracer.complete(
                f"superstep {self.stats.supersteps - 1}",
                ts=start,
                dur=max(step_cycles, 1),
                cat="emu",
                compute_cycles=busiest,
                network_cycles=network_cycles,
                messages=step_messages,
            )
        return bool(network_cycles) or busiest > 0 or any_messages

    def run(
        self,
        compute: Callable[[Coord, list[Message], "Emulator"], int],
        max_supersteps: int = 10_000,
    ) -> EmulationStats:
        """Run supersteps until quiescent (no work and no messages)."""
        for _ in range(max_supersteps):
            progressed = self.superstep(compute)
            if not progressed and not self._outbox and not any(
                self._inboxes.values()
            ):
                return self.stats
        raise EmulatorError(f"workload did not converge in {max_supersteps} steps")
