"""Struct-of-arrays whole-wafer emulator engine (``engine="vector"``).

The reference and fast emulators walk the delivery barrier flow by flow
in Python: a dict groups the outbox into (src, dst) flows, and each flow
pays a route lookup, an integer cost expression, and a handful of stat
increments.  On a full-wafer frontier (a BFS wave touching most of the
2048-chiplet array) that loop is the dominant cost of a superstep.

:class:`VectorEmulator` replaces the loop with whole-array numpy:

* queued messages are kept as flat arrays (source id, destination id,
  word count) alongside the :class:`~repro.arch.emulator.Message`
  objects, so the barrier starts from struct-of-arrays state;
* one ``np.unique`` over composite ``src * n + dst`` keys aggregates
  messages into flows — ``return_index`` recovers the reference
  engine's first-occurrence flow order, ``return_inverse`` +
  ``return_counts`` give the per-flow membership;
* hops, detour flags, and reachability are resolved for *all* flows at
  once: a per-fault-map :class:`_RouteTable` holds the direct
  round-trip-reachability matrix (derived from the Fig. 6 blockage
  cumulative-sum tables), non-detour hop counts are the closed-form
  Manhattan distance, and the rare blocked pairs fall back to a
  vectorized detour search that replicates ``KernelRouter.find_detour``
  exactly (minimal two-leg Manhattan cost, earliest row-major
  candidate on ties);
* latency and counters come from array reductions — all integer ops
  (``np.add.reduceat`` word sums, masked max), so every
  :class:`~repro.arch.emulator.EmulationStats` field is bit-identical
  to the reference engine, not merely close.

Message *delivery* (appending to per-tile inboxes) stays a Python loop
over the permutation that sorts messages into flow order: inbox content
feeds back into workload compute, so ordering must match the reference
engine message for message.

On top of the single-trial engine, :func:`emulate_batch` advances N
independent systems (N fault maps x N seed streams) through one kernel
per superstep — composite keys gain a trial component, per-trial stats
come from segmented reductions (``np.add.at`` / ``np.maximum.at``) and
are bit-identical to N individual runs, mirroring
:func:`repro.noc.vectorsim.simulate_batch`.

One observable difference from the reference engine: an unreachable
flow raises :class:`~repro.errors.NetworkError` *before* any message of
the superstep is delivered or accounted, where the reference engine
raises mid-loop with earlier flows already delivered.  Stats after a
raised superstep are unspecified on both engines; converged runs are
identical.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from ..config import Coord
from ..errors import EmulatorError, NetworkError
from ..noc.connectivity import _blockage_matrix
from ..noc.faults import FaultMap
from ..obs.telemetry import Telemetry
from .emulator import _EXTRA_CACHE_CLEARERS, EmulationStats, Emulator, Message
from .system import (
    DETOUR_SOFTWARE_PENALTY,
    HOP_LATENCY,
    NETWORK_BASE,
    SERVICE_LATENCY,
    WaferscaleSystem,
)


class _RouteTable:
    """Vectorized per-fault-map route state.

    ``direct[s, d]`` is True when the (s, d) round trip succeeds on at
    least one network without a detour: XY-L clearness of ``s -> d`` or
    of ``d -> s`` (request and response of the two networks traverse the
    same two Ls, so round-trip reachability collapses to the symmetric
    ``~(xy_blocked & xy_blocked.T)`` of the Fig. 6 blockage matrix).
    Detours are derived lazily per blocked pair and memoised — the same
    "pure function of the fault map" argument as the fast engine's
    shared route table.
    """

    def __init__(self, fault_map: FaultMap) -> None:
        config = fault_map.config
        self.rows = config.rows
        self.cols = config.cols
        self.n = config.rows * config.cols
        xy_blocked, healthy = _blockage_matrix(fault_map)
        self.healthy = healthy
        self.direct = ~(xy_blocked & xy_blocked.T)
        self.direct_flat = np.ascontiguousarray(self.direct).reshape(-1)
        ids = np.arange(self.n, dtype=np.int64)
        self._r = ids // self.cols
        self._c = ids % self.cols
        #: pair key (src * n + dst) -> (detour hops, reachable)
        self._detours: dict[int, tuple[int, bool]] = {}

    def detour(self, key: int) -> tuple[int, bool]:
        """Two-leg hop count and reachability for a blocked pair."""
        hit = self._detours.get(key)
        if hit is None:
            hit = self._detours[key] = self._find_detour(key)
        return hit

    def _find_detour(self, key: int) -> tuple[int, bool]:
        # Replicates KernelRouter.find_detour: candidates are healthy
        # tiles (excluding the endpoints) reachable from src and able to
        # reach dst; pick the minimal src->via->dst Manhattan cost, and
        # on ties the earliest row-major candidate (np.argmin's
        # first-occurrence rule over the row-major id axis).
        src, dst = divmod(key, self.n)
        ok = self.healthy & self.direct[src] & self.direct[:, dst]
        ok[src] = False
        ok[dst] = False
        if not ok.any():
            return 0, False
        r, c = self._r, self._c
        cost = (
            np.abs(r - r[src]) + np.abs(c - c[src])
            + np.abs(r[dst] - r) + np.abs(c[dst] - c)
        )
        cost = np.where(ok, cost, np.iinfo(np.int64).max)
        via = int(np.argmin(cost))
        return int(cost[via]), True


# Shared per-fault-map tables, LRU-bounded like the fast engine's
# _ROUTE_CACHE; cleared alongside it by arch.emulator.clear_route_cache.
_TABLE_CACHE: OrderedDict[FaultMap, _RouteTable] = OrderedDict()
_TABLE_CACHE_MAPS = 8


def _shared_table(fault_map: FaultMap) -> _RouteTable:
    """The shared vector route table for ``fault_map``."""
    table = _TABLE_CACHE.get(fault_map)
    if table is None:
        table = _TABLE_CACHE[fault_map] = _RouteTable(fault_map)
        while len(_TABLE_CACHE) > _TABLE_CACHE_MAPS:
            _TABLE_CACHE.popitem(last=False)
    else:
        _TABLE_CACHE.move_to_end(fault_map)
    return table


def clear_table_cache() -> None:
    """Drop the shared vector route tables (test/benchmark isolation)."""
    _TABLE_CACHE.clear()


_EXTRA_CACHE_CLEARERS.append(clear_table_cache)


class _BatchSend:
    """A deferred ``send_batch`` segment: one source, many destinations."""

    __slots__ = ("src_id", "dst_ids", "payload", "words")

    def __init__(
        self, src_id: int, dst_ids: np.ndarray, payload: object, words: int
    ) -> None:
        self.src_id = src_id
        self.dst_ids = dst_ids
        self.payload = payload
        self.words = words


class _Flows:
    """Per-flow arrays of one delivery barrier, in first-occurrence order."""

    __slots__ = (
        "perm", "trial", "src", "dst", "counts", "words",
        "hops", "detour", "selfflow", "cycles",
    )


def _flow_kernel(
    src: np.ndarray,
    dst: np.ndarray,
    words: np.ndarray,
    trial: np.ndarray | None,
    tables: Sequence[_RouteTable],
    trial_note: Callable[[int], str] | None = None,
) -> _Flows:
    """Aggregate queued messages into flows and route them all at once.

    ``src``/``dst``/``words`` are int64 arrays over messages in send
    order; ``trial`` (or None for a single emulation) maps each message
    to its index in ``tables``.  Raises :class:`NetworkError` for the
    first unreachable flow (in first-occurrence order) before anything
    is accounted.
    """
    table0 = tables[0]
    n = table0.n
    cols = table0.cols
    if trial is None:
        keys = src * n + dst
    else:
        keys = (trial * n + src) * n + dst
    uniq, first_idx, inverse, counts = np.unique(
        keys, return_index=True, return_inverse=True, return_counts=True
    )
    nflows = len(uniq)
    if trial is None:
        ftrial = np.zeros(nflows, dtype=np.int64)
        rem = uniq
    else:
        ftrial = uniq // (n * n)
        rem = uniq % (n * n)
    fsrc = rem // n
    fdst = rem % n
    selfflow = fsrc == fdst

    # Direct reachability: one gather per trial present (flows are
    # key-sorted, so each trial's flows are a contiguous slice).
    direct = np.empty(nflows, dtype=bool)
    if trial is None:
        direct[:] = table0.direct_flat[rem]
    else:
        bounds = np.searchsorted(ftrial, np.arange(len(tables) + 1))
        for b, table in enumerate(tables):
            lo, hi = bounds[b], bounds[b + 1]
            if lo < hi:
                direct[lo:hi] = table.direct_flat[rem[lo:hi]]

    hops = np.abs(fsrc // cols - fdst // cols) + np.abs(fsrc % cols - fdst % cols)
    det_flag = np.zeros(nflows, dtype=bool)
    blocked = np.nonzero(~direct & ~selfflow)[0]
    if blocked.size:
        unreachable: list[int] = []
        for j in blocked.tolist():
            det_hops, ok = tables[int(ftrial[j])].detour(int(rem[j]))
            if ok:
                hops[j] = det_hops
                det_flag[j] = True
            else:
                unreachable.append(j)
        if unreachable:
            j = min(unreachable, key=lambda jj: first_idx[jj])
            s = (int(fsrc[j]) // cols, int(fsrc[j]) % cols)
            d = (int(fdst[j]) // cols, int(fdst[j]) % cols)
            note = trial_note(int(ftrial[j])) if trial_note is not None else ""
            raise NetworkError(f"no path for messages {s} -> {d}{note}")

    # First-occurrence flow order (the reference engine's dict insertion
    # order), then the message permutation grouping messages by flow —
    # stable, so within-flow send order is preserved.
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(nflows, dtype=np.int64)
    rank[order] = np.arange(nflows, dtype=np.int64)
    perm = np.argsort(rank[inverse], kind="stable")

    counts_o = counts[order]
    starts = np.zeros(nflows, dtype=np.int64)
    np.cumsum(counts_o[:-1], out=starts[1:])
    words_o = np.add.reduceat(words[perm], starts)
    hops_o = hops[order]
    det_o = det_flag[order]

    fl = _Flows()
    fl.perm = perm
    fl.trial = ftrial[order]
    fl.src = fsrc[order]
    fl.dst = fdst[order]
    fl.counts = counts_o
    fl.words = words_o
    fl.hops = hops_o
    fl.detour = det_o
    fl.selfflow = selfflow[order]
    fl.cycles = (
        NETWORK_BASE
        + SERVICE_LATENCY
        + hops_o * HOP_LATENCY
        + words_o
        + DETOUR_SOFTWARE_PENALTY * det_o * counts_o
    )
    return fl


class VectorEmulator(Emulator):
    """Whole-wafer struct-of-arrays emulator (``Emulator(engine="vector")``).

    Drop-in for the reference/fast engines: identical ``EmulationStats``
    (bit-for-bit), identical inbox ordering, identical telemetry
    counters, identical error messages for unreachable flows.  Adds a
    vectorized :meth:`send_batch` so frontier workloads can queue a
    whole wave of messages without per-message Python overhead.
    """

    def __init__(
        self,
        system: WaferscaleSystem,
        telemetry: Telemetry | None = None,
        engine: str | None = None,
        route_cache: bool | None = None,
        checkers=None,
    ):
        super().__init__(
            system,
            telemetry=telemetry,
            engine="vector" if engine is None else engine,
            route_cache=route_cache,
            checkers=checkers,
        )
        if self.engine != "vector":
            raise EmulatorError(
                f"VectorEmulator is the engine='vector' implementation; "
                f"got engine={self.engine!r}"
            )
        self._table = _shared_table(system.fault_map)
        self._cols = system.config.cols
        self._coord_of: list[Coord] = list(system.config.tile_coords())
        # Scalar sends mirror (src id, dst id, words) into flat lists in
        # send order; send_batch appends a _BatchSend marker to the
        # outbox so global ordering is reconstructible at the barrier.
        self._sc_src: list[int] = []
        self._sc_dst: list[int] = []
        self._sc_words: list[int] = []

    # -- messaging ---------------------------------------------------------

    def send(self, src: Coord, dst: Coord, payload: object, words: int = 2) -> None:
        super().send(src, dst, payload, words=words)
        cols = self._cols
        self._sc_src.append(src[0] * cols + src[1])
        self._sc_dst.append(dst[0] * cols + dst[1])
        self._sc_words.append(words)

    def send_batch(
        self,
        src: Coord,
        dsts,
        payload: object = None,
        words: int = 2,
    ) -> None:
        if src not in self._inboxes:
            raise EmulatorError(f"source tile {src} is faulty or absent")
        if words < 1:
            raise EmulatorError("message must carry at least one word")
        cols = self._cols
        if isinstance(dsts, np.ndarray):
            dst_ids = dsts.astype(np.int64, copy=True).ravel()
        else:
            dst_ids = np.fromiter(
                (d[0] * cols + d[1] for d in dsts), dtype=np.int64
            )
        if dst_ids.size == 0:
            return
        oob = (dst_ids < 0) | (dst_ids >= self._table.n)
        if oob.any() or not self._table.healthy[dst_ids].all():
            for did in dst_ids.tolist():
                if did < 0 or did >= self._table.n or not self._table.healthy[did]:
                    bad = (did // cols, did % cols) if 0 <= did else did
                    raise EmulatorError(
                        f"destination tile {bad} is faulty or absent"
                    )
        sid = src[0] * cols + src[1]
        self._outbox.append(_BatchSend(sid, dst_ids, payload, words))

    def _collect_outbox(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[Message]]:
        """Flatten the outbox into (src, dst, words) arrays + messages.

        Materialises ``send_batch`` segments into Message objects here
        (global send order), and clears the queued state.
        """
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        words_parts: list[np.ndarray] = []
        msgs: list[Message] = []
        coord_of = self._coord_of
        sc_lo = 0
        sc_hi = 0

        def flush_scalars() -> None:
            nonlocal sc_lo
            if sc_hi > sc_lo:
                src_parts.append(
                    np.array(self._sc_src[sc_lo:sc_hi], dtype=np.int64)
                )
                dst_parts.append(
                    np.array(self._sc_dst[sc_lo:sc_hi], dtype=np.int64)
                )
                words_parts.append(
                    np.array(self._sc_words[sc_lo:sc_hi], dtype=np.int64)
                )
                sc_lo = sc_hi

        for entry in self._outbox:
            if type(entry) is _BatchSend:
                flush_scalars()
                k = entry.dst_ids.size
                src_parts.append(np.full(k, entry.src_id, dtype=np.int64))
                dst_parts.append(entry.dst_ids)
                words_parts.append(np.full(k, entry.words, dtype=np.int64))
                src_coord = coord_of[entry.src_id]
                msgs.extend(
                    Message(
                        src=src_coord,
                        dst=coord_of[did],
                        payload=entry.payload,
                        words=entry.words,
                    )
                    for did in entry.dst_ids.tolist()
                )
            else:
                sc_hi += 1
                msgs.append(entry)
        flush_scalars()

        self._outbox = []
        self._sc_src = []
        self._sc_dst = []
        self._sc_words = []
        if len(src_parts) == 1:
            return src_parts[0], dst_parts[0], words_parts[0], msgs
        return (
            np.concatenate(src_parts),
            np.concatenate(dst_parts),
            np.concatenate(words_parts),
            msgs,
        )

    # -- delivery barrier --------------------------------------------------

    def _deliver(self) -> int:
        if not self._outbox:
            return 0
        src, dst, words, msgs = self._collect_outbox()
        fl = _flow_kernel(src, dst, words, None, (self._table,))
        slowest = self._account(fl)
        inboxes = self._inboxes
        coord_of = self._coord_of
        dst_of_flow = fl.dst
        # Deliver in flow order (first occurrence), send order within a
        # flow — exactly the reference engine's sequence.  Resolve each
        # inbox once per flow, not once per message.
        pos = 0
        perm_list = fl.perm.tolist()
        for j, count in enumerate(fl.counts.tolist()):
            inbox = inboxes[coord_of[dst_of_flow[j]]]
            for i in perm_list[pos:pos + count]:
                inbox.append(msgs[i])
            pos += count
        return slowest

    def _account(self, fl: _Flows) -> int:
        """Fold one barrier's flow arrays into stats/telemetry; slowest."""
        nonself = ~fl.selfflow
        counts_ns = fl.counts[nonself]
        if counts_ns.size == 0:
            return 0
        sent = int(counts_ns.sum())
        hop_total = int((fl.hops[nonself] * counts_ns).sum())
        det_msgs = int(fl.counts[fl.detour].sum())
        slowest = int(fl.cycles[nonself].max())
        stats = self.stats
        stats.messages_sent += sent
        stats.message_hops += hop_total
        stats.detoured_messages += det_msgs
        if self._obs is not None:
            self._m_messages.inc(sent)
            if det_msgs:
                self._m_detoured.inc(det_msgs)
            hops_ns = fl.hops[nonself].tolist()
            for h, c in zip(hops_ns, counts_ns.tolist()):
                self._m_hops.observe(h, count=c)
            metrics = self.telemetry.metrics
            coord_of = self._coord_of
            for s, c in zip(fl.src[nonself].tolist(), counts_ns.tolist()):
                sc = coord_of[s]
                metrics.counter(
                    "emu.tile_messages", tile=f"{sc[0]},{sc[1]}"
                ).inc(c)
        if self._chk_route is not None:
            coord_of = self._coord_of
            routes = zip(
                fl.src[nonself].tolist(),
                fl.dst[nonself].tolist(),
                fl.hops[nonself].tolist(),
                fl.detour[nonself].tolist(),
            )
            for s, d, h, det in routes:
                cached = (h, bool(det), True)
                for fn in self._chk_route:
                    fn(self, coord_of[s], coord_of[d], cached)
        return slowest


# ---------------------------------------------------------------------------
# Batched trials: N systems through one kernel per superstep.
# ---------------------------------------------------------------------------


class BatchEmulator:
    """N independent emulations advanced through one vector kernel.

    All systems must share the array shape; fault maps (and therefore
    route tables) may differ per trial.  Per-trial stats are
    bit-identical to N individual ``engine="vector"`` runs: composite
    flow keys carry the trial index in their high bits, so flows never
    mix across trials, per-flow integer sums are unchanged, and the
    within-trial delivery order is preserved.  Batched runs do not wire
    telemetry or checkers (mirroring ``noc.vectorsim.simulate_batch``).
    """

    def __init__(self, systems: Sequence[WaferscaleSystem]) -> None:
        if not systems:
            raise EmulatorError("emulate_batch needs at least one system")
        shape = (systems[0].config.rows, systems[0].config.cols)
        for system in systems:
            if (system.config.rows, system.config.cols) != shape:
                raise EmulatorError(
                    "all systems in a batch must share the array shape; "
                    f"got {(system.config.rows, system.config.cols)} vs {shape}"
                )
        self.emulators = [
            VectorEmulator(system, telemetry=Telemetry.disabled())
            for system in systems
        ]
        self._n = shape[0] * shape[1]

    def run(
        self,
        computes: Sequence[Callable[[Coord, list[Message], Emulator], int]],
        max_supersteps: int = 10_000,
    ) -> list[EmulationStats]:
        """Run every trial to quiescence; per-trial stats, in order."""
        emulators = self.emulators
        if len(computes) != len(emulators):
            raise EmulatorError(
                f"got {len(computes)} compute callables for "
                f"{len(emulators)} systems"
            )
        active = [True] * len(emulators)
        for _ in range(max_supersteps):
            if not any(active):
                return [em.stats for em in emulators]
            self._superstep(computes, active)
        for b, still in enumerate(active):
            if still:
                raise EmulatorError(
                    f"workload did not converge in {max_supersteps} steps "
                    f"(batch trial {b})"
                )
        return [em.stats for em in emulators]

    def _superstep(
        self,
        computes: Sequence[Callable[[Coord, list[Message], Emulator], int]],
        active: list[bool],
    ) -> None:
        emulators = self.emulators
        # Compute phase, per trial (reference superstep semantics).
        busiest = [0] * len(emulators)
        any_messages = [False] * len(emulators)
        for b, em in enumerate(emulators):
            if not active[b]:
                continue
            inboxes = em._inboxes
            em._inboxes = {coord: [] for coord in inboxes}
            compute = computes[b]
            for coord, inbox in inboxes.items():
                cycles = compute(coord, inbox, em)
                if cycles < 0:
                    raise EmulatorError("compute cycles cannot be negative")
                busiest[b] = max(busiest[b], cycles)
                any_messages[b] = any_messages[b] or bool(inbox)

        # Delivery barrier: every active trial's outbox through one kernel.
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        words_parts: list[np.ndarray] = []
        trial_parts: list[np.ndarray] = []
        msgs_per_trial: dict[int, list[Message]] = {}
        for b, em in enumerate(emulators):
            if not active[b] or not em._outbox:
                continue
            src, dst, words, msgs = em._collect_outbox()
            src_parts.append(src)
            dst_parts.append(dst)
            words_parts.append(words)
            trial_parts.append(np.full(src.size, b, dtype=np.int64))
            msgs_per_trial[b] = msgs

        nb = len(emulators)
        sent = np.zeros(nb, dtype=np.int64)
        hop_total = np.zeros(nb, dtype=np.int64)
        det_msgs = np.zeros(nb, dtype=np.int64)
        slowest = np.zeros(nb, dtype=np.int64)
        if src_parts:
            fl = _flow_kernel(
                np.concatenate(src_parts),
                np.concatenate(dst_parts),
                np.concatenate(words_parts),
                np.concatenate(trial_parts),
                [em._table for em in emulators],
                trial_note=lambda b: f" (batch trial {b})",
            )
            nonself = ~fl.selfflow
            t_ns = fl.trial[nonself]
            c_ns = fl.counts[nonself]
            np.add.at(sent, t_ns, c_ns)
            np.add.at(hop_total, t_ns, fl.hops[nonself] * c_ns)
            np.add.at(det_msgs, fl.trial[fl.detour], fl.counts[fl.detour])
            np.maximum.at(slowest, t_ns, fl.cycles[nonself])
            # Delivery, flow-major: fl arrays are in global
            # first-occurrence order, which restricted to any one trial
            # is that trial's own first-occurrence order.
            flat_msgs: list[Message] = []
            offsets = np.zeros(nb, dtype=np.int64)
            for b in sorted(msgs_per_trial):
                offsets[b] = len(flat_msgs)
                flat_msgs.extend(msgs_per_trial[b])
            # perm indexes the concatenation order, which matches
            # flat_msgs because trials were concatenated in ascending b.
            pos = 0
            perm_list = fl.perm.tolist()
            for j, count in enumerate(fl.counts.tolist()):
                em = emulators[fl.trial[j]]
                inbox = em._inboxes[em._coord_of[fl.dst[j]]]
                for i in perm_list[pos:pos + count]:
                    inbox.append(flat_msgs[i])
                pos += count

        # Finalize per-trial stats and convergence, reference semantics.
        for b, em in enumerate(emulators):
            if not active[b]:
                continue
            stats = em.stats
            stats.messages_sent += int(sent[b])
            stats.message_hops += int(hop_total[b])
            stats.detoured_messages += int(det_msgs[b])
            network_cycles = int(slowest[b])
            stats.supersteps += 1
            stats.local_compute_cycles += busiest[b]
            stats.network_cycles += network_cycles
            stats.per_step_messages.append(int(sent[b]))
            progressed = (
                bool(network_cycles) or busiest[b] > 0 or any_messages[b]
            )
            if not progressed and not em._outbox and not any(
                em._inboxes.values()
            ):
                active[b] = False


def emulate_batch(
    systems: Sequence[WaferscaleSystem],
    computes: Sequence[Callable[[Coord, list[Message], Emulator], int]],
    *,
    init: Sequence[Callable[[Emulator], None] | None] | None = None,
    max_supersteps: int = 10_000,
) -> list[EmulationStats]:
    """Run N workloads over N systems through one vector kernel.

    ``systems[b]`` and ``computes[b]`` define trial ``b``; ``init[b]``
    (optional) performs the trial's seed sends before the first
    superstep — e.g. queueing the BFS root visit.  Returns per-trial
    :class:`EmulationStats`, bit-identical to running each trial through
    its own ``Emulator(engine="vector")``.
    """
    if len(computes) != len(systems):
        raise EmulatorError(
            f"got {len(computes)} compute callables for {len(systems)} systems"
        )
    batch = BatchEmulator(systems)
    if init is not None:
        if len(init) != len(systems):
            raise EmulatorError(
                f"got {len(init)} init callables for {len(systems)} systems"
            )
        for fn, em in zip(init, batch.emulators):
            if fn is not None:
                fn(em)
    return batch.run(list(computes), max_supersteps=max_supersteps)
