"""Functional core model (paper Section II-b).

Each compute chiplet carries 14 independently programmable cores with
64KB of private SRAM.  The model executes the minimal ISA of
:mod:`repro.arch.isa` one instruction per cycle; loads and stores issue
through a memory port supplied by the tile, which decodes local vs remote
and returns an access latency the core stalls for.
"""

from __future__ import annotations

import enum
from typing import Callable, Protocol

from ..errors import EmulatorError
from .isa import BRANCH_OPS, Instruction, Opcode, Program, WORD_MASK


class MemoryPort(Protocol):
    """What a core needs from its tile: 32-bit accesses with latency."""

    def read(self, core_index: int, address: int) -> tuple[int, int]:
        """Return ``(value, latency_cycles)``."""
        ...

    def write(self, core_index: int, address: int, value: int) -> int:
        """Perform the store; return latency in cycles."""
        ...


class CoreState(enum.Enum):
    """Execution state of a core."""

    RUNNING = "running"
    STALLED = "stalled"
    HALTED = "halted"


def _signed(value: int) -> int:
    """Interpret a 32-bit word as signed."""
    return value - (1 << 32) if value & (1 << 31) else value


class Core:
    """One in-order, single-issue functional core."""

    def __init__(self, core_index: int, port: MemoryPort):
        self.core_index = core_index
        self.port = port
        self.registers = [0] * 16
        self.pc = 0
        self.state = CoreState.HALTED
        self.program: Program | None = None
        self.cycles = 0
        self.instructions_retired = 0
        self.stall_cycles = 0
        self._stall_remaining = 0

    def load_program(self, program: Program) -> None:
        """Reset the core and install a program."""
        if not program.instructions:
            raise EmulatorError("cannot load an empty program")
        self.program = program
        self.registers = [0] * 16
        self.pc = 0
        self.cycles = 0
        self.instructions_retired = 0
        self.stall_cycles = 0
        self._stall_remaining = 0
        self.state = CoreState.RUNNING

    @property
    def halted(self) -> bool:
        """True when the core has executed HALT (or was never started)."""
        return self.state is CoreState.HALTED

    def step(self) -> None:
        """Advance one cycle."""
        if self.state is CoreState.HALTED:
            return
        self.cycles += 1
        if self._stall_remaining > 0:
            self._stall_remaining -= 1
            self.stall_cycles += 1
            if self._stall_remaining == 0:
                self.state = CoreState.RUNNING
            return

        assert self.program is not None
        if self.pc >= len(self.program.instructions):
            raise EmulatorError(
                f"core {self.core_index}: pc {self.pc} ran off the program"
            )
        instr = self.program.instructions[self.pc]
        self._execute(instr)

    def run(self, max_cycles: int = 1_000_000) -> int:
        """Run until HALT; returns cycles consumed."""
        start = self.cycles
        while not self.halted:
            if self.cycles - start >= max_cycles:
                raise EmulatorError(
                    f"core {self.core_index} exceeded {max_cycles} cycles"
                )
            self.step()
        return self.cycles - start

    # -- execution -------------------------------------------------------

    def _execute(self, instr: Instruction) -> None:
        regs = self.registers
        op = instr.opcode
        next_pc = self.pc + 1

        if op is Opcode.LDI:
            regs[instr.rd] = instr.imm & WORD_MASK
        elif op is Opcode.MOV:
            regs[instr.rd] = regs[instr.ra]
        elif op is Opcode.ADD:
            regs[instr.rd] = (regs[instr.ra] + regs[instr.rb]) & WORD_MASK
        elif op is Opcode.SUB:
            regs[instr.rd] = (regs[instr.ra] - regs[instr.rb]) & WORD_MASK
        elif op is Opcode.MUL:
            regs[instr.rd] = (regs[instr.ra] * regs[instr.rb]) & WORD_MASK
        elif op is Opcode.AND:
            regs[instr.rd] = regs[instr.ra] & regs[instr.rb]
        elif op is Opcode.OR:
            regs[instr.rd] = regs[instr.ra] | regs[instr.rb]
        elif op is Opcode.SHL:
            regs[instr.rd] = (regs[instr.ra] << (instr.imm & 31)) & WORD_MASK
        elif op is Opcode.SHR:
            regs[instr.rd] = (regs[instr.ra] & WORD_MASK) >> (instr.imm & 31)
        elif op is Opcode.LD:
            value, latency = self.port.read(self.core_index, regs[instr.ra])
            regs[instr.rd] = value & WORD_MASK
            self._begin_stall(latency)
        elif op is Opcode.ST:
            latency = self.port.write(
                self.core_index, regs[instr.ra], regs[instr.rb] & WORD_MASK
            )
            self._begin_stall(latency)
        elif op in BRANCH_OPS:
            a, b = _signed(regs[instr.ra]), _signed(regs[instr.rb])
            taken = (
                (op is Opcode.BEQ and a == b)
                or (op is Opcode.BNE and a != b)
                or (op is Opcode.BLT and a < b)
            )
            if taken:
                next_pc = instr.target
        elif op is Opcode.JMP:
            next_pc = instr.target
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.state = CoreState.HALTED
        else:   # pragma: no cover
            raise EmulatorError(f"unhandled opcode {op}")

        self.instructions_retired += 1
        self.pc = next_pc

    def _begin_stall(self, latency: int) -> None:
        """Stall for the extra cycles of a memory access beyond the first."""
        if latency < 1:
            raise EmulatorError("memory latency must be >= 1 cycle")
        if latency > 1:
            self._stall_remaining = latency - 1
            self.state = CoreState.STALLED
