"""Energy accounting for emulated workloads.

Connects the electrical models to the architectural ones: given a
workload's :class:`~repro.arch.emulator.EmulationStats` (or raw event
counts), compute where the joules went — core operations, SRAM accesses,
NoC hops (using the Section V I/O energy), and the LDO/plane overheads
from Section III.  The same accounting reproduces the paper's claim that
on-wafer communication is orders of magnitude cheaper than off-package
links (Section I's motivation).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import params
from ..config import SystemConfig
from ..errors import EmulatorError
from ..io.cell import IoCellModel

# Per-event energy at the 1.1V/300MHz operating point, 40nm-class.
CORE_OP_ENERGY_J = 12e-12           # one ALU op incl. fetch/decode
SRAM_ACCESS_ENERGY_J = 6e-12        # one 32-bit bank access
ROUTER_HOP_ENERGY_J = 4e-12         # buffering + arbitration per packet hop

# Conventional off-package SerDes link energy, for the Section I contrast.
OFF_PACKAGE_PJ_PER_BIT = 5.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules by component for one workload run."""

    core_j: float
    sram_j: float
    network_link_j: float
    network_router_j: float

    @property
    def total_j(self) -> float:
        """Total dynamic energy."""
        return self.core_j + self.sram_j + self.network_link_j + self.network_router_j

    @property
    def communication_fraction(self) -> float:
        """Share of energy spent moving data between tiles."""
        if self.total_j == 0:
            return 0.0
        return (self.network_link_j + self.network_router_j) / self.total_j

    def rows(self) -> list[tuple[str, str]]:
        """Printable rows."""
        return [
            ("core ops", f"{self.core_j * 1e6:.2f} uJ"),
            ("SRAM", f"{self.sram_j * 1e6:.2f} uJ"),
            ("NoC links", f"{self.network_link_j * 1e6:.2f} uJ"),
            ("NoC routers", f"{self.network_router_j * 1e6:.2f} uJ"),
            ("total", f"{self.total_j * 1e6:.2f} uJ"),
            ("communication share", f"{self.communication_fraction:.1%}"),
        ]


class EnergyModel:
    """Event-count to joules conversion."""

    def __init__(self, config: SystemConfig | None = None, cell: IoCellModel | None = None):
        self.config = config or SystemConfig()
        self.cell = cell or IoCellModel()

    def link_energy_per_packet_j(self) -> float:
        """Energy to move one 100-bit packet across one inter-tile link."""
        per_bit = self.cell.energy_per_bit_j(params.LINK_LENGTH_UM)
        return per_bit * self.config.packet_width_bits

    def workload_energy(
        self,
        core_ops: int,
        sram_accesses: int,
        packet_hops: int,
    ) -> EnergyBreakdown:
        """Energy breakdown from raw event counts."""
        if min(core_ops, sram_accesses, packet_hops) < 0:
            raise EmulatorError("event counts must be non-negative")
        return EnergyBreakdown(
            core_j=core_ops * CORE_OP_ENERGY_J,
            sram_j=sram_accesses * SRAM_ACCESS_ENERGY_J,
            network_link_j=packet_hops * self.link_energy_per_packet_j(),
            network_router_j=packet_hops * ROUTER_HOP_ENERGY_J,
        )

    def emulation_energy(self, stats, ops_per_compute_cycle: float = 1.0) -> EnergyBreakdown:
        """Breakdown from an :class:`EmulationStats`.

        Core ops are approximated from compute cycles; each message is a
        packet traversing its hop count; every message touches SRAM at
        both ends.
        """
        core_ops = int(stats.local_compute_cycles * ops_per_compute_cycle)
        return self.workload_energy(
            core_ops=core_ops,
            sram_accesses=2 * stats.messages_sent,
            packet_hops=stats.message_hops,
        )

    def waferscale_vs_off_package(self, bits_moved: int, mean_hops: float) -> dict[str, float]:
        """Section I's argument, quantified.

        Energy to move ``bits_moved`` bits across the wafer (mean hop
        count given) versus the same bits over conventional off-package
        links.
        """
        if bits_moved < 0 or mean_hops < 0:
            raise EmulatorError("counts must be non-negative")
        per_bit_on_wafer = (
            self.cell.energy_per_bit_j(params.LINK_LENGTH_UM) * mean_hops
        )
        on_wafer = bits_moved * per_bit_on_wafer
        off_package = bits_moved * OFF_PACKAGE_PJ_PER_BIT * 1e-12
        return {
            "on_wafer_j": on_wafer,
            "off_package_j": off_package,
            "advantage_x": off_package / on_wafer if on_wafer else float("inf"),
        }
