"""Canonical core programs: the "test routines" of Section VII.

The paper loads test routines and programs into the cores through JTAG;
this module provides the standard little programs such a bring-up uses,
written for the minimal ISA and returned assembled:

* ``memory_walk`` — write a pattern across a memory range and read it
  back, accumulating a mismatch count (the core-driven memory test);
* ``checksum`` — sum a word range into a result location (data-integrity
  check after program/data loading);
* ``vector_add`` — C[i] = A[i] + B[i] over shared memory (the smallest
  "real" kernel, exercising remote loads/stores when ranges live on
  other tiles);
* ``spin_counter`` — a calibrated busy loop (used to measure effective
  frequency during characterization).

Each builder returns a :class:`~repro.arch.isa.Program` plus the result
address to inspect, so tests and bring-up flows can verify outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EmulatorError
from .isa import Program, assemble


@dataclass(frozen=True)
class BuiltProgram:
    """An assembled program and where it reports its result."""

    program: Program
    result_address: int
    description: str


def memory_walk(base_address: int, words: int, pattern: int = 0xA5A5A5A5) -> BuiltProgram:
    """Write/readback test over ``words`` words starting at ``base_address``.

    Result word (at ``base_address``... actually at ``base + words*4``)
    holds the mismatch count — zero means the range is healthy.
    """
    if words < 1:
        raise EmulatorError("memory_walk needs at least one word")
    result = base_address + words * 4
    source = f"""
        ldi r1, {base_address}  ; cursor
        ldi r2, {words}         ; remaining
        ldi r3, {pattern & 0xFFFFFFFF}
        ldi r4, 0               ; mismatch count
        ldi r5, 4               ; word stride
        ldi r6, 1
        ldi r7, 0
    write_loop:
        st r1, r3
        add r1, r1, r5
        sub r2, r2, r6
        bne r2, r7, write_loop
        ldi r1, {base_address}
        ldi r2, {words}
    read_loop:
        ld r8, r1
        beq r8, r3, advance
        add r4, r4, r6          ; mismatch++
    advance:
        add r1, r1, r5
        sub r2, r2, r6
        bne r2, r7, read_loop
        ldi r9, {result}
        st r9, r4
        halt
    """
    return BuiltProgram(
        program=assemble(source),
        result_address=result,
        description=f"memory walk over {words} words at {base_address:#x}",
    )


def checksum(base_address: int, words: int, result_address: int) -> BuiltProgram:
    """Sum ``words`` words from ``base_address`` into ``result_address``."""
    if words < 1:
        raise EmulatorError("checksum needs at least one word")
    source = f"""
        ldi r1, {base_address}
        ldi r2, {words}
        ldi r3, 0               ; accumulator
        ldi r5, 4
        ldi r6, 1
        ldi r7, 0
    loop:
        ld r4, r1
        add r3, r3, r4
        add r1, r1, r5
        sub r2, r2, r6
        bne r2, r7, loop
        ldi r8, {result_address}
        st r8, r3
        halt
    """
    return BuiltProgram(
        program=assemble(source),
        result_address=result_address,
        description=f"checksum of {words} words at {base_address:#x}",
    )


def vector_add(
    a_address: int, b_address: int, c_address: int, words: int
) -> BuiltProgram:
    """C[i] = A[i] + B[i] over three (possibly remote) word ranges."""
    if words < 1:
        raise EmulatorError("vector_add needs at least one word")
    source = f"""
        ldi r1, {a_address}
        ldi r2, {b_address}
        ldi r3, {c_address}
        ldi r4, {words}
        ldi r5, 4
        ldi r6, 1
        ldi r7, 0
    loop:
        ld r8, r1
        ld r9, r2
        add r10, r8, r9
        st r3, r10
        add r1, r1, r5
        add r2, r2, r5
        add r3, r3, r5
        sub r4, r4, r6
        bne r4, r7, loop
        halt
    """
    return BuiltProgram(
        program=assemble(source),
        result_address=c_address,
        description=f"vector add of {words} words",
    )


def spin_counter(iterations: int, result_address: int) -> BuiltProgram:
    """Busy-loop ``iterations`` times, then store the loop count.

    Each iteration is a fixed 3 instructions (add, compare-skip via bne,
    implicit), so wall-clock at a known frequency calibrates the core
    clock during characterization.
    """
    if iterations < 1:
        raise EmulatorError("spin_counter needs at least one iteration")
    source = f"""
        ldi r1, 0
        ldi r2, {iterations}
        ldi r3, 1
    loop:
        add r1, r1, r3
        bne r1, r2, loop
        ldi r4, {result_address}
        st r4, r1
        halt
    """
    return BuiltProgram(
        program=assemble(source),
        result_address=result_address,
        description=f"spin loop of {iterations} iterations",
    )
