"""SRAM memory banks (paper Section II-c).

The memory chiplet carries five 128KB single-ported SRAM banks; all five
can be accessed in parallel (one access per bank per cycle), which is
where the 6.144 TB/s aggregate shared-memory bandwidth of Table I comes
from (1024 tiles x 5 banks x 32 bit x 300MHz).
"""

from __future__ import annotations

from ..errors import EmulatorError

WORD_BYTES = 4


class MemoryBank:
    """One single-ported SRAM bank, word-addressed internally."""

    def __init__(self, size_bytes: int, name: str = "bank"):
        if size_bytes <= 0 or size_bytes % WORD_BYTES:
            raise EmulatorError("bank size must be a positive multiple of 4")
        self.name = name
        self.size_bytes = size_bytes
        self._words: dict[int, int] = {}    # sparse backing store
        self.reads = 0
        self.writes = 0

    def _check(self, offset: int) -> int:
        if offset % WORD_BYTES:
            raise EmulatorError(
                f"{self.name}: unaligned access at offset {offset}"
            )
        if not 0 <= offset < self.size_bytes:
            raise EmulatorError(
                f"{self.name}: offset {offset} outside {self.size_bytes}B bank"
            )
        return offset // WORD_BYTES

    def read_word(self, offset: int) -> int:
        """Read the 32-bit word at a byte offset (zero if never written)."""
        index = self._check(offset)
        self.reads += 1
        return self._words.get(index, 0)

    def write_word(self, offset: int, value: int) -> None:
        """Write a 32-bit word at a byte offset."""
        index = self._check(offset)
        if not 0 <= value < (1 << 32):
            raise EmulatorError(f"{self.name}: value exceeds 32 bits")
        self.writes += 1
        self._words[index] = value

    @property
    def access_count(self) -> int:
        """Total accesses served."""
        return self.reads + self.writes

    def clear(self) -> None:
        """Reset contents and counters."""
        self._words.clear()
        self.reads = 0
        self.writes = 0


def bank_bandwidth_bytes_per_s(freq_hz: float, banks: int = 5) -> float:
    """Aggregate bandwidth of one tile's banks (32-bit word per cycle each)."""
    if freq_hz <= 0 or banks < 1:
        raise EmulatorError("frequency and bank count must be positive")
    return banks * WORD_BYTES * freq_hz
