"""System architecture and functional emulator (paper Section II).

The paper validated its architecture by emulating a reduced-size
multi-tile system on FPGA and running graph workloads (BFS, SSSP).  This
package is the software analogue: a functional model of cores, the
intra-tile crossbar, memory banks, the unified global address space and a
multi-tile emulator with network-latency accounting.
"""

from .core import Core, CoreState
from .crossbar import Crossbar
from .emulator import EmulationStats, Emulator
from .energy import EnergyBreakdown, EnergyModel
from .isa import Instruction, Opcode, Program, assemble
from .membank import MemoryBank
from .memorymap import AddressRegion, DecodedAddress, MemoryMap
from .system import WaferscaleSystem
from .tile import Tile

__all__ = [
    "Core",
    "CoreState",
    "Crossbar",
    "EmulationStats",
    "EnergyBreakdown",
    "EnergyModel",
    "Emulator",
    "Instruction",
    "Opcode",
    "Program",
    "assemble",
    "MemoryBank",
    "AddressRegion",
    "DecodedAddress",
    "MemoryMap",
    "WaferscaleSystem",
    "Tile",
]
