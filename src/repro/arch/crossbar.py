"""Intra-tile crossbar (paper Section II-b).

Inside the compute chiplet, an ARM-BusMatrix-style crossbar connects the
14 cores, the memory controllers (to the memory chiplet's banks) and the
network adapters.  The model is a per-cycle arbitration fabric: each
target (bank or network port) grants one requester per cycle, round-robin
over masters; everything else stalls.  The emulator uses it to account
contention cycles; functional data movement happens in the tile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EmulatorError


@dataclass
class CrossbarStats:
    """Contention accounting of one crossbar."""

    grants: int = 0
    stalls: int = 0
    per_target_grants: dict[str, int] = field(default_factory=dict)

    @property
    def contention_ratio(self) -> float:
        """Stalled requests as a fraction of all requests."""
        total = self.grants + self.stalls
        return self.stalls / total if total else 0.0


class Crossbar:
    """Round-robin N-masters x M-targets arbitration fabric."""

    def __init__(self, masters: int, targets: list[str]):
        if masters < 1:
            raise EmulatorError("crossbar needs at least one master")
        if not targets:
            raise EmulatorError("crossbar needs at least one target")
        if len(set(targets)) != len(targets):
            raise EmulatorError("duplicate target names")
        self.masters = masters
        self.targets = list(targets)
        self._rr: dict[str, int] = {t: 0 for t in targets}
        self.stats = CrossbarStats()

    def arbitrate(self, requests: dict[int, str]) -> dict[int, bool]:
        """One cycle of arbitration.

        ``requests`` maps master index -> target name; the result maps
        master index -> granted?  One grant per target per cycle,
        round-robin starting after each target's previous winner.
        """
        for master, target in requests.items():
            if not 0 <= master < self.masters:
                raise EmulatorError(f"unknown master {master}")
            if target not in self._rr:
                raise EmulatorError(f"unknown target {target!r}")

        granted: dict[int, bool] = {m: False for m in requests}
        by_target: dict[str, list[int]] = {}
        for master, target in requests.items():
            by_target.setdefault(target, []).append(master)

        for target, masters in by_target.items():
            start = self._rr[target]
            winner = min(masters, key=lambda m: (m - start) % self.masters)
            granted[winner] = True
            self._rr[target] = (winner + 1) % self.masters
            self.stats.grants += 1
            self.stats.per_target_grants[target] = (
                self.stats.per_target_grants.get(target, 0) + 1
            )
            self.stats.stalls += len(masters) - 1
        return granted

    def service_cycles(self, requests: dict[int, str]) -> dict[int, int]:
        """Cycles until each requester is served, re-arbitrating stalls.

        A convenience for analytic models: repeatedly arbitrates the
        remaining requesters until all are granted, returning each
        master's completion cycle (1-based).
        """
        remaining = dict(requests)
        done: dict[int, int] = {}
        cycle = 0
        while remaining:
            cycle += 1
            grants = self.arbitrate(remaining)
            for master, ok in grants.items():
                if ok:
                    done[master] = cycle
            remaining = {
                m: t for m, t in remaining.items() if not grants.get(m, False)
            }
            if cycle > self.masters * len(self.targets) + 1:
                raise EmulatorError("arbitration failed to make progress")
        return done
