"""Decoupling-capacitor sizing and transient-droop model (Section III).

Centre tiles can be ~70mm from the nearest off-wafer capacitor, so each
tile carries its own on-chip decap — about 20nF, consuming ~35% of tile
area.  The sizing argument is charge balance: during a worst-case load step
(200mA within a few cycles) the decap must supply the step current until
the LDO loop responds, without the output leaving the 1.0-1.2V band.

    dV = I_step * t_response / C

Solving for ``C`` with dV = 100mV (half the guaranteed band), a 200mA step
and an LDO response of a few clock cycles at 300MHz (~10ns) gives the
~20nF/tile the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import params
from ..errors import PdnError

# MOS decap density in a 40nm-class process, used to convert the paper's
# 35%-of-tile-area budget into farads; calibrated so the paper's tile
# (11.0 mm^2 of silicon) lands at the reported ~20nF.
DEFAULT_DECAP_DENSITY_F_PER_MM2 = 5.2e-9


def transient_droop_v(
    capacitance_f: float, step_current_a: float, response_time_s: float
) -> float:
    """Output droop while the decap alone carries a load step."""
    if capacitance_f <= 0:
        raise PdnError("capacitance must be positive")
    if step_current_a < 0 or response_time_s < 0:
        raise PdnError("step current and response time must be non-negative")
    return step_current_a * response_time_s / capacitance_f


def required_decap_f(
    step_current_a: float, response_time_s: float, droop_budget_v: float
) -> float:
    """Capacitance needed to hold a load step within a droop budget."""
    if droop_budget_v <= 0:
        raise PdnError("droop budget must be positive")
    if step_current_a < 0 or response_time_s < 0:
        raise PdnError("step current and response time must be non-negative")
    return step_current_a * response_time_s / droop_budget_v


@dataclass(frozen=True)
class DecapModel:
    """Per-tile decoupling capacitance budget."""

    tile_area_mm2: float
    area_fraction: float = params.DECAP_AREA_FRACTION
    density_f_per_mm2: float = DEFAULT_DECAP_DENSITY_F_PER_MM2

    def __post_init__(self) -> None:
        if self.tile_area_mm2 <= 0:
            raise PdnError("tile area must be positive")
        if not 0 < self.area_fraction < 1:
            raise PdnError("area fraction must be in (0, 1)")
        if self.density_f_per_mm2 <= 0:
            raise PdnError("decap density must be positive")

    @property
    def decap_area_mm2(self) -> float:
        """Tile area devoted to decap."""
        return self.tile_area_mm2 * self.area_fraction

    @property
    def capacitance_f(self) -> float:
        """Total on-tile decoupling capacitance."""
        return self.decap_area_mm2 * self.density_f_per_mm2

    def droop_for_step(
        self,
        step_current_a: float = params.LDO_MAX_LOAD_STEP_A,
        response_time_s: float = 10e-9,
    ) -> float:
        """Transient droop for the worst-case load step."""
        return transient_droop_v(self.capacitance_f, step_current_a, response_time_s)

    def meets_band(
        self,
        droop_budget_v: float = 0.1,
        step_current_a: float = params.LDO_MAX_LOAD_STEP_A,
        response_time_s: float = 10e-9,
    ) -> bool:
        """True when the transient droop stays within the regulation band.

        The default 100mV budget is half the 1.0-1.2V guaranteed band,
        centred on 1.1V nominal.
        """
        return self.droop_for_step(step_current_a, response_time_s) <= droop_budget_v


def paper_decap_model() -> DecapModel:
    """Decap model for the paper's tile (both chiplets' decap area)."""
    from ..geometry.chiplet import tile_area_mm2

    return DecapModel(tile_area_mm2=tile_area_mm2())
