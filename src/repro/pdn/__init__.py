"""Waferscale power delivery and regulation (paper Section III)."""

from .decap import DecapModel, required_decap_f, transient_droop_v
from .dtc import DtcUpgrade, dtc_upgrade_summary
from .delivery import DeliveryOption, DeliveryScheme, compare_delivery_schemes
from .ldo import LdoModel
from .plane import PowerPlane, PlaneStack, extract_plane_stack
from .solver import PdnSolution, PdnSolver, solve_pdn
from .twv import TwvTechnology, max_tile_power_w, solve_twv_delivery

__all__ = [
    "DecapModel",
    "DtcUpgrade",
    "dtc_upgrade_summary",
    "TwvTechnology",
    "max_tile_power_w",
    "solve_twv_delivery",
    "required_decap_f",
    "transient_droop_v",
    "DeliveryOption",
    "DeliveryScheme",
    "compare_delivery_schemes",
    "LdoModel",
    "PowerPlane",
    "PlaneStack",
    "extract_plane_stack",
    "PdnSolution",
    "PdnSolver",
    "solve_pdn",
]
