"""Deep-trench decoupling capacitors in the Si-IF (footnote 2, ref [14]).

The paper's footnote: "incorporation of deep trench decoupling capacitors
(currently under development) into the waferscale substrate has the
potential to significantly improve PDN performance and will also reduce
the area overhead of on-chip decoupling capacitors."

Deep-trench capacitors (DTCs) etched into the Si-IF reach densities two
orders of magnitude above planar MOS decap, and they sit *in the
substrate*, costing zero chiplet area.  This model quantifies the
footnote: how much decap a tile footprint of DTC provides, what transient
droop results, and how much chiplet area is handed back to logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import params
from ..config import SystemConfig
from ..errors import PdnError
from .decap import DEFAULT_DECAP_DENSITY_F_PER_MM2, transient_droop_v

# Deep-trench capacitor density demonstrated in Si-IF research (ref [14]
# reports several hundred nF/mm^2-class structures).
DTC_DENSITY_F_PER_MM2 = 300e-9


@dataclass(frozen=True)
class DtcUpgrade:
    """Effect of moving tile decap from on-chip MOS to substrate DTC."""

    config: SystemConfig
    dtc_area_fraction: float        # fraction of tile footprint given to DTC
    dtc_density_f_per_mm2: float = DTC_DENSITY_F_PER_MM2

    def __post_init__(self) -> None:
        if not 0 < self.dtc_area_fraction <= 1:
            raise PdnError("DTC area fraction must be in (0, 1]")
        if self.dtc_density_f_per_mm2 <= 0:
            raise PdnError("DTC density must be positive")

    @property
    def tile_footprint_mm2(self) -> float:
        """Substrate area under one tile available for trenching."""
        return self.config.tile_pitch_x_mm * self.config.tile_pitch_y_mm

    @property
    def capacitance_f(self) -> float:
        """DTC capacitance per tile."""
        return (
            self.tile_footprint_mm2
            * self.dtc_area_fraction
            * self.dtc_density_f_per_mm2
        )

    def droop_for_step(
        self,
        step_current_a: float = params.LDO_MAX_LOAD_STEP_A,
        response_time_s: float = 10e-9,
    ) -> float:
        """Transient droop with the DTC bank carrying the load step."""
        return transient_droop_v(self.capacitance_f, step_current_a, response_time_s)

    @property
    def reclaimed_chiplet_area_mm2(self) -> float:
        """On-chip decap area handed back to logic per tile.

        The prototype spends ~35% of tile silicon on MOS decap; with
        substrate DTC the chiplets keep a small high-frequency reservoir
        (say 5%) and reclaim the rest.
        """
        from ..geometry.chiplet import tile_area_mm2

        silicon = tile_area_mm2(self.config)
        return silicon * (params.DECAP_AREA_FRACTION - 0.05)

    def improvement_over_mos(self) -> float:
        """Capacitance ratio versus the prototype's on-chip MOS decap."""
        from ..geometry.chiplet import tile_area_mm2

        mos = (
            tile_area_mm2(self.config)
            * params.DECAP_AREA_FRACTION
            * DEFAULT_DECAP_DENSITY_F_PER_MM2
        )
        return self.capacitance_f / mos


def dtc_upgrade_summary(
    config: SystemConfig | None = None, area_fraction: float = 0.20
) -> dict[str, float]:
    """One-call summary of the footnote-2 upgrade."""
    cfg = config or SystemConfig()
    upgrade = DtcUpgrade(cfg, dtc_area_fraction=area_fraction)
    return {
        "dtc_capacitance_nf": upgrade.capacitance_f * 1e9,
        "droop_mv": upgrade.droop_for_step() * 1e3,
        "capacitance_gain_x": upgrade.improvement_over_mos(),
        "reclaimed_chiplet_area_mm2": upgrade.reclaimed_chiplet_area_mm2,
    }
