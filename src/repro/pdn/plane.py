"""Power-plane electrical extraction (paper Section III).

The Si-IF substrate dedicates its bottom two metal layers to power: one VDD
plane and one ground-return plane, both built as **dense slotted planes** at
the technology's maximum thickness of 2um.  Current drawn by a tile flows
out through the VDD plane and back through the ground plane, so the
effective sheet resistance seen by the IR-droop calculation is the *sum* of
the two planes' sheet resistances, each degraded by a slotting factor that
accounts for the slots/cheesing the planes need for via landing and stress
relief.

The extraction reduces each plane to a 2-D resistor mesh with one node per
tile: adjacent nodes are joined by a lumped resistance derived from the
sheet resistance and the tile pitch.  This is the standard first-order PDN
abstraction and is what the paper's droop estimate (2.5V edge -> ~1.4V
centre) is based on.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import params
from ..config import SystemConfig
from ..errors import PdnError


@dataclass(frozen=True)
class PowerPlane:
    """One metal plane of the power distribution stack."""

    name: str
    thickness_um: float
    slot_factor: float = 1.0    # >= 1; area lost to slots raises Rs
    resistivity_ohm_m: float = params.CU_RESISTIVITY_OHM_M

    def __post_init__(self) -> None:
        if self.thickness_um <= 0:
            raise PdnError(f"plane {self.name}: thickness must be positive")
        if self.slot_factor < 1.0:
            raise PdnError(f"plane {self.name}: slot_factor must be >= 1")

    @property
    def sheet_resistance_ohm_sq(self) -> float:
        """Sheet resistance including slotting degradation."""
        thickness_m = self.thickness_um * 1e-6
        return self.resistivity_ohm_m / thickness_m * self.slot_factor


@dataclass(frozen=True)
class PlaneStack:
    """The power-delivery stack: VDD plane + return plane.

    ``effective_sheet_resistance`` is what the mesh extraction uses: the
    round-trip (supply + return) sheet resistance.
    """

    vdd: PowerPlane
    ret: PowerPlane

    @property
    def effective_sheet_resistance(self) -> float:
        """Round-trip sheet resistance (ohm/sq)."""
        return self.vdd.sheet_resistance_ohm_sq + self.ret.sheet_resistance_ohm_sq

    def mesh_resistances(self, config: SystemConfig) -> tuple[float, float]:
        """Lumped mesh resistances ``(r_horizontal, r_vertical)``.

        For current flowing horizontally between two adjacent tile nodes the
        plane segment is ``tile_pitch_x`` long and ``tile_pitch_y`` wide, so
        its resistance is ``Rs * pitch_x / pitch_y`` (and symmetrically for
        vertical flow).
        """
        rs = self.effective_sheet_resistance
        px, py = config.tile_pitch_x_mm, config.tile_pitch_y_mm
        if px <= 0 or py <= 0:
            raise PdnError("tile pitch must be positive")
        return (rs * px / py, rs * py / px)


# Effective plane degradation factor, calibrated so the full-wafer solve
# lands on the paper's estimate of ~1.4V at the array centre with 2.5V at
# the edge under peak draw (Fig. 2).  It lumps everything that raises the
# planes' effective resistance above an ideal solid 2um copper sheet:
# slotting/cheesing for via landing and stress relief, the via stacks from
# the planes up to the chiplet power pillars, and current crowding at the
# edge connectors.
DEFAULT_SLOT_FACTOR = 3.15


def extract_plane_stack(
    config: SystemConfig | None = None,
    slot_factor: float = DEFAULT_SLOT_FACTOR,
) -> PlaneStack:
    """Build the default two-plane stack for a configuration."""
    cfg = config or SystemConfig()
    vdd = PowerPlane(
        name="VDD", thickness_um=cfg.metal_thickness_um, slot_factor=slot_factor
    )
    ret = PowerPlane(
        name="GND", thickness_um=cfg.metal_thickness_um, slot_factor=slot_factor
    )
    return PlaneStack(vdd=vdd, ret=ret)
