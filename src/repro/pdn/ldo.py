"""Behavioural wide-input LDO model (paper Section III).

Each compute chiplet regulates its own logic supply with a custom low-
dropout regulator because edge power delivery leaves the unregulated input
anywhere between ~1.4V (array centre, peak draw) and 2.5V (edge).  The LDO
must produce 1.1V nominal — guaranteed between 1.0V and 1.2V across PVT —
while supporting 350mW peak and 200mA load steps within a few cycles.

A linear regulator passes its load current straight through, so its
efficiency is simply ``V_out / V_in``; the centre tiles are therefore *more*
efficient than the edge tiles (smaller voltage to burn), which is the
counter-intuitive upside of the paper's scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import params
from ..errors import PdnError


@dataclass(frozen=True)
class LdoModel:
    """Wide-input-range LDO behavioural model."""

    v_out_nominal: float = params.LDO_OUTPUT_NOMINAL
    v_out_min: float = params.LDO_OUTPUT_MIN
    v_out_max: float = params.LDO_OUTPUT_MAX
    v_in_min: float = params.LDO_INPUT_MIN
    v_in_max: float = params.LDO_INPUT_MAX
    dropout_v: float = 0.2      # minimum headroom for regulation
    quiescent_a: float = 1e-3   # ground-pin current of the control loop

    def __post_init__(self) -> None:
        if not self.v_out_min <= self.v_out_nominal <= self.v_out_max:
            raise PdnError("nominal output outside guaranteed band")
        if self.v_in_min < self.v_out_max + self.dropout_v:
            raise PdnError(
                "input range floor leaves no dropout headroom: "
                f"{self.v_in_min} < {self.v_out_max} + {self.dropout_v}"
            )

    def in_range(self, v_in: float) -> bool:
        """True when the unregulated input is within the tracking range."""
        return self.v_in_min <= v_in <= self.v_in_max

    def regulate(self, v_in: float) -> float:
        """Output voltage for a given input voltage.

        Inside the tracking range the loop holds the nominal output.  Below
        the range the output follows the input minus dropout (degraded
        regulation); above the range the model raises, since the paper's
        LDO was only designed to track up to 2.5V.
        """
        if v_in > self.v_in_max:
            raise PdnError(
                f"LDO input {v_in:.3f}V above tracking range "
                f"(max {self.v_in_max}V)"
            )
        if v_in >= self.v_out_nominal + self.dropout_v:
            return self.v_out_nominal
        return max(v_in - self.dropout_v, 0.0)

    def regulation_ok(self, v_in: float) -> bool:
        """True when the output stays inside the guaranteed 1.0-1.2V band."""
        try:
            v_out = self.regulate(v_in)
        except PdnError:
            return False
        return self.v_out_min <= v_out <= self.v_out_max

    def efficiency(self, v_in: float, load_a: float) -> float:
        """Power efficiency at a given input voltage and load current.

        ``P_out / P_in`` with the pass-through load current plus quiescent
        draw: ``(V_out * I) / (V_in * (I + I_q))``.
        """
        if load_a < 0:
            raise PdnError("load current must be non-negative")
        if v_in <= 0:
            raise PdnError("input voltage must be positive")
        v_out = self.regulate(v_in)
        if load_a == 0:
            return 0.0
        return (v_out * load_a) / (v_in * (load_a + self.quiescent_a))

    def pass_device_dissipation_w(self, v_in: float, load_a: float) -> float:
        """Heat burned in the pass device: ``(V_in - V_out) * I``."""
        v_out = self.regulate(v_in)
        return max(v_in - v_out, 0.0) * load_a


def ldo_efficiency_map(voltages, load_a: float, ldo: LdoModel | None = None):
    """Per-tile LDO efficiency for a PDN voltage map.

    Parameters
    ----------
    voltages:
        ``(rows, cols)`` delivered-voltage array from a
        :class:`~repro.pdn.solver.PdnSolution`.
    load_a:
        Logic load current per tile.
    """
    import numpy as np

    model = ldo or LdoModel()
    volts = np.asarray(voltages, dtype=float)
    out = np.empty_like(volts)
    flat_in = volts.reshape(-1)
    flat_out = out.reshape(-1)
    for i, v in enumerate(flat_in):
        flat_out[i] = model.efficiency(float(v), load_a)
    return out
