"""Sparse nodal-analysis IR-droop solver (paper Section III, Fig. 2).

The PDN is modelled as a resistor mesh with one node per tile.  Power is
delivered from the wafer edge: every boundary node is tied to the 2.5V edge
supply through a small connector/escape resistance.

Two load models are supported:

* ``"ldo"`` (default, and what the paper's numbers imply): a linear LDO
  passes its *logic* load current straight through, so each tile draws a
  constant current ``I = P_tile / V_ff`` regardless of the delivered
  voltage.  This is how the paper arrives at ~290A total (1024 tiles x
  350mW / 1.21V) and makes the solve a single sparse linear system.
* ``"constant_power"``: each tile draws ``I = P_tile / V_tile``, the model
  appropriate for a switching down-converter.  This is mildly nonlinear;
  the solver alternates sparse linear solves with load-current updates
  until the node voltages converge.

The headline result reproduced here is Fig. 2: 2.5V at the wafer edge
drooping to roughly 1.4V at the array centre during peak draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.linalg import spsolve

from ..config import Coord, SystemConfig
from ..errors import ConvergenceError, PdnError
from .plane import PlaneStack, extract_plane_stack

# Lumped resistance from the bench supply through the edge connector into a
# boundary node of the plane mesh.  Edge connectors are massively parallel
# (hundreds of power pins per side), so this is small compared with the
# plane resistance.
DEFAULT_EDGE_CONNECTOR_OHM = 2.0e-3


@dataclass
class PdnSolution:
    """Result of a PDN solve."""

    config: SystemConfig
    voltages: np.ndarray            # (rows, cols) node voltages
    currents: np.ndarray            # (rows, cols) per-tile load currents
    edge_voltage: float
    iterations: int
    converged: bool
    power_loads_w: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    def voltage_at(self, coord: Coord) -> float:
        """Delivered (unregulated) voltage at one tile."""
        self.config.validate_coord(coord)
        return float(self.voltages[coord])

    @property
    def min_voltage(self) -> float:
        """Worst-case delivered voltage (the array centre under peak draw)."""
        return float(self.voltages.min())

    @property
    def max_voltage(self) -> float:
        """Best-case delivered voltage (tiles adjacent to the edge supply)."""
        return float(self.voltages.max())

    @property
    def total_current_a(self) -> float:
        """Total current sourced by the edge supply."""
        return float(self.currents.sum())

    @property
    def supply_power_w(self) -> float:
        """Power drawn from the bench supply (at the edge voltage)."""
        return self.total_current_a * self.edge_voltage

    @property
    def load_power_w(self) -> float:
        """Power consumed by the tile loads (post-droop, pre-LDO)."""
        return float((self.voltages * self.currents).sum())

    @property
    def plane_loss_w(self) -> float:
        """Resistive loss dissipated in the power planes."""
        return self.supply_power_w - self.load_power_w

    def droop_profile(self) -> list[tuple[float, float]]:
        """``(distance_to_edge_mm, voltage)`` pairs for a droop-vs-distance plot.

        This is the data behind Fig. 2's edge-to-centre voltage gradient.
        """
        from ..geometry.wafer import WaferLayout

        layout = WaferLayout(self.config)
        return [
            (layout.distance_to_edge_mm(c), float(self.voltages[c]))
            for c in self.config.tile_coords()
        ]

    def center_cross_section(self) -> np.ndarray:
        """Voltages along the middle row — the classic Fig. 2 cut."""
        return self.voltages[self.config.rows // 2, :].copy()


class PdnSolver:
    """Builds and solves the waferscale PDN mesh.

    Parameters
    ----------
    config:
        System instance (grid size, pitches, supply voltage, tile power).
    stack:
        Power-plane stack; default is the paper's two slotted 2um planes.
    edge_connector_ohm:
        Lumped supply-to-boundary-node resistance.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        stack: PlaneStack | None = None,
        edge_connector_ohm: float = DEFAULT_EDGE_CONNECTOR_OHM,
    ):
        self.config = config or SystemConfig()
        self.stack = stack or extract_plane_stack(self.config)
        if edge_connector_ohm <= 0:
            raise PdnError("edge connector resistance must be positive")
        self.edge_connector_ohm = edge_connector_ohm
        self._laplacian: csr_matrix | None = None
        self._edge_conductance: np.ndarray | None = None

    # ------------------------------------------------------------------
    # mesh construction
    # ------------------------------------------------------------------

    def _node_index(self, coord: Coord) -> int:
        r, c = coord
        return r * self.config.cols + c

    def _build_system(self) -> tuple[csr_matrix, np.ndarray]:
        """Assemble the conductance Laplacian and edge-injection vector."""
        cfg = self.config
        n = cfg.tiles
        r_h, r_v = self.stack.mesh_resistances(cfg)
        g_h, g_v = 1.0 / r_h, 1.0 / r_v

        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        diag = np.zeros(n)

        def stamp(a: int, b: int, g: float) -> None:
            rows.extend((a, b))
            cols.extend((b, a))
            vals.extend((-g, -g))
            diag[a] += g
            diag[b] += g

        for coord in cfg.tile_coords():
            r, c = coord
            i = self._node_index(coord)
            if c + 1 < cfg.cols:
                stamp(i, self._node_index((r, c + 1)), g_h)
            if r + 1 < cfg.rows:
                stamp(i, self._node_index((r + 1, c)), g_v)

        # Boundary nodes tie to the edge supply.  Corner tiles touch two
        # edges and get two connector conductances.
        g_edge = 1.0 / self.edge_connector_ohm
        edge_g = np.zeros(n)
        for coord in cfg.tile_coords():
            r, c = coord
            touches = sum(
                (r == 0, r == cfg.rows - 1, c == 0, c == cfg.cols - 1)
            )
            if touches:
                i = self._node_index(coord)
                edge_g[i] = touches * g_edge
                diag[i] += touches * g_edge

        rows.extend(range(n))
        cols.extend(range(n))
        vals.extend(diag)
        laplacian = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        return laplacian, edge_g

    # ------------------------------------------------------------------
    # solve
    # ------------------------------------------------------------------

    def solve(
        self,
        tile_power_w: float | np.ndarray | None = None,
        load_model: str = "ldo",
        max_iterations: int = 100,
        tolerance_v: float = 1e-6,
        min_load_voltage: float = 0.2,
    ) -> PdnSolution:
        """Solve the mesh.

        Parameters
        ----------
        tile_power_w:
            Scalar peak power per tile, or a ``(rows, cols)`` array for
            non-uniform activity maps.  Defaults to the config's peak.
        load_model:
            ``"ldo"`` — constant-current loads ``P_tile / V_ff`` (linear
            regulator pass-through; one linear solve).
            ``"constant_power"`` — ``P_tile / V_tile`` loads solved by a
            fixed point (switching-converter model).
        min_load_voltage:
            Floor used when converting power to current in the
            constant-power fixed point, preventing divergence if a load
            pulls its node far down.
        """
        cfg = self.config
        if load_model not in ("ldo", "constant_power"):
            raise PdnError(f"unknown load model {load_model!r}")
        if tile_power_w is None:
            tile_power_w = cfg.tile_peak_power_w
        power = np.asarray(tile_power_w, dtype=float)
        if power.ndim == 0:
            power = np.full((cfg.rows, cfg.cols), float(power))
        if power.shape != (cfg.rows, cfg.cols):
            raise PdnError(
                f"power map shape {power.shape} != array {(cfg.rows, cfg.cols)}"
            )
        if (power < 0).any():
            raise PdnError("tile power must be non-negative")

        if self._laplacian is None:
            self._laplacian, self._edge_conductance = self._build_system()
        laplacian, edge_g = self._laplacian, self._edge_conductance
        assert edge_g is not None

        v_edge = cfg.edge_supply_voltage
        injection = edge_g * v_edge
        flat_power = power.reshape(-1)

        if load_model == "ldo":
            load_current = flat_power / cfg.ff_corner_voltage
            voltages = spsolve(laplacian, injection - load_current)
            currents = load_current.reshape(cfg.rows, cfg.cols)
            return PdnSolution(
                config=cfg,
                voltages=voltages.reshape(cfg.rows, cfg.cols),
                currents=currents,
                edge_voltage=v_edge,
                iterations=1,
                converged=True,
                power_loads_w=power,
            )

        voltages = np.full(cfg.tiles, v_edge)
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            load_v = np.maximum(voltages, min_load_voltage)
            load_current = flat_power / load_v
            rhs = injection - load_current
            new_voltages = spsolve(laplacian, rhs)
            delta = float(np.abs(new_voltages - voltages).max())
            voltages = new_voltages
            if delta < tolerance_v:
                converged = True
                break

        if not converged:
            raise ConvergenceError(
                f"PDN fixed point did not converge in {max_iterations} "
                f"iterations (last delta > {tolerance_v}V)"
            )

        load_v = np.maximum(voltages, min_load_voltage)
        currents = (flat_power / load_v).reshape(cfg.rows, cfg.cols)
        return PdnSolution(
            config=cfg,
            voltages=voltages.reshape(cfg.rows, cfg.cols),
            currents=currents,
            edge_voltage=v_edge,
            iterations=iterations,
            converged=converged,
            power_loads_w=power,
        )


def solve_pdn(
    config: SystemConfig | None = None,
    tile_power_w: float | np.ndarray | None = None,
    **solver_kwargs,
) -> PdnSolution:
    """One-call PDN solve with the default plane stack."""
    return PdnSolver(config, **solver_kwargs).solve(tile_power_w)
