"""Sparse nodal-analysis IR-droop solver (paper Section III, Fig. 2).

The PDN is modelled as a resistor mesh with one node per tile.  Power is
delivered from the wafer edge: every boundary node is tied to the 2.5V edge
supply through a small connector/escape resistance.

Two load models are supported:

* ``"ldo"`` (default, and what the paper's numbers imply): a linear LDO
  passes its *logic* load current straight through, so each tile draws a
  constant current ``I = P_tile / V_ff`` regardless of the delivered
  voltage.  This is how the paper arrives at ~290A total (1024 tiles x
  350mW / 1.21V) and makes the solve a single sparse linear system.
* ``"constant_power"``: each tile draws ``I = P_tile / V_tile``, the model
  appropriate for a switching down-converter.  This is mildly nonlinear;
  the solver alternates sparse linear solves with load-current updates
  until the node voltages converge.

The headline result reproduced here is Fig. 2: 2.5V at the wafer edge
drooping to roughly 1.4V at the array centre during peak draw.

The Laplacian depends only on the mesh geometry, never on the load, so
the solver caches one sparse LU factorization (:func:`splu`) and every
subsequent solve — each fixed-point iteration, every new power map, all
columns of a :meth:`PdnSolver.solve_many` batch — costs a pair of
triangular solves instead of a fresh factorization.  Pass
``engine="reference"`` to keep the historical fresh-``spsolve``-per-call
path (the reference the differential tests compare against); the legacy
``factorize=`` knob still works but emits ``DeprecationWarning`` (see
:mod:`repro.fastpath`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.linalg import splu, spsolve

from ..config import Coord, SystemConfig
from ..errors import ConvergenceError, PdnError
from ..fastpath import resolve_engine_kind
from ..obs.telemetry import resolve_telemetry
from .plane import PlaneStack, extract_plane_stack

# Lumped resistance from the bench supply through the edge connector into a
# boundary node of the plane mesh.  Edge connectors are massively parallel
# (hundreds of power pins per side), so this is small compared with the
# plane resistance.
DEFAULT_EDGE_CONNECTOR_OHM = 2.0e-3


@dataclass
class PdnSolution:
    """Result of a PDN solve."""

    config: SystemConfig
    voltages: np.ndarray            # (rows, cols) node voltages
    currents: np.ndarray            # (rows, cols) per-tile load currents
    edge_voltage: float
    iterations: int
    converged: bool
    power_loads_w: np.ndarray | None = field(repr=False, default=None)

    def voltage_at(self, coord: Coord) -> float:
        """Delivered (unregulated) voltage at one tile."""
        self.config.validate_coord(coord)
        return float(self.voltages[coord])

    @property
    def min_voltage(self) -> float:
        """Worst-case delivered voltage (the array centre under peak draw)."""
        return float(self.voltages.min())

    @property
    def max_voltage(self) -> float:
        """Best-case delivered voltage (tiles adjacent to the edge supply)."""
        return float(self.voltages.max())

    @property
    def total_current_a(self) -> float:
        """Total current sourced by the edge supply."""
        return float(self.currents.sum())

    @property
    def supply_power_w(self) -> float:
        """Power drawn from the bench supply (at the edge voltage)."""
        return self.total_current_a * self.edge_voltage

    @property
    def load_power_w(self) -> float:
        """Power consumed by the tile loads (post-droop, pre-LDO)."""
        return float((self.voltages * self.currents).sum())

    @property
    def plane_loss_w(self) -> float:
        """Resistive loss dissipated in the power planes."""
        return self.supply_power_w - self.load_power_w

    @property
    def specified_power_w(self) -> float | None:
        """Total tile power the solve was asked to deliver.

        ``None`` when the solution was constructed without recording its
        power map (``power_loads_w=None``).
        """
        if self.power_loads_w is None:
            return None
        return float(self.power_loads_w.sum())

    @property
    def delivery_efficiency(self) -> float | None:
        """Specified load power over supply power (plane-loss efficiency).

        ``None`` when the power map was not recorded or no power is drawn.
        """
        specified = self.specified_power_w
        if specified is None or self.supply_power_w <= 0.0:
            return None
        return specified / self.supply_power_w

    def droop_profile(self) -> list[tuple[float, float]]:
        """``(distance_to_edge_mm, voltage)`` pairs for a droop-vs-distance plot.

        This is the data behind Fig. 2's edge-to-centre voltage gradient.
        """
        from ..geometry.wafer import WaferLayout

        layout = WaferLayout(self.config)
        return [
            (layout.distance_to_edge_mm(c), float(self.voltages[c]))
            for c in self.config.tile_coords()
        ]

    def center_cross_section(self) -> np.ndarray:
        """Voltages along the middle row — the classic Fig. 2 cut."""
        return self.voltages[self.config.rows // 2, :].copy()


class PdnSolver:
    """Builds and solves the waferscale PDN mesh.

    Parameters
    ----------
    config:
        System instance (grid size, pitches, supply voltage, tile power).
    stack:
        Power-plane stack; default is the paper's two slotted 2um planes.
    edge_connector_ohm:
        Lumped supply-to-boundary-node resistance.
    engine:
        ``"fast"`` (default) LU-factorizes the mesh Laplacian once
        (:func:`splu`) and reuses it for every linear solve this
        instance performs; ``"reference"`` keeps the historical
        fresh-``spsolve``-per-call path used by the differential tests
        and benchmarks.
    factorize:
        Deprecated alias for ``engine``: ``True`` = ``"fast"``,
        ``False`` = ``"reference"``.  Emits ``DeprecationWarning``.
    checkers:
        Optional :class:`~repro.verify.invariants.InvariantChecker`
        instances (e.g. ``KclResidualChecker``, ``DroopBoundChecker``);
        each is run against every solution this solver produces —
        including every :meth:`solve_many` column — and raises
        :class:`~repro.verify.invariants.InvariantViolation` on failure.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        stack: PlaneStack | None = None,
        edge_connector_ohm: float = DEFAULT_EDGE_CONNECTOR_OHM,
        engine: str | None = None,
        factorize: bool | None = None,
        checkers=None,
    ):
        self.config = config or SystemConfig()
        self.stack = stack or extract_plane_stack(self.config)
        if edge_connector_ohm <= 0:
            raise PdnError("edge connector resistance must be positive")
        self.edge_connector_ohm = edge_connector_ohm
        self.engine = resolve_engine_kind(
            engine,
            entry_point="PdnSolver",
            deprecated_name="factorize",
            deprecated_value=factorize,
            deprecated_map={True: "fast", False: "reference"},
        )
        self.factorize = self.engine == "fast"
        self.checkers = list(checkers or ())
        self._laplacian: csr_matrix | None = None
        self._edge_conductance: np.ndarray | None = None
        self._lu = None                 # cached splu factorization

    def _checked(self, solution: PdnSolution) -> PdnSolution:
        """Run every attached checker against one solution."""
        for checker in self.checkers:
            checker.check_solution(self, solution)
        return solution

    # ------------------------------------------------------------------
    # mesh construction
    # ------------------------------------------------------------------

    def _node_index(self, coord: Coord) -> int:
        r, c = coord
        return r * self.config.cols + c

    def _build_system(self) -> tuple[csr_matrix, np.ndarray]:
        """Assemble the conductance Laplacian and edge-injection vector."""
        cfg = self.config
        n = cfg.tiles
        r_h, r_v = self.stack.mesh_resistances(cfg)
        g_h, g_v = 1.0 / r_h, 1.0 / r_v

        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        diag = np.zeros(n)

        def stamp(a: int, b: int, g: float) -> None:
            rows.extend((a, b))
            cols.extend((b, a))
            vals.extend((-g, -g))
            diag[a] += g
            diag[b] += g

        for coord in cfg.tile_coords():
            r, c = coord
            i = self._node_index(coord)
            if c + 1 < cfg.cols:
                stamp(i, self._node_index((r, c + 1)), g_h)
            if r + 1 < cfg.rows:
                stamp(i, self._node_index((r + 1, c)), g_v)

        # Boundary nodes tie to the edge supply.  Corner tiles touch two
        # edges and get two connector conductances.
        g_edge = 1.0 / self.edge_connector_ohm
        edge_g = np.zeros(n)
        for coord in cfg.tile_coords():
            r, c = coord
            touches = sum(
                (r == 0, r == cfg.rows - 1, c == 0, c == cfg.cols - 1)
            )
            if touches:
                i = self._node_index(coord)
                edge_g[i] = touches * g_edge
                diag[i] += touches * g_edge

        rows.extend(range(n))
        cols.extend(range(n))
        vals.extend(diag)
        laplacian = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        return laplacian, edge_g

    # ------------------------------------------------------------------
    # linear kernel
    # ------------------------------------------------------------------

    def _ensure_system(self) -> tuple[csr_matrix, np.ndarray]:
        if self._laplacian is None:
            self._laplacian, self._edge_conductance = self._build_system()
        assert self._edge_conductance is not None
        return self._laplacian, self._edge_conductance

    def _linear_solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``laplacian @ x = rhs`` (``rhs`` may be a matrix of columns).

        With ``factorize=True`` the first call LU-factorizes the
        Laplacian and every call afterwards is a pair of triangular
        solves; telemetry counts the factorizations and their reuses.
        """
        laplacian, _ = self._ensure_system()
        if not self.factorize:
            if rhs.ndim == 1:
                return spsolve(laplacian, rhs)
            return np.column_stack(
                [spsolve(laplacian, rhs[:, i]) for i in range(rhs.shape[1])]
            )
        tel = resolve_telemetry(None)
        if self._lu is None:
            self._lu = splu(laplacian.tocsc())
            if tel.enabled:
                tel.metrics.counter("pdn.factorizations").inc()
        elif tel.enabled:
            tel.metrics.counter("pdn.factorization_reuses").inc()
        return self._lu.solve(rhs)

    def _validate_power(self, tile_power_w: float | np.ndarray | None) -> np.ndarray:
        cfg = self.config
        if tile_power_w is None:
            tile_power_w = cfg.tile_peak_power_w
        power = np.asarray(tile_power_w, dtype=float)
        if power.ndim == 0:
            power = np.full((cfg.rows, cfg.cols), float(power))
        if power.shape != (cfg.rows, cfg.cols):
            raise PdnError(
                f"power map shape {power.shape} != array {(cfg.rows, cfg.cols)}"
            )
        if (power < 0).any():
            raise PdnError("tile power must be non-negative")
        return power

    # ------------------------------------------------------------------
    # solve
    # ------------------------------------------------------------------

    def solve(
        self,
        tile_power_w: float | np.ndarray | None = None,
        load_model: str = "ldo",
        max_iterations: int = 100,
        tolerance_v: float = 1e-6,
        min_load_voltage: float = 0.2,
    ) -> PdnSolution:
        """Solve the mesh.

        Parameters
        ----------
        tile_power_w:
            Scalar peak power per tile, or a ``(rows, cols)`` array for
            non-uniform activity maps.  Defaults to the config's peak.
        load_model:
            ``"ldo"`` — constant-current loads ``P_tile / V_ff`` (linear
            regulator pass-through; one linear solve).
            ``"constant_power"`` — ``P_tile / V_tile`` loads solved by a
            fixed point (switching-converter model).
        min_load_voltage:
            Floor used when converting power to current in the
            constant-power fixed point, preventing divergence if a load
            pulls its node far down.
        """
        cfg = self.config
        if load_model not in ("ldo", "constant_power"):
            raise PdnError(f"unknown load model {load_model!r}")
        power = self._validate_power(tile_power_w)
        _, edge_g = self._ensure_system()

        v_edge = cfg.edge_supply_voltage
        injection = edge_g * v_edge
        flat_power = power.reshape(-1)

        if load_model == "ldo":
            load_current = flat_power / cfg.ff_corner_voltage
            voltages = self._linear_solve(injection - load_current)
            currents = load_current.reshape(cfg.rows, cfg.cols)
            return self._checked(
                PdnSolution(
                    config=cfg,
                    voltages=voltages.reshape(cfg.rows, cfg.cols),
                    currents=currents,
                    edge_voltage=v_edge,
                    iterations=1,
                    converged=True,
                    power_loads_w=power,
                )
            )

        voltages = np.full(cfg.tiles, v_edge)
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            load_v = np.maximum(voltages, min_load_voltage)
            load_current = flat_power / load_v
            rhs = injection - load_current
            new_voltages = self._linear_solve(rhs)
            delta = float(np.abs(new_voltages - voltages).max())
            voltages = new_voltages
            if delta < tolerance_v:
                converged = True
                break

        if not converged:
            raise ConvergenceError(
                f"PDN fixed point did not converge in {max_iterations} "
                f"iterations (last delta > {tolerance_v}V)"
            )

        load_v = np.maximum(voltages, min_load_voltage)
        currents = (flat_power / load_v).reshape(cfg.rows, cfg.cols)
        return self._checked(
            PdnSolution(
                config=cfg,
                voltages=voltages.reshape(cfg.rows, cfg.cols),
                currents=currents,
                edge_voltage=v_edge,
                iterations=iterations,
                converged=converged,
                power_loads_w=power,
            )
        )

    def solve_many(
        self,
        power_maps: "list[float | np.ndarray]",
        load_model: str = "ldo",
        max_iterations: int = 100,
        tolerance_v: float = 1e-6,
        min_load_voltage: float = 0.2,
    ) -> list[PdnSolution]:
        """Solve the mesh for a batch of power maps.

        The factorization is shared across the whole batch.  The linear
        ``"ldo"`` model solves every map in a single multi-RHS triangular
        solve; ``"constant_power"`` iterates all maps jointly, retiring
        each map's column from the right-hand-side block as soon as it
        converges, so per-map iteration counts (and voltages) match a
        sequence of individual :meth:`solve` calls exactly.
        """
        cfg = self.config
        if load_model not in ("ldo", "constant_power"):
            raise PdnError(f"unknown load model {load_model!r}")
        if not power_maps:
            return []
        powers = [self._validate_power(p) for p in power_maps]
        _, edge_g = self._ensure_system()
        v_edge = cfg.edge_supply_voltage
        injection = edge_g * v_edge
        flat = np.stack([p.reshape(-1) for p in powers], axis=1)  # (n, m)
        m = flat.shape[1]

        if load_model == "ldo":
            load_current = flat / cfg.ff_corner_voltage
            voltages = self._linear_solve(injection[:, None] - load_current)
            return [
                self._checked(
                    PdnSolution(
                        config=cfg,
                        voltages=voltages[:, i].reshape(cfg.rows, cfg.cols),
                        currents=load_current[:, i].reshape(cfg.rows, cfg.cols),
                        edge_voltage=v_edge,
                        iterations=1,
                        converged=True,
                        power_loads_w=powers[i],
                    )
                )
                for i in range(m)
            ]

        voltages = np.full((cfg.tiles, m), v_edge)
        iterations = np.zeros(m, dtype=int)
        active = np.ones(m, dtype=bool)
        for iteration in range(1, max_iterations + 1):
            idx = np.nonzero(active)[0]
            load_v = np.maximum(voltages[:, idx], min_load_voltage)
            rhs = injection[:, None] - flat[:, idx] / load_v
            new_voltages = self._linear_solve(rhs)
            if new_voltages.ndim == 1:
                new_voltages = new_voltages[:, None]
            delta = np.abs(new_voltages - voltages[:, idx]).max(axis=0)
            voltages[:, idx] = new_voltages
            iterations[idx] = iteration
            active[idx[delta < tolerance_v]] = False
            if not active.any():
                break
        if active.any():
            raise ConvergenceError(
                f"PDN fixed point did not converge for {int(active.sum())} "
                f"of {m} power maps in {max_iterations} iterations"
            )

        out: list[PdnSolution] = []
        for i in range(m):
            load_v = np.maximum(voltages[:, i], min_load_voltage)
            out.append(
                self._checked(
                    PdnSolution(
                        config=cfg,
                        voltages=voltages[:, i].reshape(cfg.rows, cfg.cols),
                        currents=(flat[:, i] / load_v).reshape(cfg.rows, cfg.cols),
                        edge_voltage=v_edge,
                        iterations=int(iterations[i]),
                        converged=True,
                        power_loads_w=powers[i],
                    )
                )
            )
        return out


def solve_pdn(
    config: SystemConfig | None = None,
    tile_power_w: float | np.ndarray | None = None,
    **solver_kwargs,
) -> PdnSolution:
    """One-call PDN solve with the default plane stack."""
    return PdnSolver(config, **solver_kwargs).solve(tile_power_w)
