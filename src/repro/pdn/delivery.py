"""Power-delivery scheme comparison (paper Section III).

The paper weighs three ways to power the wafer:

1. **Through-wafer vias (TWV)** — backside delivery through 700um vias.
   Electrically ideal but the technology was not production-ready, so the
   prototype could not use it.
2. **High-voltage edge delivery + on-wafer buck/switched-cap conversion** —
   12V at the edge cuts plane current ~12x, but the bulky off-chip
   inductors/capacitors would eat 25-30% of wafer area, break the regular
   chiplet array, stretch inter-chiplet links and add design complexity.
3. **2.5V edge delivery + per-chiplet LDO** (chosen) — no off-chip
   magnetics; costs resistive plane loss plus linear-regulator loss, which
   is acceptable for a sub-kW prototype.

:func:`compare_delivery_schemes` quantifies each option's area overhead and
end-to-end efficiency so the trade the paper made can be re-derived.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .. import params
from ..config import SystemConfig
from ..errors import PdnError
from .ldo import LdoModel
from .solver import PdnSolver
from .plane import extract_plane_stack


class DeliveryScheme(enum.Enum):
    """The three delivery options considered in the paper."""

    TWV_BACKSIDE = "twv_backside"
    HV_EDGE_BUCK = "hv_edge_buck"
    EDGE_LDO = "edge_ldo"


@dataclass(frozen=True)
class DeliveryOption:
    """Evaluation of one power-delivery scheme."""

    scheme: DeliveryScheme
    end_to_end_efficiency: float   # logic power / bench-supply power
    area_overhead_fraction: float  # wafer area lost to delivery components
    min_delivered_voltage: float   # worst unregulated voltage at a chiplet
    feasible: bool                 # buildable with technology available
    notes: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.end_to_end_efficiency <= 1.0:
            raise PdnError("efficiency must be in [0, 1]")


# Representative converter efficiency for on-wafer buck/switched-capacitor
# down-conversion (12V -> ~1.2V), and for the TWV scenario where power lands
# directly on chiplet supply pads.
BUCK_CONVERTER_EFFICIENCY = 0.85
TWV_DELIVERY_EFFICIENCY = 0.97


def compare_delivery_schemes(
    config: SystemConfig | None = None,
    ldo: LdoModel | None = None,
) -> dict[DeliveryScheme, DeliveryOption]:
    """Evaluate all three delivery schemes for a configuration.

    The EDGE_LDO option runs the full mesh solve: its efficiency combines
    plane resistive loss with per-tile LDO loss at the solved voltages.
    The HV_EDGE_BUCK option scales plane loss by ``(V_edge/V_hv)^2`` (same
    power at ~12x lower current) and applies converter efficiency.
    """
    cfg = config or SystemConfig()
    regulator = ldo or LdoModel()

    solver = PdnSolver(cfg, stack=extract_plane_stack(cfg))
    solution = solver.solve()

    # Per-tile LDO efficiency at the solved voltages, load-weighted.
    logic_power = 0.0
    for coord in cfg.tile_coords():
        v_in = solution.voltage_at(coord)
        i_load = float(solution.currents[coord])
        v_out = regulator.regulate(v_in)
        logic_power += v_out * i_load
    edge_ldo_eff = logic_power / solution.supply_power_w
    # The EDGE_LDO scheme spends ~35% of *chiplet* area on decap but adds
    # zero off-chip components on the wafer, so the chiplet array stays
    # regular: its wafer-level area overhead is nil.
    edge_ldo = DeliveryOption(
        scheme=DeliveryScheme.EDGE_LDO,
        end_to_end_efficiency=edge_ldo_eff,
        area_overhead_fraction=0.0,
        min_delivered_voltage=solution.min_voltage,
        feasible=True,
        notes=(
            "2.5V edge delivery, per-chiplet wide-input LDO; plane loss "
            f"{solution.plane_loss_w:.0f}W of {solution.supply_power_w:.0f}W supplied"
        ),
    )

    # HV edge + buck: plane current falls by V_hv/V_edge, plane loss by the
    # square; converter loss applies to all delivered power.
    current_ratio = cfg.edge_supply_voltage / params.HV_DELIVERY_VOLTAGE
    hv_plane_loss = solution.plane_loss_w * current_ratio**2
    hv_supply_power = solution.load_power_w + hv_plane_loss
    hv_eff = (solution.load_power_w * BUCK_CONVERTER_EFFICIENCY) / hv_supply_power
    hv_buck = DeliveryOption(
        scheme=DeliveryScheme.HV_EDGE_BUCK,
        end_to_end_efficiency=hv_eff,
        area_overhead_fraction=params.BUCK_AREA_OVERHEAD_FRACTION,
        min_delivered_voltage=cfg.nominal_vdd,
        feasible=True,
        notes=(
            "12V edge delivery with on-wafer buck/switched-cap conversion; "
            "25-30% wafer area lost to off-chip L/C, disrupts chiplet array"
        ),
    )

    twv = DeliveryOption(
        scheme=DeliveryScheme.TWV_BACKSIDE,
        end_to_end_efficiency=TWV_DELIVERY_EFFICIENCY,
        area_overhead_fraction=0.0,
        min_delivered_voltage=cfg.nominal_vdd,
        feasible=False,
        notes="700um through-wafer vias: not production-ready for Si-IF",
    )

    return {
        DeliveryScheme.EDGE_LDO: edge_ldo,
        DeliveryScheme.HV_EDGE_BUCK: hv_buck,
        DeliveryScheme.TWV_BACKSIDE: twv,
    }


def chosen_scheme(options: dict[DeliveryScheme, DeliveryOption]) -> DeliveryScheme:
    """Re-derive the paper's choice.

    Among feasible options, prefer the one that keeps the chiplet array
    regular (lowest area overhead) as long as the system stays sub-kW —
    exactly the argument of Section III.
    """
    feasible = {s: o for s, o in options.items() if o.feasible}
    if not feasible:
        raise PdnError("no feasible delivery scheme")
    return min(feasible, key=lambda s: feasible[s].area_overhead_fraction)
