"""Through-wafer-via backside power delivery (paper Section III, ref [13]).

The delivery option the prototype could not use: 700um-deep vias through
the full-thickness Si-IF wafer bring power straight to each tile from a
backside distribution board, eliminating the lateral plane drop.  The
technology "was still under development" at prototype time; this model
quantifies what it would buy — in particular for the *higher-power
waferscale systems* the paper names as ongoing work, where edge delivery
stops scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import params
from ..config import SystemConfig
from ..errors import PdnError
from .solver import PdnSolver


@dataclass(frozen=True)
class TwvTechnology:
    """Through-wafer-via process parameters (after ref [13])."""

    depth_um: float = 700.0         # full-thickness wafer
    diameter_um: float = 50.0
    pitch_um: float = 150.0         # via-array pitch
    fill_resistivity_ohm_m: float = params.CU_RESISTIVITY_OHM_M

    def __post_init__(self) -> None:
        if self.depth_um <= 0 or self.diameter_um <= 0:
            raise PdnError("via geometry must be positive")
        if self.pitch_um < self.diameter_um:
            raise PdnError("via pitch must exceed the diameter")

    @property
    def via_resistance_ohm(self) -> float:
        """DC resistance of one filled via."""
        area_m2 = math.pi * (self.diameter_um * 1e-6 / 2.0) ** 2
        return self.fill_resistivity_ohm_m * (self.depth_um * 1e-6) / area_m2

    def vias_per_tile(self, config: SystemConfig, area_fraction: float = 0.05) -> int:
        """Vias placeable under one tile, spending ``area_fraction`` of it."""
        if not 0 < area_fraction <= 1:
            raise PdnError("area fraction must be in (0, 1]")
        tile_area_um2 = (
            config.tile_pitch_x_mm * config.tile_pitch_y_mm * 1e6
        )
        via_cell_um2 = self.pitch_um**2
        return max(1, int(tile_area_um2 * area_fraction / via_cell_um2))


@dataclass(frozen=True)
class TwvDeliveryResult:
    """Per-tile delivery quality under TWV power."""

    config: SystemConfig
    supply_voltage: float
    tile_droop_v: float
    delivered_voltage: float
    vias_per_tile: int
    via_array_resistance_ohm: float

    @property
    def droop_uniform(self) -> bool:
        """TWV droop is position-independent (no lateral plane path)."""
        return True


def solve_twv_delivery(
    config: SystemConfig | None = None,
    technology: TwvTechnology | None = None,
    supply_voltage: float = 1.5,
    tile_power_w: float | None = None,
    via_area_fraction: float = 0.05,
) -> TwvDeliveryResult:
    """Delivered voltage per tile under backside TWV power.

    Every tile sees only its own via-array drop (vias in parallel):
    ``V = V_supply - I_tile * R_via / N_vias``.  The supply can therefore
    sit just above the LDO input floor (1.5V here, 100mV of headroom)
    instead of 2.5V, removing most of the linear-regulator loss as well.
    """
    cfg = config or SystemConfig()
    tech = technology or TwvTechnology()
    power = tile_power_w if tile_power_w is not None else cfg.tile_peak_power_w
    if power < 0:
        raise PdnError("tile power must be non-negative")
    tile_current = power / cfg.ff_corner_voltage
    n_vias = tech.vias_per_tile(cfg, via_area_fraction)
    # Half the vias carry supply, half return; the round trip sees both.
    per_rail = max(n_vias // 2, 1)
    array_r = 2.0 * tech.via_resistance_ohm / per_rail
    droop = tile_current * array_r
    return TwvDeliveryResult(
        config=cfg,
        supply_voltage=supply_voltage,
        tile_droop_v=droop,
        delivered_voltage=supply_voltage - droop,
        vias_per_tile=n_vias,
        via_array_resistance_ohm=array_r,
    )


def max_tile_power_w(
    config: SystemConfig | None = None,
    scheme: str = "edge",
    min_delivered_v: float = params.LDO_INPUT_MIN,
) -> float:
    """Largest per-tile power keeping worst-case delivery above the floor.

    The "higher-power waferscale systems" question: edge delivery hits the
    LDO's 1.4V input floor at the array centre; TWV delivery only sees the
    local via drop and scales far further.  Binary-search on tile power.
    """
    cfg = config or SystemConfig()
    if scheme not in ("edge", "twv"):
        raise PdnError(f"unknown scheme {scheme!r}")
    # One solver for the whole binary search: the mesh factorization is
    # load-independent, so each probe is a single triangular solve.
    edge_solver = PdnSolver(cfg) if scheme == "edge" else None

    def delivered_min(power_w: float) -> float:
        if edge_solver is not None:
            return edge_solver.solve(tile_power_w=power_w).min_voltage
        return solve_twv_delivery(cfg, tile_power_w=power_w).delivered_voltage

    lo, hi = 0.0, 10.0
    if delivered_min(hi) >= min_delivered_v:
        return hi
    for _ in range(40):
        mid = (lo + hi) / 2.0
        if delivered_min(mid) >= min_delivered_v:
            lo = mid
        else:
            hi = mid
    return lo
