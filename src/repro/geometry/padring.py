"""Fine-pitch I/O pad ring with the two-column-set split (Sections V, VIII).

Each chiplet side carries I/O pads at 10um pillar pitch.  Because the I/O
cell (150um^2 with ESD) is larger than a single 10um pillar footprint, each
pad receives **two copper pillars**, placed orthogonal to the chiplet edge
(Fig. 5) so pad columns stay dense along the edge.

To survive an uncertain substrate yield, the pads on each side are split
into two *column sets* (Section VIII, Fig. 8):

* set 1 (the two columns nearest the die edge): all absolutely-essential
  network I/Os plus two of the five memory banks — routable with a single
  substrate signal layer;
* set 2 (the outer columns): non-essential I/Os and the remaining three
  memory banks — requires the second signal layer.

With only one good routing layer the system still works, at a 60% shared
memory capacity loss (3 of 5 banks unreachable — see
:mod:`repro.substrate.degraded`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import GeometryError
from .chiplet import ChipletSpec


class Side(enum.Enum):
    """Chiplet sides, used for pads and for mesh link escape."""

    NORTH = "north"
    SOUTH = "south"
    WEST = "west"
    EAST = "east"


class PadClass(enum.Enum):
    """Functional class of a pad, determining its column set."""

    NETWORK = "network"          # essential: inter-tile links
    MEMORY_ESSENTIAL = "memory_essential"    # banks 0-1 (set 1)
    MEMORY_EXTENDED = "memory_extended"      # banks 2-4 (set 2)
    CLOCK = "clock"              # forwarded clocks (essential)
    TEST = "test"                # JTAG (essential)
    POWER = "power"              # supply pillars
    SPARE = "spare"              # non-essential


ESSENTIAL_CLASSES = frozenset(
    {PadClass.NETWORK, PadClass.MEMORY_ESSENTIAL, PadClass.CLOCK, PadClass.TEST, PadClass.POWER}
)


@dataclass(frozen=True)
class IoPad:
    """One I/O pad: position along its side and classification."""

    side: Side
    index: int                  # position along the side, 0 at the corner
    column_set: int             # 1 = essential/near-edge, 2 = extended
    pad_class: PadClass
    pillars: int = 2            # copper pillars landing on this pad

    def __post_init__(self) -> None:
        if self.column_set not in (1, 2):
            raise GeometryError("column_set must be 1 or 2")
        if self.pillars < 1:
            raise GeometryError("a pad needs at least one pillar")

    @property
    def essential(self) -> bool:
        """True when this pad must work for a functional (degraded) system."""
        return self.pad_class in ESSENTIAL_CLASSES


@dataclass(frozen=True)
class IoColumnSet:
    """Summary of one column set on a pad ring."""

    set_index: int
    pads: tuple[IoPad, ...]

    @property
    def count(self) -> int:
        """Number of pads in this set."""
        return len(self.pads)


class PadRing:
    """The full pad ring of one chiplet."""

    def __init__(self, chiplet: ChipletSpec, pads: list[IoPad], pitch_um: float):
        self.chiplet = chiplet
        self.pitch_um = pitch_um
        self._pads = tuple(pads)
        per_side_capacity = self._side_capacity()
        for side in Side:
            n = sum(1 for p in self._pads if p.side is side)
            if n > 2 * per_side_capacity[side]:
                raise GeometryError(
                    f"{n} pads on {side.value} exceed capacity "
                    f"{2 * per_side_capacity[side]} (two column sets)"
                )

    def _side_capacity(self) -> dict[Side, int]:
        """Pads per column along each side at the ring pitch.

        A pad with two pillars orthogonal to the edge consumes one pitch
        position along the edge but two positions of depth, which is why
        the two-pillars-per-pad layout does not halve edge density (Fig. 5).
        """
        w, h = self.chiplet.width_mm, self.chiplet.height_mm
        along_w = int(w * 1000.0 / self.pitch_um)
        along_h = int(h * 1000.0 / self.pitch_um)
        return {
            Side.NORTH: along_w,
            Side.SOUTH: along_w,
            Side.WEST: along_h,
            Side.EAST: along_h,
        }

    @property
    def pads(self) -> tuple[IoPad, ...]:
        """All pads in the ring."""
        return self._pads

    @property
    def total_pillars(self) -> int:
        """Total copper pillars on this chiplet."""
        return sum(p.pillars for p in self._pads)

    def column_set(self, set_index: int) -> IoColumnSet:
        """All pads belonging to column set 1 or 2."""
        if set_index not in (1, 2):
            raise GeometryError("column_set index must be 1 or 2")
        pads = tuple(p for p in self._pads if p.column_set == set_index)
        return IoColumnSet(set_index=set_index, pads=pads)

    def essential_pads(self) -> tuple[IoPad, ...]:
        """Pads required for the single-routing-layer degraded system."""
        return tuple(p for p in self._pads if p.essential)

    def side_pads(self, side: Side) -> tuple[IoPad, ...]:
        """Pads on one side, ordered by index."""
        return tuple(
            sorted((p for p in self._pads if p.side is side), key=lambda p: p.index)
        )


def build_pad_ring(
    chiplet: ChipletSpec,
    pitch_um: float = 10.0,
    network_per_side: int = 400,
    memory_essential: int = 0,
    memory_extended: int = 0,
    clock_pads: int = 8,
    test_pads: int = 12,
    power_fraction: float = 0.10,
) -> PadRing:
    """Construct a pad ring matching the paper's I/O budgeting.

    Defaults model the compute chiplet: a 400-bit network link escapes each
    of the four sides (Section VI), a handful of clock/test pads, and a
    share of power pillars; remaining budget becomes spare pads in column
    set 2.  Memory-bank pads are used when building the memory chiplet's
    ring (2 essential banks, 3 extended — Section VIII).
    """
    if pitch_um <= 0:
        raise GeometryError("pitch must be positive")

    pads: list[IoPad] = []
    sides = list(Side)

    def add(side: Side, count: int, column_set: int, pad_class: PadClass) -> None:
        start = sum(1 for p in pads if p.side is side)
        for i in range(count):
            pads.append(
                IoPad(
                    side=side,
                    index=start + i,
                    column_set=column_set,
                    pad_class=pad_class,
                )
            )

    for side in sides:
        add(side, network_per_side, 1, PadClass.NETWORK)

    # Memory-bank pads split 2 essential / 3 extended banks; spread over
    # north and south (the banks connect to the compute chiplet above).
    for side in (Side.NORTH, Side.SOUTH):
        add(side, memory_essential // 2, 1, PadClass.MEMORY_ESSENTIAL)
        add(side, memory_extended // 2, 2, PadClass.MEMORY_EXTENDED)

    # One forwarded-clock input/output pair per side.
    per_side_clock = max(1, clock_pads // 4)
    for side in sides:
        add(side, per_side_clock, 1, PadClass.CLOCK)

    add(Side.WEST, test_pads, 1, PadClass.TEST)

    signal_pads = len(pads)
    power_pads = int(signal_pads * power_fraction)
    for i in range(power_pads):
        add(sides[i % 4], 1, 1, PadClass.POWER)

    return PadRing(chiplet=chiplet, pads=pads, pitch_um=pitch_um)
