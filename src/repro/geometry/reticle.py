"""Reticle step-and-repeat planning (paper Section VIII).

The wafer substrate is far larger than a lithography reticle, so the Si-IF
substrate is fabricated by stepping an identical reticle across the wafer
and *stitching* wires at reticle boundaries.  The prototype's reticle covers
12x6 tiles; a 32x32 array therefore needs a 3x6 grid of reticle instances
(with partial coverage at the south/east fringe) plus edge reticles whose
chiplet slots stay unpopulated and instead carry the fan-out wiring to the
wafer-edge connectors.

Wires crossing a reticle boundary are made fatter (3um wide / 2um space
instead of 2um/3um, constant 5um pitch) to tolerate stitching misalignment;
:mod:`repro.substrate.stitching` applies that rule during routing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import Coord, SystemConfig
from ..errors import GeometryError


@dataclass(frozen=True)
class Reticle:
    """One stepped reticle instance.

    ``row0``/``col0`` give the north-west tile covered; ``rows``/``cols``
    give the extent in tiles (possibly clipped at the array fringe).
    """

    index: tuple[int, int]      # (reticle-row, reticle-col) in the step grid
    row0: int
    col0: int
    rows: int
    cols: int
    is_edge: bool = False       # edge reticles carry fan-out, not chiplets

    @property
    def tile_coords(self) -> list[Coord]:
        """Tile coordinates covered by this reticle instance."""
        return [
            (r, c)
            for r in range(self.row0, self.row0 + self.rows)
            for c in range(self.col0, self.col0 + self.cols)
        ]

    def covers(self, coord: Coord) -> bool:
        """True when ``coord`` falls inside this reticle instance."""
        r, c = coord
        return (
            self.row0 <= r < self.row0 + self.rows
            and self.col0 <= c < self.col0 + self.cols
        )


@dataclass(frozen=True)
class ReticlePlan:
    """The full step-and-repeat plan for one wafer."""

    config: SystemConfig
    reticles: tuple[Reticle, ...]

    def reticle_of(self, coord: Coord) -> Reticle:
        """The reticle instance covering a given tile."""
        self.config.validate_coord(coord)
        for reticle in self.reticles:
            if not reticle.is_edge and reticle.covers(coord):
                return reticle
        raise GeometryError(f"tile {coord} not covered by any reticle")

    def crosses_boundary(self, a: Coord, b: Coord) -> bool:
        """True when tiles ``a`` and ``b`` lie in different reticles.

        A wire between them crosses a stitching boundary and must use the
        fattened stitch geometry.
        """
        return self.reticle_of(a).index != self.reticle_of(b).index

    @property
    def step_count(self) -> int:
        """Number of exposures needed for the tile-array region."""
        return sum(1 for r in self.reticles if not r.is_edge)

    @property
    def edge_reticle_count(self) -> int:
        """Number of fan-out (edge connector) reticle instances."""
        return sum(1 for r in self.reticles if r.is_edge)

    def boundary_tile_pairs(self) -> list[tuple[Coord, Coord]]:
        """All adjacent tile pairs whose connecting link crosses a boundary.

        These are exactly the inter-tile links whose wires need the
        stitch-tolerant (fat) geometry.
        """
        pairs: list[tuple[Coord, Coord]] = []
        for coord in self.config.tile_coords():
            r, c = coord
            for nbr in ((r, c + 1), (r + 1, c)):
                nr, nc = nbr
                if nr < self.config.rows and nc < self.config.cols:
                    if self.crosses_boundary(coord, nbr):
                        pairs.append((coord, nbr))
        return pairs


def plan_reticles(config: SystemConfig | None = None) -> ReticlePlan:
    """Compute the step-and-repeat plan for ``config``.

    The interior of the wafer is tiled with ``reticle_tile_rows`` x
    ``reticle_tile_cols`` reticles (clipped at the fringe).  One ring of
    edge reticles is added around the array to carry the fan-out wiring and
    the wafer-edge connector pads; their chiplet slots stay unpopulated and
    unwanted pads are removed with the custom block-etch step the paper
    describes.
    """
    cfg = config or SystemConfig()
    rt_rows, rt_cols = cfg.reticle_tile_rows, cfg.reticle_tile_cols
    if rt_rows < 1 or rt_cols < 1:
        raise GeometryError("reticle must cover at least one tile")

    reticles: list[Reticle] = []
    step_rows = -(-cfg.rows // rt_rows)     # ceil division
    step_cols = -(-cfg.cols // rt_cols)
    for i in range(step_rows):
        for j in range(step_cols):
            row0, col0 = i * rt_rows, j * rt_cols
            reticles.append(
                Reticle(
                    index=(i, j),
                    row0=row0,
                    col0=col0,
                    rows=min(rt_rows, cfg.rows - row0),
                    cols=min(rt_cols, cfg.cols - col0),
                )
            )

    # Ring of edge (fan-out/connector) reticles around the step grid.  Their
    # indices sit outside [0, step_rows) x [0, step_cols).
    for j in range(-1, step_cols + 1):
        for i in (-1, step_rows):
            reticles.append(
                Reticle(index=(i, j), row0=0, col0=0, rows=0, cols=0, is_edge=True)
            )
    for i in range(step_rows):
        for j in (-1, step_cols):
            reticles.append(
                Reticle(index=(i, j), row0=0, col0=0, rows=0, cols=0, is_edge=True)
            )

    return ReticlePlan(config=cfg, reticles=tuple(reticles))
