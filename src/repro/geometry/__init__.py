"""Wafer, tile, chiplet and reticle geometry (paper Sections II and VIII)."""

from .chiplet import ChipletKind, ChipletSpec, compute_chiplet, memory_chiplet
from .padring import IoColumnSet, PadRing, build_pad_ring
from .reticle import Reticle, ReticlePlan, plan_reticles
from .wafer import TilePlacement, WaferLayout, build_layout

__all__ = [
    "ChipletKind",
    "ChipletSpec",
    "compute_chiplet",
    "memory_chiplet",
    "IoColumnSet",
    "PadRing",
    "build_pad_ring",
    "Reticle",
    "ReticlePlan",
    "plan_reticles",
    "TilePlacement",
    "WaferLayout",
    "build_layout",
]
