"""Chiplet specifications (paper Section II, Figure 1, Table I).

Each tile holds two chiplets fabricated in TSMC 40nm-LP:

* a **compute chiplet** (3.15mm x 2.4mm): 14 ARM Cortex-M3 cores with 64KB
  private SRAM each, memory controllers, the inter-tile network routers, an
  intra-tile crossbar, the LDO/decap power components and the clock
  selection/forwarding circuitry;
* a **memory chiplet** (3.15mm x 1.1mm): five 128KB SRAM banks (four in the
  global shared address space, one tile-private), buffered north-south
  feedthroughs, and two decap banks.

This module captures the physical envelope and budget-level contents of the
chiplets; behaviour lives in :mod:`repro.arch` and the electrical models in
:mod:`repro.pdn`/:mod:`repro.clock`/:mod:`repro.io`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .. import params
from ..config import SystemConfig
from ..errors import GeometryError


class ChipletKind(enum.Enum):
    """The two chiplet types in a tile."""

    COMPUTE = "compute"
    MEMORY = "memory"


@dataclass(frozen=True)
class ChipletSpec:
    """Physical and budget-level description of one chiplet type."""

    kind: ChipletKind
    width_mm: float
    height_mm: float
    io_count: int
    cores: int = 0
    sram_banks: int = 0
    decap_area_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.width_mm <= 0 or self.height_mm <= 0:
            raise GeometryError(f"chiplet {self.kind} has non-positive dimensions")
        if self.io_count < 0:
            raise GeometryError("io_count must be non-negative")
        if not 0.0 <= self.decap_area_fraction < 1.0:
            raise GeometryError("decap_area_fraction must be in [0, 1)")

    @property
    def area_mm2(self) -> float:
        """Chiplet silicon area."""
        return self.width_mm * self.height_mm

    @property
    def perimeter_mm(self) -> float:
        """Chiplet perimeter, the resource that bounds edge I/O count."""
        return 2.0 * (self.width_mm + self.height_mm)

    @property
    def decap_area_mm2(self) -> float:
        """Area devoted to on-chip decoupling capacitance."""
        return self.area_mm2 * self.decap_area_fraction

    def max_perimeter_ios(self, pad_pitch_um: float, pad_rows: int = 2) -> int:
        """Upper bound on perimeter I/O pads at the given pitch.

        ``pad_rows`` models multiple staggered I/O rows along each edge
        (the prototype uses two column sets per side, Section VIII).
        """
        if pad_pitch_um <= 0:
            raise GeometryError("pad pitch must be positive")
        pads_per_mm = 1000.0 / pad_pitch_um
        return int(self.perimeter_mm * pads_per_mm * pad_rows)


def compute_chiplet(config: SystemConfig | None = None) -> ChipletSpec:
    """The compute chiplet spec for ``config`` (paper defaults when None)."""
    cfg = config or SystemConfig()
    return ChipletSpec(
        kind=ChipletKind.COMPUTE,
        width_mm=cfg.compute_chiplet_w_mm,
        height_mm=cfg.compute_chiplet_h_mm,
        io_count=cfg.ios_per_compute_chiplet,
        cores=cfg.cores_per_tile,
        sram_banks=0,
        decap_area_fraction=params.DECAP_AREA_FRACTION,
    )


def memory_chiplet(config: SystemConfig | None = None) -> ChipletSpec:
    """The memory chiplet spec for ``config`` (paper defaults when None)."""
    cfg = config or SystemConfig()
    return ChipletSpec(
        kind=ChipletKind.MEMORY,
        width_mm=cfg.memory_chiplet_w_mm,
        height_mm=cfg.memory_chiplet_h_mm,
        io_count=cfg.ios_per_memory_chiplet,
        cores=0,
        sram_banks=cfg.memory_banks_per_tile,
        decap_area_fraction=params.DECAP_AREA_FRACTION,
    )


def tile_area_mm2(config: SystemConfig | None = None) -> float:
    """Active silicon area of one tile (both chiplets)."""
    cfg = config or SystemConfig()
    return compute_chiplet(cfg).area_mm2 + memory_chiplet(cfg).area_mm2
