"""Wafer layout: placing 1024 tiles (2048 chiplets) on the Si-IF substrate.

The tile array is a regular 32x32 grid.  Within a tile, the compute chiplet
sits above the memory chiplet (the memory chiplet provides buffered
north-south feedthroughs, Section II-c).  The layout computes physical
positions in millimetres with the wafer-substrate origin at the north-west
corner of the array; these positions feed the PDN extraction (distance to
the supply edge) and the substrate router (pad coordinates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import Coord, SystemConfig
from ..errors import GeometryError
from .chiplet import ChipletKind, ChipletSpec, compute_chiplet, memory_chiplet


@dataclass(frozen=True)
class TilePlacement:
    """Physical placement of one tile and its two chiplets."""

    coord: Coord
    origin_x_mm: float          # west edge of the tile slot
    origin_y_mm: float          # north edge of the tile slot
    compute: ChipletSpec
    memory: ChipletSpec
    spacing_mm: float

    @property
    def center_x_mm(self) -> float:
        """Tile-slot centre, X."""
        return self.origin_x_mm + self.compute.width_mm / 2.0

    @property
    def center_y_mm(self) -> float:
        """Tile-slot centre, Y."""
        total_h = (
            self.compute.height_mm + self.memory.height_mm + self.spacing_mm
        )
        return self.origin_y_mm + total_h / 2.0

    def chiplet_origin(self, kind: ChipletKind) -> tuple[float, float]:
        """North-west corner of the requested chiplet within the tile."""
        if kind is ChipletKind.COMPUTE:
            return (self.origin_x_mm, self.origin_y_mm)
        y = self.origin_y_mm + self.compute.height_mm + self.spacing_mm
        return (self.origin_x_mm, y)


class WaferLayout:
    """Positions of all tiles on the wafer substrate.

    Parameters
    ----------
    config:
        The system instance being laid out.

    Notes
    -----
    Distances returned by :meth:`distance_to_edge_mm` drive the PDN IR-droop
    model: power enters from all four edges of the array (Section III), so
    the relevant distance is to the *nearest* edge.
    """

    def __init__(self, config: SystemConfig):
        self.config = config
        self._compute = compute_chiplet(config)
        self._memory = memory_chiplet(config)
        self._placements: dict[Coord, TilePlacement] = {}
        for coord in config.tile_coords():
            r, c = coord
            self._placements[coord] = TilePlacement(
                coord=coord,
                origin_x_mm=c * config.tile_pitch_x_mm,
                origin_y_mm=r * config.tile_pitch_y_mm,
                compute=self._compute,
                memory=self._memory,
                spacing_mm=config.inter_chiplet_spacing_mm,
            )

    def placement(self, coord: Coord) -> TilePlacement:
        """The placement record of one tile."""
        try:
            return self._placements[coord]
        except KeyError:
            raise GeometryError(f"tile {coord} not in layout") from None

    def placements(self) -> list[TilePlacement]:
        """All placements in row-major order."""
        return [self._placements[c] for c in self.config.tile_coords()]

    @property
    def width_mm(self) -> float:
        """Width of the populated array."""
        return self.config.array_width_mm

    @property
    def height_mm(self) -> float:
        """Height of the populated array."""
        return self.config.array_height_mm

    @property
    def active_area_mm2(self) -> float:
        """Total silicon (chiplet) area on the wafer."""
        per_tile = self._compute.area_mm2 + self._memory.area_mm2
        return per_tile * self.config.tiles

    @property
    def array_area_mm2(self) -> float:
        """Footprint of the tile array including inter-chiplet gaps."""
        return self.width_mm * self.height_mm

    def distance_to_edge_mm(self, coord: Coord) -> float:
        """Distance from a tile centre to the nearest array edge.

        This is the electrical distance the tile's supply current must
        travel through the power planes under edge power delivery.
        """
        p = self.placement(coord)
        return min(
            p.center_x_mm,
            self.width_mm - p.center_x_mm,
            p.center_y_mm,
            self.height_mm - p.center_y_mm,
        )

    def distance_to_center_mm(self, coord: Coord) -> float:
        """Euclidean distance from a tile centre to the array centre."""
        p = self.placement(coord)
        dx = p.center_x_mm - self.width_mm / 2.0
        dy = p.center_y_mm - self.height_mm / 2.0
        return math.hypot(dx, dy)

    def max_edge_distance_mm(self) -> float:
        """The largest distance-to-edge over all tiles (the array centre).

        The paper notes centre chiplets can be ~70mm from the nearest
        edge capacitor on the full 32x32 array.
        """
        return max(
            self.distance_to_edge_mm(c) for c in self.config.tile_coords()
        )


def build_layout(config: SystemConfig | None = None) -> WaferLayout:
    """Convenience constructor used throughout the library."""
    return WaferLayout(config or SystemConfig())
