"""Monolithic vs chiplet-assembly waferscale yield (paper Section I).

The paper's motivation: a monolithic waferscale chip must reserve
redundant cores and links because *something* on 15,000mm^2 will be
defective, while a chiplet assembly starts from pre-tested known-good
dies and only risks bonding failures — which dual pillars drive to ~1
faulty chiplet per wafer, and which the dual network then tolerates.

This module quantifies both sides so the argument can be reproduced as a
bench (an ablation over defect density and redundancy).
"""

from __future__ import annotations

from dataclasses import dataclass

from math import comb

from ..config import SystemConfig
from ..errors import ConfigError
from ..geometry.chiplet import compute_chiplet, memory_chiplet
from ..io.bonding import chiplet_bond_yield
from .chiplet_yield import DefectModel, die_yield, known_good_die_rate


@dataclass(frozen=True)
class SystemYieldComparison:
    """Side-by-side yield of the two waferscale approaches."""

    monolithic_zero_redundancy: float   # all tiles must work
    monolithic_with_redundancy: float   # up to `redundant_tiles` may fail
    chiplet_assembly: float             # same tolerance, chiplet assembly
    redundant_tiles: int
    expected_faulty_chiplets: float

    @property
    def chiplet_advantage(self) -> float:
        """Yield ratio of chiplet assembly over redundant monolithic."""
        if self.monolithic_with_redundancy == 0.0:
            return float("inf")
        return self.chiplet_assembly / self.monolithic_with_redundancy


def _at_most_k_bad(n: int, p_good: float, k: int) -> float:
    """P(at most k of n Bernoulli(p_good) units fail)."""
    p_bad = 1.0 - p_good
    return sum(
        comb(n, i) * (p_bad**i) * (p_good ** (n - i)) for i in range(k + 1)
    )


def compare_monolithic_vs_chiplet(
    config: SystemConfig | None = None,
    defects: DefectModel | None = None,
    redundant_tiles: int = 16,
    test_coverage: float = 0.99,
) -> SystemYieldComparison:
    """Compute the comparison for one configuration.

    Monolithic: every tile is a region of one giant die; a tile is good
    when its silicon is defect-free (the negative-binomial model applied
    per-tile region).  Chiplet: a tile is good when both its pre-tested
    chiplets are truly good (KGD) and bond successfully.
    """
    cfg = config or SystemConfig()
    model = defects or DefectModel()
    if redundant_tiles < 0:
        raise ConfigError("redundant_tiles must be non-negative")

    tile_area = compute_chiplet(cfg).area_mm2 + memory_chiplet(cfg).area_mm2
    p_tile_mono = die_yield(tile_area, model)

    kgd_c = known_good_die_rate(
        compute_chiplet(cfg).area_mm2, test_coverage, model
    )
    kgd_m = known_good_die_rate(
        memory_chiplet(cfg).area_mm2, test_coverage, model
    )
    bond_c = chiplet_bond_yield(
        cfg.ios_per_compute_chiplet, cfg.pillar_bond_yield, cfg.pillars_per_pad
    )
    bond_m = chiplet_bond_yield(
        cfg.ios_per_memory_chiplet, cfg.pillar_bond_yield, cfg.pillars_per_pad
    )
    p_tile_chiplet = kgd_c * bond_c * kgd_m * bond_m

    return SystemYieldComparison(
        monolithic_zero_redundancy=p_tile_mono**cfg.tiles,
        monolithic_with_redundancy=_at_most_k_bad(
            cfg.tiles, p_tile_mono, redundant_tiles
        ),
        chiplet_assembly=_at_most_k_bad(cfg.tiles, p_tile_chiplet, redundant_tiles),
        redundant_tiles=redundant_tiles,
        expected_faulty_chiplets=cfg.tiles * (1.0 - p_tile_chiplet),
    )
