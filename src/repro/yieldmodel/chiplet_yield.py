"""Die-yield and known-good-die models (paper Sections I-II, V).

The chiplet approach's core economic claim: small pre-tested dies yield
far better than one monolithic waferscale device, and pre-bond testing
(Section VII-A) turns die yield into a *known-good-die* rate so that only
bonding failures remain at assembly.

Die yield follows the standard negative-binomial (clustered-defect) model

    Y = (1 + A * D0 / alpha) ^ -alpha

with area ``A`` in cm^2, defect density ``D0`` per cm^2 and clustering
parameter ``alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

# Mature-node (40nm-class) defect density and clustering defaults.
DEFAULT_D0_PER_CM2 = 0.25
DEFAULT_ALPHA = 2.0


@dataclass(frozen=True)
class DefectModel:
    """Negative-binomial defect model parameters."""

    d0_per_cm2: float = DEFAULT_D0_PER_CM2
    alpha: float = DEFAULT_ALPHA

    def __post_init__(self) -> None:
        if self.d0_per_cm2 < 0:
            raise ConfigError("defect density must be non-negative")
        if self.alpha <= 0:
            raise ConfigError("clustering alpha must be positive")


def die_yield(area_mm2: float, model: DefectModel | None = None) -> float:
    """Fabrication yield of one die of the given area."""
    if area_mm2 <= 0:
        raise ConfigError("die area must be positive")
    m = model or DefectModel()
    area_cm2 = area_mm2 / 100.0
    return (1.0 + area_cm2 * m.d0_per_cm2 / m.alpha) ** (-m.alpha)


def known_good_die_rate(
    area_mm2: float,
    test_coverage: float = 0.99,
    model: DefectModel | None = None,
) -> float:
    """Fraction of *shipped* dies that are actually good after pre-bond test.

    Pre-bond testing with coverage ``t`` rejects a fraction ``t`` of bad
    dies; the shipped population is good dies plus escapes:

        KGD = Y / (Y + (1 - Y) * (1 - t))
    """
    if not 0.0 <= test_coverage <= 1.0:
        raise ConfigError("test coverage must be in [0, 1]")
    y = die_yield(area_mm2, model)
    escapes = (1.0 - y) * (1.0 - test_coverage)
    return y / (y + escapes)


def assembled_system_yield(
    chiplet_count: int,
    kgd_rate: float,
    chiplet_bond_yield: float,
    tolerated_faulty: int = 0,
) -> float:
    """Probability an assembled wafer has at most ``tolerated_faulty`` bad tiles.

    Each placed chiplet is good iff it was truly good (KGD) *and* bonded
    (Section V's dual-pillar yield).  The dual-network fault tolerance of
    Section VI is what makes ``tolerated_faulty > 0`` acceptable — without
    it, waferscale assembly yield would be essentially zero.
    """
    if chiplet_count < 1:
        raise ConfigError("need at least one chiplet")
    if not 0.0 <= kgd_rate <= 1.0 or not 0.0 <= chiplet_bond_yield <= 1.0:
        raise ConfigError("rates must be probabilities")
    if tolerated_faulty < 0:
        raise ConfigError("tolerated_faulty must be non-negative")

    from math import comb

    p_good = kgd_rate * chiplet_bond_yield
    p_bad = 1.0 - p_good
    return sum(
        comb(chiplet_count, k) * (p_bad**k) * (p_good ** (chiplet_count - k))
        for k in range(tolerated_faulty + 1)
    )
