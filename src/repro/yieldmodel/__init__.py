"""Yield and cost analysis: KGD economics, monolithic vs chiplet wafers."""

from .chiplet_yield import (
    DefectModel,
    assembled_system_yield,
    die_yield,
    known_good_die_rate,
)
from .cost import (
    CostInputs,
    SystemCost,
    chiplet_system_cost,
    cost_comparison,
    monolithic_system_cost,
)
from .lots import BinPolicy, LotReport, pillar_redundancy_lot_comparison, simulate_lot
from .system_yield import (
    SystemYieldComparison,
    compare_monolithic_vs_chiplet,
)

__all__ = [
    "DefectModel",
    "assembled_system_yield",
    "die_yield",
    "known_good_die_rate",
    "CostInputs",
    "SystemCost",
    "chiplet_system_cost",
    "cost_comparison",
    "monolithic_system_cost",
    "BinPolicy",
    "LotReport",
    "pillar_redundancy_lot_comparison",
    "simulate_lot",
    "SystemYieldComparison",
    "compare_monolithic_vs_chiplet",
]
