"""Production-lot simulation: from chiplet wafers to sellable systems.

Extends the single-wafer yield math to manufacturing scale: simulate a
lot of waferscale assemblies, bin each by its post-assembly fault count
(full-spec / degraded / scrap — the binning the dual-network fault
tolerance and the single-layer fallback of Section VIII make possible),
and report sellable capacity and per-bin counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..errors import ConfigError
from ..io.bonding import chiplet_bond_yield


@dataclass(frozen=True)
class BinPolicy:
    """Fault thresholds for wafer binning."""

    full_spec_max_faults: int = 4       # sells as the headline product
    degraded_max_faults: int = 32       # sells as a reduced-tile SKU

    def __post_init__(self) -> None:
        if self.full_spec_max_faults < 0:
            raise ConfigError("full-spec threshold must be non-negative")
        if self.degraded_max_faults < self.full_spec_max_faults:
            raise ConfigError("degraded threshold below full-spec threshold")

    def bin_of(self, faults: int) -> str:
        """Bin label for one wafer's fault count."""
        if faults <= self.full_spec_max_faults:
            return "full-spec"
        if faults <= self.degraded_max_faults:
            return "degraded"
        return "scrap"


@dataclass
class LotReport:
    """Outcome of one simulated lot."""

    wafers: int
    bins: dict[str, int]
    fault_counts: list[int]
    tiles_per_wafer: int

    @property
    def sellable_fraction(self) -> float:
        """Wafers leaving the line as product."""
        sellable = self.bins.get("full-spec", 0) + self.bins.get("degraded", 0)
        return sellable / self.wafers if self.wafers else 0.0

    @property
    def mean_faults(self) -> float:
        """Average faulty tiles per wafer."""
        return float(np.mean(self.fault_counts)) if self.fault_counts else 0.0

    @property
    def sellable_tiles(self) -> int:
        """Healthy tiles across all sellable wafers (capacity shipped)."""
        policy_scrap = self.bins.get("scrap", 0)
        # Approximate: scrap wafers ship nothing; others ship healthy tiles.
        shipped = 0
        sellable_counts = sorted(self.fault_counts)[: self.wafers - policy_scrap]
        for faults in sellable_counts:
            shipped += self.tiles_per_wafer - faults
        return shipped


def _wafer_trial(ctx) -> int:
    """One lot trial: post-assembly fault count of a single wafer.

    Each wafer owns a private rng stream, so lot statistics are the same
    whether wafers are simulated serially or across a worker pool.
    """
    return int(ctx.rng.binomial(ctx.config.tiles, ctx.params["tile_fail_probability"]))


def simulate_lot(
    config: SystemConfig,
    wafers: int = 25,
    policy: BinPolicy | None = None,
    seed: int = 0,
    tile_fail_probability: float | None = None,
    *,
    workers: int = 1,
    cache=None,
    engine=None,
) -> LotReport:
    """Simulate one lot of assembled wafers.

    Per-tile failure combines both chiplets' bond yields (Section V);
    KGD escapes are negligible next to bonding at the default test
    coverage and are folded into an optional override probability.
    Wafers are independent trials on the experiment engine (``workers``,
    ``cache`` and ``engine`` as in :func:`repro.engine.ExperimentEngine`).
    """
    from ..engine import ExperimentEngine

    if wafers < 1:
        raise ConfigError("lot needs at least one wafer")
    bins_policy = policy or BinPolicy()

    if tile_fail_probability is None:
        y_c = chiplet_bond_yield(
            config.ios_per_compute_chiplet,
            config.pillar_bond_yield,
            config.pillars_per_pad,
        )
        y_m = chiplet_bond_yield(
            config.ios_per_memory_chiplet,
            config.pillar_bond_yield,
            config.pillars_per_pad,
        )
        tile_fail_probability = 1.0 - y_c * y_m
    if not 0.0 <= tile_fail_probability <= 1.0:
        raise ConfigError("tile failure probability must be in [0, 1]")

    eng = engine or ExperimentEngine(workers=workers, cache=cache)
    run = eng.run(
        _wafer_trial,
        experiment="yield.lot_wafers",
        trials=wafers,
        seed=seed,
        config=config,
        params={"tile_fail_probability": float(tile_fail_probability)},
    )
    fault_counts = [int(f) for f in run.values]
    bins: dict[str, int] = {"full-spec": 0, "degraded": 0, "scrap": 0}
    for faults in fault_counts:
        bins[bins_policy.bin_of(faults)] += 1
    return LotReport(
        wafers=wafers,
        bins=bins,
        fault_counts=fault_counts,
        tiles_per_wafer=config.tiles,
    )


def pillar_redundancy_lot_comparison(
    config: SystemConfig,
    wafers: int = 200,
    seed: int = 1,
    *,
    workers: int = 1,
    cache=None,
    engine=None,
) -> dict[int, LotReport]:
    """Lot outcomes at 1 vs 2 pillars per pad — Section V at lot scale.

    Each pillar variant derives an independent seed root ``(seed,
    pillars)``, so the two lots stay statistically independent while the
    whole comparison remains reproducible at any worker count.
    """
    out: dict[int, LotReport] = {}
    for pillars in (1, 2):
        y_c = chiplet_bond_yield(
            config.ios_per_compute_chiplet, config.pillar_bond_yield, pillars
        )
        y_m = chiplet_bond_yield(
            config.ios_per_memory_chiplet, config.pillar_bond_yield, pillars
        )
        out[pillars] = simulate_lot(
            config,
            wafers=wafers,
            seed=(seed, pillars),
            tile_fail_probability=1.0 - y_c * y_m,
            workers=workers,
            cache=cache,
            engine=engine,
        )
    return out
