"""Cost modelling: chiplet assembly vs monolithic waferscale economics.

The abstract's claim: chiplet-based waferscale integration "can provide
significant performance and cost benefits."  This model makes the cost
side checkable.  Cost per *good* system combines:

* chiplet silicon: dies per wafer x wafer cost, divided by KGD output
  (pre-bond test cost included per die);
* the Si-IF substrate wafer (a coarse-pitch passive process);
* assembly: per-chiplet placement/bonding plus amortised line time;
* yield: only a fraction of assembled wafers meet the fault budget.

The monolithic comparison charges a leading-edge wafer for every attempt
and survives only via heavy redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..errors import ConfigError
from ..geometry.chiplet import compute_chiplet, memory_chiplet
from ..io.bonding import chiplet_bond_yield
from .chiplet_yield import DefectModel, die_yield, known_good_die_rate
from .system_yield import _at_most_k_bad

WAFER_AREA_MM2 = 70_000.0           # ~300mm wafer usable area


@dataclass(frozen=True)
class CostInputs:
    """Economic assumptions (defaults are ballpark 40nm-era numbers)."""

    logic_wafer_cost: float = 3_000.0       # processed 40nm wafer
    siif_wafer_cost: float = 500.0          # passive 4-layer interconnect wafer
    per_die_test_cost: float = 0.05         # pre-bond probe test per die
    per_chiplet_assembly_cost: float = 0.02 # pick/place/bond per chiplet
    tolerated_faulty_tiles: int = 16

    def __post_init__(self) -> None:
        if min(
            self.logic_wafer_cost,
            self.siif_wafer_cost,
            self.per_die_test_cost,
            self.per_chiplet_assembly_cost,
        ) < 0:
            raise ConfigError("costs must be non-negative")
        if self.tolerated_faulty_tiles < 0:
            raise ConfigError("tolerated_faulty_tiles must be non-negative")


@dataclass(frozen=True)
class SystemCost:
    """Cost per good system under one approach."""

    approach: str
    silicon_cost: float
    substrate_cost: float
    test_cost: float
    assembly_cost: float
    assembled_yield: float

    @property
    def cost_per_attempt(self) -> float:
        """All-in cost of building one wafer system."""
        return (
            self.silicon_cost
            + self.substrate_cost
            + self.test_cost
            + self.assembly_cost
        )

    @property
    def cost_per_good_system(self) -> float:
        """Expected cost per system meeting the fault budget."""
        if self.assembled_yield <= 0:
            return float("inf")
        return self.cost_per_attempt / self.assembled_yield


def chiplet_system_cost(
    config: SystemConfig | None = None,
    inputs: CostInputs | None = None,
    defects: DefectModel | None = None,
    test_coverage: float = 0.99,
) -> SystemCost:
    """Cost per good chiplet-assembled waferscale system."""
    cfg = config or SystemConfig()
    econ = inputs or CostInputs()
    model = defects or DefectModel()

    compute = compute_chiplet(cfg)
    memory = memory_chiplet(cfg)

    def per_kgd_cost(area_mm2: float) -> float:
        dies_per_wafer = int(WAFER_AREA_MM2 / area_mm2)
        if dies_per_wafer < 1:
            raise ConfigError("chiplet larger than a wafer")
        per_die = econ.logic_wafer_cost / dies_per_wafer + econ.per_die_test_cost
        kgd_fraction = die_yield(area_mm2, model)   # dies passing pre-bond test
        return per_die / kgd_fraction

    silicon = cfg.tiles * (
        per_kgd_cost(compute.area_mm2) + per_kgd_cost(memory.area_mm2)
    )
    assembly = cfg.chiplets * econ.per_chiplet_assembly_cost
    test = 0.0      # per-die test folded into per_kgd_cost

    # Assembled-wafer yield: a tile works when both KGDs are truly good
    # and both bond.
    kgd_c = known_good_die_rate(compute.area_mm2, test_coverage, model)
    kgd_m = known_good_die_rate(memory.area_mm2, test_coverage, model)
    bond_c = chiplet_bond_yield(
        cfg.ios_per_compute_chiplet, cfg.pillar_bond_yield, cfg.pillars_per_pad
    )
    bond_m = chiplet_bond_yield(
        cfg.ios_per_memory_chiplet, cfg.pillar_bond_yield, cfg.pillars_per_pad
    )
    p_tile = kgd_c * bond_c * kgd_m * bond_m
    assembled_yield = _at_most_k_bad(cfg.tiles, p_tile, econ.tolerated_faulty_tiles)

    return SystemCost(
        approach="chiplet-assembly",
        silicon_cost=silicon,
        substrate_cost=econ.siif_wafer_cost,
        test_cost=test,
        assembly_cost=assembly,
        assembled_yield=assembled_yield,
    )


def monolithic_system_cost(
    config: SystemConfig | None = None,
    inputs: CostInputs | None = None,
    defects: DefectModel | None = None,
) -> SystemCost:
    """Cost per good monolithic waferscale system (with redundancy)."""
    cfg = config or SystemConfig()
    econ = inputs or CostInputs()
    model = defects or DefectModel()

    tile_area = compute_chiplet(cfg).area_mm2 + memory_chiplet(cfg).area_mm2
    p_tile = die_yield(tile_area, model)
    assembled_yield = _at_most_k_bad(
        cfg.tiles, p_tile, econ.tolerated_faulty_tiles
    )
    return SystemCost(
        approach="monolithic",
        silicon_cost=econ.logic_wafer_cost,     # one whole wafer per attempt
        substrate_cost=0.0,
        test_cost=0.0,
        assembly_cost=0.0,
        assembled_yield=assembled_yield,
    )


def cost_comparison(
    config: SystemConfig | None = None,
    inputs: CostInputs | None = None,
) -> dict[str, float]:
    """Cost-per-good-system comparison, the abstract's cost claim."""
    chiplet = chiplet_system_cost(config, inputs)
    monolithic = monolithic_system_cost(config, inputs)
    ratio = (
        monolithic.cost_per_good_system / chiplet.cost_per_good_system
        if chiplet.cost_per_good_system not in (0.0, float("inf"))
        else float("inf")
    )
    return {
        "chiplet_cost_per_good": chiplet.cost_per_good_system,
        "monolithic_cost_per_good": monolithic.cost_per_good_system,
        "chiplet_yield": chiplet.assembled_yield,
        "monolithic_yield": monolithic.assembled_yield,
        "monolithic_over_chiplet": ratio,
    }
