"""ASCII rendering of per-tile scalar fields (voltage, temperature, ...).

Dependency-free visualisation for terminals and logs: maps a
``(rows, cols)`` field onto a character ramp, with optional fault-map
overlay.  Used by the examples to show the Fig. 2 droop map and thermal
maps without any plotting library.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..noc.faults import FaultMap

RAMP = " .:-=+*#%@"


def render_field(
    field: np.ndarray,
    ramp: str = RAMP,
    legend: bool = True,
) -> str:
    """Render a 2-D field as ASCII, dark = low, dense = high."""
    array = np.asarray(field, dtype=float)
    if array.ndim != 2:
        raise ReproError("field must be 2-D")
    if not ramp:
        raise ReproError("ramp must be non-empty")
    lo, hi = float(array.min()), float(array.max())
    span = hi - lo
    if span == 0.0:
        normalized = np.zeros_like(array)
    else:
        normalized = (array - lo) / span
    indices = np.minimum(
        (normalized * len(ramp)).astype(int), len(ramp) - 1
    )
    lines = [
        "".join(ramp[i] for i in row)
        for row in indices
    ]
    if legend:
        lines.append(f"[{ramp[0]}]={lo:.3g}  [{ramp[-1]}]={hi:.3g}")
    return "\n".join(lines)


def render_fault_overlay(
    field: np.ndarray,
    fault_map: FaultMap,
    ramp: str = RAMP,
) -> str:
    """Render a field with faulty tiles marked ``X``."""
    array = np.asarray(field, dtype=float)
    cfg = fault_map.config
    if array.shape != (cfg.rows, cfg.cols):
        raise ReproError(
            f"field shape {array.shape} != grid {(cfg.rows, cfg.cols)}"
        )
    base = render_field(array, ramp=ramp, legend=False).splitlines()
    out = []
    for r, line in enumerate(base):
        chars = list(line)
        for c in range(cfg.cols):
            if fault_map.is_faulty((r, c)):
                chars[c] = "X"
        out.append("".join(chars))
    return "\n".join(out)
