"""Cross-cutting analysis: technology DSE and ASCII field rendering."""

from .dse import (
    DesignPoint,
    sweep_array_size,
    sweep_io_pitch,
    sweep_link_width,
)
from .render import render_field, render_fault_overlay

__all__ = [
    "DesignPoint",
    "sweep_array_size",
    "sweep_io_pitch",
    "sweep_link_width",
    "render_field",
    "render_fault_overlay",
]
