"""Technology design-space exploration over the waferscale models.

The library's payoff for a downstream user: vary one technology or
architecture knob and watch every derived quantity move consistently.
Three sweeps the paper's discussion invites:

* **array size** — how do power delivery, clock depth, bandwidth and
  load time scale from small arrays up to (and past) 32x32?
* **I/O pitch** — the Si-IF roadmap: finer pillars buy more I/Os per
  chiplet and wider links, but bonding-yield redundancy must keep up;
* **link width** — network bandwidth versus I/O budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import SystemConfig
from ..errors import ConfigError
from ..geometry.chiplet import compute_chiplet
from ..io.bonding import chiplet_bond_yield
from ..noc.topology import MeshTopology
from ..pdn.solver import PdnSolver
from ..dft.multichain import load_time_model, row_chains


@dataclass(frozen=True)
class DesignPoint:
    """Derived metrics of one configuration in a sweep."""

    label: str
    tiles: int
    cores: int
    min_delivered_v: float
    max_clock_hops: int
    network_bw_tbps: float
    load_time_min: float

    def as_row(self) -> tuple:
        """Row for tabular printing."""
        return (
            self.label,
            self.tiles,
            self.cores,
            f"{self.min_delivered_v:.2f}V",
            self.max_clock_hops,
            f"{self.network_bw_tbps:.2f}",
            f"{self.load_time_min:.1f}min",
        )


def _evaluate(config: SystemConfig, label: str) -> DesignPoint:
    solution = PdnSolver(config).solve()
    topo = MeshTopology(config)
    load = load_time_model(row_chains(config))
    # Deepest forwarding chain from a corner generator.
    max_hops = (config.rows - 1) + (config.cols - 1)
    return DesignPoint(
        label=label,
        tiles=config.tiles,
        cores=config.cores,
        min_delivered_v=solution.min_voltage,
        max_clock_hops=max_hops,
        network_bw_tbps=topo.aggregate_bandwidth_bytes_per_s() / 1e12,
        load_time_min=load.minutes,
    )


def sweep_array_size(sizes: list[int] | None = None) -> list[DesignPoint]:
    """Scale the tile array and watch edge delivery become the wall.

    The key shape: delivered centre voltage falls as the array grows
    (more current over longer plane paths); beyond ~32x32 the LDO input
    floor is violated and edge delivery stops working — the quantified
    version of the paper's closing remark about higher-power systems.
    """
    sizes = sizes or [8, 16, 24, 32, 40]
    points = []
    for size in sizes:
        cfg = SystemConfig(rows=size, cols=size)
        points.append(_evaluate(cfg, f"{size}x{size}"))
    return points


def sweep_io_pitch(pitches_um: list[float] | None = None) -> list[dict]:
    """Finer Cu-pillar pitch: more I/Os per chiplet, same bonding math.

    Reports the maximum perimeter I/Os at each pitch and the per-chiplet
    bond yield at 1 and 2 pillars per pad (more I/Os need redundancy even
    more badly).
    """
    pitches = pitches_um or [20.0, 10.0, 5.0, 2.0]
    chiplet = compute_chiplet()
    out: list[dict] = []
    for pitch in pitches:
        if pitch <= 0:
            raise ConfigError("pitch must be positive")
        max_ios = chiplet.max_perimeter_ios(pitch, pad_rows=2)
        out.append(
            {
                "pitch_um": pitch,
                "max_perimeter_ios": max_ios,
                "bond_yield_1_pillar": chiplet_bond_yield(max_ios, 0.9999, 1),
                "bond_yield_2_pillars": chiplet_bond_yield(max_ios, 0.9999, 2),
            }
        )
    return out


def sweep_link_width(widths: list[int] | None = None) -> list[dict]:
    """Wider mesh links: bandwidth vs compute-chiplet I/O budget."""
    from ..io.budget import compute_io_budget

    widths = widths or [100, 200, 400, 480]
    out: list[dict] = []
    for width in widths:
        # Scale the I/O budget with the link so wide links stay legal;
        # budget feasibility is reported, not assumed.
        ios_needed_guess = 4 * width + 420
        cfg = SystemConfig(
            link_width_bits=width,
            ios_per_compute_chiplet=max(2020, ios_needed_guess),
        )
        topo = MeshTopology(cfg)
        budget = compute_io_budget(cfg)
        out.append(
            {
                "link_width_bits": width,
                "network_ios": budget.network_ios,
                "total_ios": budget.total,
                "fits_perimeter": budget.fits_perimeter(cfg.io_pad_pitch_um),
                "link_bw_gbps": topo.link_bandwidth_bps() / 1e9,
            }
        )
    return out
