"""Tests for the parallel experiment engine (repro.engine)."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.clock.resiliency import monte_carlo_clock_coverage
from repro.engine import (
    ExperimentEngine,
    ResultCache,
    ThroughputObserver,
    cache_key,
    canonicalize,
    spawn_trial_seeds,
)
from repro.errors import ReproError
from repro.flow.characterize import characterize
from repro.noc.connectivity import monte_carlo_disconnection
from repro.yieldmodel.lots import pillar_redundancy_lot_comparison, simulate_lot

CFG = SystemConfig(rows=8, cols=8)


def _draw_trial(ctx):
    """Module-level trial fn (worker processes must be able to pickle it)."""
    return float(ctx.rng.random()) + ctx.params.get("offset", 0.0)


def _index_trial(ctx):
    return ctx.index


class TestSeeding:
    def test_spawn_is_deterministic(self):
        a = spawn_trial_seeds(42, 8)
        b = spawn_trial_seeds(42, 8)
        for sa, sb in zip(a, b):
            assert np.random.default_rng(sa).random() == np.random.default_rng(sb).random()

    def test_trials_get_distinct_streams(self):
        seeds = spawn_trial_seeds(0, 16)
        draws = {np.random.default_rng(s).random() for s in seeds}
        assert len(draws) == 16

    def test_tuple_seeds_are_independent_roots(self):
        a = spawn_trial_seeds((3, 1), 4)
        b = spawn_trial_seeds((3, 2), 4)
        assert np.random.default_rng(a[0]).random() != np.random.default_rng(b[0]).random()


class TestEngineDeterminism:
    def test_serial_and_parallel_values_identical(self):
        runs = {}
        for workers in (1, 4):
            runs[workers] = ExperimentEngine(workers=workers).run(
                _draw_trial, experiment="t", trials=24, seed=5
            )
        assert runs[1].values == runs[4].values
        assert not runs[1].from_cache and not runs[4].from_cache

    def test_values_ordered_by_trial_index(self):
        run = ExperimentEngine(workers=3, chunk_size=2).run(
            _index_trial, experiment="t", trials=11, seed=0
        )
        assert run.values == list(range(11))

    def test_different_seeds_differ(self):
        a = ExperimentEngine().run(_draw_trial, experiment="t", trials=4, seed=0)
        b = ExperimentEngine().run(_draw_trial, experiment="t", trials=4, seed=1)
        assert a.values != b.values

    def test_zero_trials_rejected(self):
        with pytest.raises(ReproError):
            ExperimentEngine().run(_draw_trial, experiment="t", trials=0)


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(cache=cache)
        first = engine.run(_draw_trial, experiment="t", trials=6, seed=1)
        second = engine.run(_draw_trial, experiment="t", trials=6, seed=1)
        assert not first.from_cache
        assert second.from_cache
        assert second.values == first.values
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_identity_changes_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(cache=cache)
        engine.run(_draw_trial, experiment="t", trials=6, seed=1)
        for kwargs in (
            {"trials": 7, "seed": 1},
            {"trials": 6, "seed": 2},
            {"trials": 6, "seed": 1, "params": {"offset": 1.0}},
        ):
            run = engine.run(_draw_trial, experiment="t", **kwargs)
            assert not run.from_cache
        other = engine.run(_draw_trial, experiment="other", trials=6, seed=1)
        assert not other.from_cache

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(cache=cache)
        engine.run(_draw_trial, experiment="t", trials=2, seed=0)
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_key_includes_config(self):
        a = cache_key("e", CFG, None, 0, 4)
        b = cache_key("e", SystemConfig(rows=4, cols=4), None, 0, 4)
        assert a != b
        assert a == cache_key("e", SystemConfig(rows=8, cols=8), None, 0, 4)

    def test_canonicalize_rejects_unkeyable(self):
        with pytest.raises(ReproError):
            canonicalize(object())

    def test_canonicalize_handles_numpy(self):
        canon = canonicalize({"a": np.float64(1.5), "b": np.arange(3)})
        assert canon["a"] == 1.5
        assert "__ndarray__" in canon["b"]


class TestObservability:
    def test_throughput_observer_counts_trials(self):
        observer = ThroughputObserver()
        engine = ExperimentEngine(observers=[observer])
        engine.run(_draw_trial, experiment="t", trials=9, seed=0)
        assert observer.total_trials == 9
        record = observer.runs[-1]
        assert record.completed == 9
        assert record.trials_per_second > 0
        assert record.mean_trial_s >= 0

    def test_cache_hit_runs_no_trials(self, tmp_path):
        observer = ThroughputObserver()
        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(cache=cache, observers=[observer])
        engine.run(_draw_trial, experiment="t", trials=5, seed=0)
        engine.run(_draw_trial, experiment="t", trials=5, seed=0)
        assert observer.total_trials == 5
        assert observer.runs[-1].from_cache

    def test_progress_callback_reaches_total(self):
        seen = []
        ExperimentEngine().run(
            _draw_trial,
            experiment="t",
            trials=7,
            seed=0,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (7, 7)

    def test_describe_computed_run(self):
        observer = ThroughputObserver()
        ExperimentEngine(observers=[observer]).run(
            _draw_trial, experiment="t", trials=4, seed=0
        )
        record = observer.runs[-1]
        assert not record.from_cache
        text = record.describe()
        assert "4/4 trials" in text
        assert "ms/trial" in text
        assert "cache" not in text

    def test_describe_cached_run_is_explicit(self, tmp_path):
        observer = ThroughputObserver()
        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(cache=cache, observers=[observer])
        engine.run(_draw_trial, experiment="t", trials=5, seed=0)
        engine.run(_draw_trial, experiment="t", trials=5, seed=0)
        cached = observer.runs[-1]
        assert cached.from_cache
        assert cached.mean_trial_s == 0.0
        text = cached.describe()
        assert "served from cache" in text
        assert "no trials computed" in text
        assert "ms/trial" not in text
        # Both renderings appear in the aggregate summary.
        summary = observer.summary()
        assert "ms/trial" in summary and "served from cache" in summary


class TestPortedExperiments:
    """The four paper studies produce identical statistics at any worker count."""

    def test_fig6_worker_invariance(self):
        kwargs = {"fault_counts": [1, 3], "trials": 8, "seed": 2}
        serial = monte_carlo_disconnection(CFG, **kwargs, workers=1)
        parallel = monte_carlo_disconnection(CFG, **kwargs, workers=4)
        assert [(s.mean_single_pct, s.mean_dual_pct, s.std_single_pct) for s in serial] == [
            (s.mean_single_pct, s.mean_dual_pct, s.std_single_pct) for s in parallel
        ]

    def test_lot_worker_invariance(self):
        serial = pillar_redundancy_lot_comparison(CFG, wafers=12, seed=3, workers=1)
        parallel = pillar_redundancy_lot_comparison(CFG, wafers=12, seed=3, workers=3)
        for pillars in (1, 2):
            assert serial[pillars].fault_counts == parallel[pillars].fault_counts
            assert serial[pillars].bins == parallel[pillars].bins

    def test_characterize_worker_invariance(self):
        serial = characterize(CFG, seed=4, workers=1)
        parallel = characterize(CFG, seed=4, workers=2)
        np.testing.assert_array_equal(serial.fmax_hz, parallel.fmax_hz)
        np.testing.assert_array_equal(serial.regulated_v, parallel.regulated_v)

    def test_clock_coverage_worker_invariance(self):
        kwargs = {"fault_counts": [2, 5], "trials": 6, "seed": 1}
        serial = monte_carlo_clock_coverage(CFG, **kwargs, workers=1)
        parallel = monte_carlo_clock_coverage(CFG, **kwargs, workers=4)
        assert [(s.mean_coverage, s.min_coverage, s.mean_unreachable) for s in serial] == [
            (s.mean_coverage, s.min_coverage, s.mean_unreachable) for s in parallel
        ]

    def test_fig6_cache_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kwargs = {"fault_counts": [2], "trials": 4, "seed": 0, "cache": cache}
        first = monte_carlo_disconnection(CFG, **kwargs)
        hits_before = cache.hits
        second = monte_carlo_disconnection(CFG, **kwargs)
        assert cache.hits == hits_before + 1
        assert first[0].mean_single_pct == second[0].mean_single_pct

    def test_simulate_lot_shared_engine(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path / "cache"))
        a = simulate_lot(CFG, wafers=10, seed=1, engine=engine)
        b = simulate_lot(CFG, wafers=10, seed=1, engine=engine)
        assert a.fault_counts == b.fault_counts
        assert engine.cache.hits == 1
