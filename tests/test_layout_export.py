"""Tests for the substrate layout database and text export."""

import io

import pytest

from repro.config import SystemConfig
from repro.errors import SubstrateError
from repro.substrate.export import (
    export_to_file,
    import_from_file,
    read_layout,
    write_layout,
)
from repro.substrate.layout import (
    LayoutDatabase,
    Rect,
    build_layout_database,
    geometric_drc,
    wire_to_rect,
)
from repro.substrate.netlist import extract_netlist
from repro.substrate.router import SubstrateRouter


@pytest.fixture(scope="module")
def routed():
    cfg = SystemConfig(rows=3, cols=3)
    router = SubstrateRouter(cfg)
    return router.route(extract_netlist(cfg))


@pytest.fixture(scope="module")
def database(routed):
    return build_layout_database(routed)


class TestRect:
    def test_area_and_dims(self):
        rect = Rect(layer="SIG1", x0=0, y0=0, x1=2, y1=3)
        assert rect.width == 2 and rect.height == 3
        assert rect.area_mm2 == 6

    def test_degenerate_rejected(self):
        with pytest.raises(SubstrateError):
            Rect(layer="SIG1", x0=1, y0=0, x1=0, y1=1)

    def test_intersection(self):
        a = Rect(layer="SIG1", x0=0, y0=0, x1=2, y1=2)
        b = Rect(layer="SIG1", x0=1, y0=1, x1=3, y1=3)
        c = Rect(layer="SIG1", x0=2, y0=2, x1=4, y1=4)
        assert a.intersects(b)
        assert not a.intersects(c)      # touching edges do not overlap

    def test_point_containment(self):
        rect = Rect(layer="SIG1", x0=0, y0=0, x1=1, y1=1)
        assert rect.contains_point(0.5, 0.5)
        assert rect.contains_point(1.0, 1.0)
        assert not rect.contains_point(1.1, 0.5)


class TestWireToRect:
    def test_horizontal_wire(self, routed):
        wire = next(w for w in routed.wires if w.y0_mm == w.y1_mm)
        rect = wire_to_rect(wire)
        assert rect.height == pytest.approx(wire.width_um / 1000.0)
        assert rect.net == wire.net.name

    def test_vertical_wire(self, routed):
        wire = next(w for w in routed.wires if w.x0_mm == w.x1_mm)
        rect = wire_to_rect(wire)
        assert rect.width == pytest.approx(wire.width_um / 1000.0)


class TestLayoutDatabase:
    def test_all_wires_materialised(self, routed, database):
        wire_rects = [r for r in database.rects if r.layer.startswith("SIG")]
        assert len(wire_rects) == routed.routed_count

    def test_chiplet_keepouts_present(self, database):
        chiplets = [r for r in database.rects if r.layer == "CHIPLET"]
        assert len(chiplets) == 2 * 9    # two chiplets per tile, 3x3 tiles

    def test_point_query_hits_chiplet(self, database):
        hits = database.query_point("CHIPLET", 1.0, 1.0)
        assert hits
        assert all(r.purpose == "keepout" for r in hits)

    def test_region_query_consistent_with_scan(self, database):
        window = ("SIG1", 0.0, 0.0, 4.0, 4.0)
        fast = {id(r) for r in database.query_region(*window)}
        probe = Rect(layer="SIG1", x0=0, y0=0, x1=4, y1=4)
        slow = {
            id(r)
            for r in database.rects
            if r.layer == "SIG1" and r.intersects(probe)
        }
        assert fast == slow

    def test_layer_area_positive(self, database):
        assert database.layer_area_mm2("SIG1") > 0

    def test_net_rects(self, routed, database):
        name = routed.wires[0].net.name
        assert database.net_rects(name)

    def test_geometric_drc_clean(self, database):
        assert geometric_drc(database) == []

    def test_geometric_drc_catches_collision(self, database):
        dirty = LayoutDatabase()
        dirty.add(Rect(layer="SIG1", x0=0, y0=0, x1=1, y1=0.002, net="a"))
        dirty.add(Rect(layer="SIG1", x0=0, y0=0.0025, x1=1, y1=0.004, net="b"))
        violations = geometric_drc(dirty, min_space_um=2.0)
        assert ("a", "b") in violations

    def test_bad_bucket(self):
        with pytest.raises(SubstrateError):
            LayoutDatabase(bucket_mm=0)


class TestExport:
    def test_roundtrip(self, database):
        stream = io.StringIO()
        summary = write_layout(database, stream)
        assert summary.rect_count == len(database)
        stream.seek(0)
        loaded = read_layout(stream)
        assert len(loaded) == len(database)
        assert loaded.layers() == database.layers()
        # Spot-check geometric fidelity.
        orig = database.rects[0]
        again = loaded.rects[0]
        assert (orig.x0, orig.y0, orig.x1, orig.y1) == pytest.approx(
            (again.x0, again.y0, again.x1, again.y1)
        )
        assert orig.net == again.net

    def test_file_roundtrip(self, database, tmp_path):
        path = str(tmp_path / "wafer.layout")
        export_to_file(database, path)
        loaded = import_from_file(path)
        assert len(loaded) == len(database)

    def test_empty_export_rejected(self):
        with pytest.raises(SubstrateError):
            write_layout(LayoutDatabase(), io.StringIO())

    def test_bad_header_rejected(self):
        with pytest.raises(SubstrateError):
            read_layout(io.StringIO("NOT-A-LAYOUT\n"))

    def test_truncated_stream_rejected(self, database):
        stream = io.StringIO()
        write_layout(database, stream)
        text = stream.getvalue().rsplit("END", 1)[0]
        with pytest.raises(SubstrateError):
            read_layout(io.StringIO(text))

    def test_malformed_record_rejected(self):
        text = (
            "WAFERSCALE-LAYOUT 1\nUNITS MM\nDIEAREA 0 0 1 1\n"
            "RECT SIG1 wire n1 0 0 1\nEND\n"
        )
        with pytest.raises(SubstrateError):
            read_layout(io.StringIO(text))
