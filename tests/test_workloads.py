"""Tests for repro.workloads (graphs, BFS, SSSP, traffic) on the emulator."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.system import WaferscaleSystem
from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.noc.faults import FaultMap, random_fault_map
from repro.workloads.bfs import DistributedBfs, reference_bfs
from repro.workloads.graphs import (
    grid_graph,
    partition_graph,
    random_graph,
    rmat_graph,
)
from repro.workloads.sssp import DistributedSssp, reference_sssp
from repro.workloads.traffic import TrafficPattern, destination_for, generate_traffic

import numpy as np


@pytest.fixture(scope="module")
def system44():
    return WaferscaleSystem(SystemConfig(rows=4, cols=4))


class TestGraphGenerators:
    def test_random_graph_connected(self):
        for seed in range(5):
            graph = random_graph(100, 3.0, seed=seed)
            assert nx.is_connected(graph)

    def test_weighted_graph_has_weights(self):
        graph = random_graph(50, 4.0, weighted=True)
        for _, _, data in graph.edges(data=True):
            assert 1 <= data["weight"] <= 15

    def test_grid_graph_shape(self):
        graph = grid_graph(5)
        assert graph.number_of_nodes() == 25
        assert nx.is_connected(graph)

    def test_rmat_connected_and_skewed(self):
        graph = rmat_graph(8, edge_factor=8, seed=1)
        assert nx.is_connected(graph)
        degrees = sorted((d for _, d in graph.degree()), reverse=True)
        # Power-law-ish: the top node has far more than the median degree.
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            random_graph(0)
        with pytest.raises(WorkloadError):
            rmat_graph(0)
        with pytest.raises(WorkloadError):
            grid_graph(0)

    def test_partition_covers_all_vertices(self, system44):
        graph = random_graph(97, 4.0)
        partition = partition_graph(graph, system44.healthy_coords())
        assert set(partition.owner) == set(graph.nodes)
        assert partition.balance > 0.5


class TestBfs:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, system44, seed):
        graph = random_graph(150, 4.0, seed=seed)
        result = DistributedBfs(system44, graph).run(source=0)
        assert result.distance == reference_bfs(graph, 0)

    def test_grid_graph_bfs(self, system44):
        graph = grid_graph(8)
        result = DistributedBfs(system44, graph).run(source=0)
        assert result.distance == reference_bfs(graph, 0)
        assert result.reached() == 64

    def test_rmat_bfs(self, system44):
        graph = rmat_graph(7, seed=2)
        result = DistributedBfs(system44, graph).run(source=0)
        assert result.distance == reference_bfs(graph, 0)

    def test_supersteps_track_eccentricity(self, system44):
        graph = grid_graph(6)
        result = DistributedBfs(system44, graph).run(source=0)
        # Frontier BFS needs ~one superstep per BFS level (+setup/drain).
        ecc = max(result.distance.values())
        assert ecc <= result.stats.supersteps <= ecc + 3

    def test_runs_on_faulty_wafer(self):
        cfg = SystemConfig(rows=4, cols=4)
        fmap = FaultMap(cfg, frozenset({(1, 2), (2, 1)}))
        system = WaferscaleSystem(cfg, fmap)
        graph = random_graph(120, 4.0, seed=9)
        result = DistributedBfs(system, graph).run(source=0)
        assert result.distance == reference_bfs(graph, 0)

    def test_bad_source_rejected(self, system44):
        graph = random_graph(10, 2.0)
        with pytest.raises(WorkloadError):
            DistributedBfs(system44, graph).run(source=999)

    @given(seed=st.integers(0, 100), nodes=st.integers(20, 120))
    @settings(max_examples=10, deadline=None)
    def test_bfs_correct_property(self, seed, nodes):
        system = WaferscaleSystem(SystemConfig(rows=3, cols=3))
        graph = random_graph(nodes, 3.0, seed=seed)
        result = DistributedBfs(system, graph).run(source=0)
        assert result.distance == reference_bfs(graph, 0)


class TestSssp:
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_matches_dijkstra(self, system44, seed):
        graph = random_graph(120, 4.0, seed=seed, weighted=True)
        result = DistributedSssp(system44, graph).run(source=0)
        reference = reference_sssp(graph, 0)
        assert set(result.distance) == set(reference)
        for node, dist in reference.items():
            assert result.distance[node] == pytest.approx(dist)

    def test_unweighted_equals_bfs(self, system44):
        graph = random_graph(80, 3.0, seed=4)
        sssp = DistributedSssp(system44, graph).run(source=0)
        bfs = DistributedBfs(system44, graph).run(source=0)
        assert {k: int(v) for k, v in sssp.distance.items()} == bfs.distance

    def test_negative_weight_rejected(self, system44):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=-2)
        with pytest.raises(WorkloadError):
            DistributedSssp(system44, graph)

    def test_faulty_wafer_sssp(self):
        cfg = SystemConfig(rows=4, cols=4)
        system = WaferscaleSystem(cfg, random_fault_map(cfg, 2, rng=5))
        graph = random_graph(100, 4.0, seed=6, weighted=True)
        result = DistributedSssp(system, graph).run(source=0)
        reference = reference_sssp(graph, 0)
        for node, dist in reference.items():
            assert result.distance[node] == pytest.approx(dist)


class TestTraffic:
    def test_uniform_rate(self):
        cfg = SystemConfig(rows=8, cols=8)
        traffic = generate_traffic(cfg, TrafficPattern.UNIFORM, 0.1, 100, seed=0)
        expected = 64 * 100 * 0.1
        assert expected * 0.6 < len(traffic) < expected * 1.4

    def test_transpose_destination(self):
        cfg = SystemConfig(rows=8, cols=8)
        rng = np.random.default_rng(0)
        assert destination_for((2, 5), TrafficPattern.TRANSPOSE, cfg, rng) == (5, 2)

    def test_hotspot_single_destination(self):
        cfg = SystemConfig(rows=8, cols=8)
        traffic = generate_traffic(
            cfg, TrafficPattern.HOTSPOT, 0.1, 20, seed=1, hotspot=(3, 3)
        )
        assert all(p.dst == (3, 3) for _, p in traffic)

    def test_neighbor_wraps(self):
        cfg = SystemConfig(rows=4, cols=4)
        rng = np.random.default_rng(0)
        assert destination_for((0, 3), TrafficPattern.NEIGHBOR, cfg, rng) == (0, 0)

    def test_bit_reversal_in_bounds(self):
        cfg = SystemConfig(rows=8, cols=8)
        rng = np.random.default_rng(0)
        for coord in cfg.tile_coords():
            dst = destination_for(coord, TrafficPattern.BIT_REVERSAL, cfg, rng)
            cfg.validate_coord(dst)

    def test_invalid_rate(self):
        cfg = SystemConfig(rows=4, cols=4)
        with pytest.raises(WorkloadError):
            generate_traffic(cfg, TrafficPattern.UNIFORM, 1.5, 10)
