"""Tests for the CLI and the characterization (shmoo) module."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.config import SystemConfig
from repro.errors import ReproError
from repro.flow.characterize import (
    ShmooResult,
    characterization_report,
    characterize,
)


class TestCharacterize:
    @pytest.fixture(scope="class")
    def result(self):
        return characterize(SystemConfig(rows=8, cols=8), seed=1)

    def test_all_tiles_pass_nominal(self, result):
        assert result.passing_fraction(300e6) == 1.0

    def test_system_fmax_between_nominal_and_pll_cap(self, result):
        assert 300e6 <= result.system_fmax_hz <= 400e6

    def test_regulated_voltage_in_band(self, result):
        assert (result.regulated_v >= 1.0).all()
        assert (result.regulated_v <= 1.2).all()

    def test_shmoo_monotone(self, result):
        freqs = [250e6, 300e6, 350e6, 400e6, 450e6]
        fractions = [frac for _, frac in result.shmoo_row(freqs)]
        assert fractions == sorted(fractions, reverse=True)

    def test_bins_partition_tiles(self, result):
        counts = result.bin_counts([300e6, 350e6, 400e6])
        assert sum(counts.values()) == 64

    def test_zero_sigma_deterministic(self):
        a = characterize(SystemConfig(rows=4, cols=4), process_sigma=0.0)
        b = characterize(SystemConfig(rows=4, cols=4), process_sigma=0.0, seed=9)
        np.testing.assert_allclose(a.fmax_hz, b.fmax_hz)

    def test_spread_increases_with_sigma(self):
        tight = characterize(SystemConfig(rows=8, cols=8), process_sigma=0.01)
        loose = characterize(SystemConfig(rows=8, cols=8), process_sigma=0.05)
        assert loose.fmax_hz.std() > tight.fmax_hz.std()

    def test_report_mentions_key_numbers(self, result):
        report = characterization_report(result)
        assert "300MHz" in report
        assert "lock-step" in report

    def test_invalid_inputs(self, result):
        with pytest.raises(ReproError):
            characterize(SystemConfig(rows=2, cols=2), process_sigma=-1.0)
        with pytest.raises(ReproError):
            result.passing_fraction(0)


class TestCli:
    def test_parser_lists_all_commands(self):
        parser = build_parser()
        commands = {"table1", "flow", "droop", "fig6", "clock",
                    "loadtime", "yield", "shmoo"}
        # Probe by parsing each command.
        for command in commands:
            args = parser.parse_args([command, "--rows", "4", "--cols", "4"])
            assert args.command == command

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "14336" in out

    def test_loadtime(self, capsys):
        assert main(["loadtime"]) == 0
        out = capsys.readouterr().out
        assert "32x" in out

    def test_yield(self, capsys):
        assert main(["yield", "--rows", "8", "--cols", "8"]) == 0
        out = capsys.readouterr().out
        assert "pillar" in out

    def test_droop_small(self, capsys):
        assert main(["droop", "--rows", "6", "--cols", "6"]) == 0
        out = capsys.readouterr().out
        assert "edge" in out

    def test_fig6_small(self, capsys):
        code = main([
            "fig6", "--rows", "8", "--cols", "8",
            "--trials", "3", "--max-faults", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "single" in out

    def test_clock_with_faults(self, capsys):
        code = main([
            "clock", "--rows", "6", "--cols", "6", "--faults", "3", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage" in out

    def test_flow_small(self, capsys):
        code = main(["flow", "--rows", "4", "--cols", "4", "--trials", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out

    def test_shmoo(self, capsys):
        assert main(["shmoo", "--rows", "4", "--cols", "4"]) == 0
        out = capsys.readouterr().out
        assert "fmax" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
