"""Tests for the engine's batch dispatch and variance-adaptive sampling.

``batch_fn`` routes whole worker chunks through one callable (the Fig. 6
chunk kernel and ``emulate_batch`` ride on it); ``adaptive=CIStop(...)``
turns ``trials`` into a cap with a bootstrap-CI stopping rule.  Both
must preserve the engine's core contract: results are a pure function of
``(fn, params, seed)`` — independent of worker count and dispatch order.
"""

import numpy as np
import pytest

from repro.engine import CIStop, ExperimentEngine, ResultCache
from repro.errors import ReproError


def _draw_trial(ctx):
    return float(ctx.rng.normal())


def _draw_chunk(contexts):
    return [float(ctx.rng.normal()) for ctx in contexts]


def _offset_trial(ctx):
    return float(10.0 + ctx.rng.normal())


def _offset_chunk(contexts):
    return [float(10.0 + ctx.rng.normal()) for ctx in contexts]


def _bad_chunk(contexts):
    return [0.0] * (len(contexts) + 1)


def _pair_trial(ctx):
    return (float(ctx.rng.normal()), ctx.index)


def _first_element(value):
    return value[0]


class TestBatchFn:
    def test_batch_fn_matches_per_trial_dispatch(self):
        base = ExperimentEngine().run(
            _draw_trial, experiment="t", trials=12, seed=5
        )
        for workers in (1, 3):
            batched = ExperimentEngine(workers=workers, chunk_size=4).run(
                _draw_trial,
                experiment="t",
                trials=12,
                seed=5,
                batch_fn=_draw_chunk,
            )
            assert batched.values == base.values

    def test_batch_fn_length_mismatch_is_an_error(self):
        with pytest.raises(ReproError, match="batch_fn"):
            ExperimentEngine().run(
                _draw_trial,
                experiment="t",
                trials=4,
                seed=0,
                batch_fn=_bad_chunk,
            )


class TestCIStopRule:
    def test_validation(self):
        for bad in (
            CIStop(rel_halfwidth=0.0),
            CIStop(confidence=1.0),
            CIStop(min_trials=1),
            CIStop(block=0),
            CIStop(resamples=2),
        ):
            with pytest.raises(ReproError):
                bad.validate()
        CIStop().validate()

    def test_checkpoint_schedule(self):
        rule = CIStop(min_trials=16, block=8)
        assert rule.next_checkpoint(0, 100) == 16
        assert rule.next_checkpoint(16, 100) == 24
        assert rule.next_checkpoint(16, 20) == 20

    def test_halfwidth_is_deterministic(self):
        rule = CIStop()
        stats = np.random.default_rng(0).normal(size=32)
        assert rule.halfwidth(stats) == rule.halfwidth(stats)

    def test_zero_mean_only_stops_on_zero_width(self):
        rule = CIStop(min_trials=2)
        assert rule.satisfied([0.0] * 32)
        assert not rule.satisfied([1.0, -1.0] * 16)

    def test_cache_token_covers_statistic_identity(self):
        assert CIStop().cache_token() != CIStop(seed=1).cache_token()
        assert (
            CIStop().cache_token()
            != CIStop(statistic=_first_element).cache_token()
        )
        assert "_first_element" in CIStop(statistic=_first_element).cache_token()


class TestAdaptiveRuns:
    def test_worker_count_invariant_stop(self):
        rule = CIStop(rel_halfwidth=0.2, min_trials=16, block=8)
        runs = {}
        for workers in (1, 4):
            runs[workers] = ExperimentEngine(workers=workers).run(
                _offset_trial,
                experiment="t",
                trials=500,
                seed=2,
                adaptive=rule,
            )
        assert runs[1].trials == runs[4].trials
        assert runs[1].values == runs[4].values
        assert runs[1].trials < 500
        assert runs[1].requested_trials == 500

    def test_adaptive_values_are_a_prefix_of_the_fixed_run(self):
        rule = CIStop(rel_halfwidth=0.2, min_trials=16, block=8)
        adaptive = ExperimentEngine().run(
            _offset_trial, experiment="t", trials=500, seed=2, adaptive=rule
        )
        fixed = ExperimentEngine().run(
            _offset_trial, experiment="t", trials=500, seed=2
        )
        assert adaptive.values == fixed.values[: adaptive.trials]

    def test_adaptive_with_batch_fn(self):
        rule = CIStop(rel_halfwidth=0.2, min_trials=16, block=8)
        plain = ExperimentEngine().run(
            _offset_trial, experiment="t", trials=500, seed=2, adaptive=rule
        )
        batched = ExperimentEngine(workers=3).run(
            _offset_trial,
            experiment="t",
            trials=500,
            seed=2,
            adaptive=rule,
            batch_fn=_offset_chunk,
        )
        assert batched.values == plain.values

    def test_custom_statistic(self):
        rule = CIStop(
            rel_halfwidth=0.2, min_trials=16, block=8,
            statistic=_first_element,
        )
        run = ExperimentEngine().run(
            _pair_trial, experiment="t", trials=400, seed=3, adaptive=rule
        )
        assert run.trials <= 400
        assert all(index == i for i, (_, index) in enumerate(run.values))

    def test_never_stops_before_min_trials(self):
        rule = CIStop(rel_halfwidth=10.0, min_trials=16, block=8)
        run = ExperimentEngine().run(
            _draw_trial, experiment="t", trials=100, seed=0, adaptive=rule
        )
        assert run.trials == 16

    def test_cap_reached_when_rule_never_satisfies(self):
        rule = CIStop(rel_halfwidth=1e-12, min_trials=4, block=4)
        run = ExperimentEngine().run(
            _draw_trial, experiment="t", trials=12, seed=0, adaptive=rule
        )
        assert run.trials == 12

    def test_invalid_rule_rejected(self):
        with pytest.raises(ReproError, match="min_trials"):
            ExperimentEngine().run(
                _draw_trial,
                experiment="t",
                trials=8,
                seed=0,
                adaptive=CIStop(min_trials=1),
            )

    def test_adaptive_runs_cache_separately(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(cache=cache)
        loose = CIStop(rel_halfwidth=0.05, min_trials=16, block=8)
        tight = CIStop(rel_halfwidth=0.005, min_trials=16, block=8)
        a = engine.run(
            _offset_trial, experiment="t", trials=400, seed=2, adaptive=loose
        )
        b = engine.run(
            _offset_trial, experiment="t", trials=400, seed=2, adaptive=loose
        )
        c = engine.run(
            _offset_trial, experiment="t", trials=400, seed=2, adaptive=tight
        )
        assert b.from_cache and b.values == a.values
        assert not c.from_cache
        assert c.trials > a.trials
        # A fixed-count run must not collide with the adaptive entry.
        fixed = engine.run(_offset_trial, experiment="t", trials=400, seed=2)
        assert fixed.trials == 400
