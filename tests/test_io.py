"""Tests for repro.io (cells, ESD, bonding yield, budgets)."""

import pytest
from hypothesis import given, settings

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.io.bonding import (
    BondingYieldModel,
    chiplet_bond_yield,
    expected_faulty_chiplets,
    pad_yield,
    paper_yield_comparison,
)
from repro.io.budget import compute_io_budget, memory_io_budget, system_io_totals
from repro.io.cell import IoCellModel
from repro.io.esd import baredie_esd_spec, esd_area_saving_factor, packaged_esd_spec
from repro.verify.strategies import io_counts, pillar_yields


class TestBondingYieldSection5:
    """The Section V headline numbers."""

    def test_single_pillar_chiplet_yield_near_81pct(self):
        y = chiplet_bond_yield(2020, 0.9999, 1)
        assert y == pytest.approx(0.8146, abs=0.01)

    def test_dual_pillar_chiplet_yield_99_998(self):
        y = chiplet_bond_yield(2020, 0.9999, 2)
        assert y == pytest.approx(0.99998, abs=1e-5)

    def test_expected_faulty_single_pillar_hundreds(self):
        n = expected_faulty_chiplets(2048, 2020, 0.9999, 1)
        assert n == pytest.approx(380, rel=0.05)

    def test_expected_faulty_dual_pillar_about_one_or_fewer(self):
        n = expected_faulty_chiplets(2048, 2020, 0.9999, 2)
        assert n <= 1.0

    def test_paper_comparison_dict(self):
        result = paper_yield_comparison()
        assert result["single_pillar_expected_faulty"] > 300
        assert result["dual_pillar_expected_faulty"] < 1.0

    def test_pad_yield_formula(self):
        assert pad_yield(0.9, 2) == pytest.approx(1 - 0.01)
        assert pad_yield(0.9999, 1) == pytest.approx(0.9999)

    def test_more_pillars_never_hurt(self):
        y1 = pad_yield(0.999, 1)
        y2 = pad_yield(0.999, 2)
        y3 = pad_yield(0.999, 3)
        assert y1 < y2 < y3

    def test_model_redundancy_variant(self):
        model = BondingYieldModel()
        single = model.with_redundancy(1)
        assert single.expected_faulty > model.expected_faulty

    def test_system_yield_all_good_tiny(self):
        # All 2048 chiplets perfect: possible but that is why the network
        # must tolerate faults.
        model = BondingYieldModel(pillars_per_pad=1)
        assert model.system_yield_all_good < 1e-100

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            pad_yield(0.0, 2)
        with pytest.raises(ConfigError):
            pad_yield(0.5, 0)
        with pytest.raises(ConfigError):
            chiplet_bond_yield(-1, 0.99, 1)
        with pytest.raises(ConfigError):
            BondingYieldModel(chiplet_count=0)

    @given(
        pillar_yield=pillar_yields(),
        ios=io_counts(),
    )
    @settings(max_examples=40)
    def test_redundancy_monotone_property(self, pillar_yield, ios):
        y1 = chiplet_bond_yield(ios, pillar_yield, 1)
        y2 = chiplet_bond_yield(ios, pillar_yield, 2)
        assert 0.0 < y1 <= y2 <= 1.0


class TestIoCell:
    def test_energy_near_paper(self):
        assert IoCellModel().energy_per_bit_j() * 1e12 == pytest.approx(
            0.063, rel=0.05
        )

    def test_cell_fits_under_two_pillar_pad(self):
        cell = IoCellModel()
        assert cell.fits_under_pads(1, 10.0, pad_depth_pillars=2)

    def test_cell_does_not_fit_single_pillar(self):
        # 150um2 > 100um2: the reason each pad gets two pillars.
        cell = IoCellModel()
        assert not cell.fits_under_pads(1, 10.0, pad_depth_pillars=1)

    def test_drive_capability(self):
        cell = IoCellModel()
        assert cell.can_drive(300, 1e9)
        assert cell.can_drive(500, 1e9)
        assert not cell.can_drive(500, 2e9)
        # Longer links derate.
        assert not cell.can_drive(1000, 1e9)
        assert cell.can_drive(1000, 0.5e9)

    def test_total_io_area_below_half_mm2(self):
        # The paper: total I/O area only 0.4mm2.
        area = IoCellModel().total_io_area_mm2(2020)
        assert area < 0.45

    def test_longer_link_more_energy(self):
        cell = IoCellModel()
        assert cell.energy_per_bit_j(500) > cell.energy_per_bit_j(200)

    def test_activity_scales_energy(self):
        cell = IoCellModel()
        assert cell.energy_per_bit_j(300, activity=1.0) == pytest.approx(
            2 * cell.energy_per_bit_j(300, activity=0.5)
        )

    def test_invalid_inputs(self):
        cell = IoCellModel()
        with pytest.raises(ConfigError):
            cell.can_drive(0, 1e9)
        with pytest.raises(ConfigError):
            cell.energy_per_bit_j(300, activity=2.0)
        with pytest.raises(ConfigError):
            cell.total_io_area_mm2(-1)


class TestEsd:
    def test_baredie_spec_is_100v(self):
        assert baredie_esd_spec().hbm_volts == 100.0

    def test_packaged_spec_is_2kv(self):
        assert packaged_esd_spec().hbm_volts == 2000.0

    def test_area_saving_factor_is_20x(self):
        assert esd_area_saving_factor() == pytest.approx(20.0)

    def test_peak_current_scales(self):
        assert packaged_esd_spec().peak_current_a == pytest.approx(
            20 * baredie_esd_spec().peak_current_a
        )

    def test_baredie_clamp_fits_io_cell(self):
        # The stripped-down clamp must fit inside the 150um2 cell.
        assert baredie_esd_spec().clamp_area_um2 < 150.0


class TestBudgets:
    def test_compute_budget_totals_2020(self):
        assert compute_io_budget().total == 2020

    def test_memory_budget_totals_1250(self):
        assert memory_io_budget().total == 1250

    def test_network_dominates_compute_budget(self):
        budget = compute_io_budget()
        assert budget.network_ios == 1600
        assert budget.network_ios > budget.total / 2

    def test_budgets_fit_perimeter(self):
        assert compute_io_budget().fits_perimeter(10.0)
        assert memory_io_budget().fits_perimeter(10.0)

    def test_system_totals_in_millions(self):
        totals = system_io_totals()
        assert totals["total_ios"] > 3_000_000
        assert totals["total_pillars"] == 2 * totals["total_ios"]

    def test_budget_scales_with_link_width(self):
        slim = SystemConfig(link_width_bits=100)
        assert compute_io_budget(slim).network_ios == 400

    def test_overflow_detected(self):
        fat = SystemConfig(ios_per_compute_chiplet=500)
        with pytest.raises(ConfigError):
            compute_io_budget(fat)
