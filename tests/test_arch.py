"""Tests for repro.arch (memory map, ISA, core, crossbar, tile, system)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.core import Core, CoreState
from repro.arch.crossbar import Crossbar
from repro.arch.isa import Opcode, assemble
from repro.arch.membank import MemoryBank, bank_bandwidth_bytes_per_s
from repro.arch.memorymap import (
    CORE_PRIVATE_BASE,
    SHARED_BASE,
    TILE_PRIVATE_BASE,
    AddressRegion,
    MemoryMap,
)
from repro.arch.system import WaferscaleSystem
from repro.config import SystemConfig
from repro.errors import EmulatorError, MemoryMapError, NetworkError
from repro.noc.faults import FaultMap


class TestMemoryMap:
    def test_shared_region_size(self, paper_cfg):
        mm = MemoryMap(paper_cfg)
        assert mm.shared_size == 512 * 1024 * 1024

    def test_encode_decode_roundtrip_shared(self, small_cfg):
        mm = MemoryMap(small_cfg)
        addr = mm.shared_address((3, 5), bank=2, offset=1024)
        decoded = mm.decode(addr)
        assert decoded.region is AddressRegion.SHARED
        assert decoded.tile == (3, 5)
        assert decoded.bank == 2
        assert decoded.offset == 1024

    def test_tile_private_roundtrip(self, small_cfg):
        mm = MemoryMap(small_cfg)
        addr = mm.tile_private_address((1, 1), offset=512)
        decoded = mm.decode(addr)
        assert decoded.region is AddressRegion.TILE_PRIVATE
        assert decoded.tile == (1, 1)

    def test_core_private_window(self, small_cfg):
        mm = MemoryMap(small_cfg)
        decoded = mm.decode(mm.core_private_address(100))
        assert decoded.region is AddressRegion.CORE_PRIVATE
        assert decoded.tile is None

    def test_unmapped_address_raises(self, small_cfg):
        mm = MemoryMap(small_cfg)
        with pytest.raises(MemoryMapError):
            mm.decode(0x7000_0000)
        with pytest.raises(MemoryMapError):
            mm.decode(-1)

    def test_is_remote(self, small_cfg):
        mm = MemoryMap(small_cfg)
        addr = mm.shared_address((3, 3), 0, 0)
        assert mm.is_remote(addr, from_tile=(0, 0))
        assert not mm.is_remote(addr, from_tile=(3, 3))

    def test_foreign_tile_private_rejected(self, small_cfg):
        mm = MemoryMap(small_cfg)
        addr = mm.tile_private_address((2, 2), 0)
        with pytest.raises(MemoryMapError):
            mm.is_remote(addr, from_tile=(0, 0))

    def test_tile_id_roundtrip(self, small_cfg):
        mm = MemoryMap(small_cfg)
        for coord in small_cfg.tile_coords():
            assert mm.tile_of_id(mm.tile_id(coord)) == coord

    @given(
        tile=st.tuples(st.integers(0, 7), st.integers(0, 7)),
        bank=st.integers(0, 3),
        word=st.integers(0, (128 * 1024 // 4) - 1),
    )
    @settings(max_examples=50)
    def test_shared_roundtrip_property(self, tile, bank, word):
        mm = MemoryMap(SystemConfig(rows=8, cols=8))
        addr = mm.shared_address(tile, bank, word * 4)
        decoded = mm.decode(addr)
        assert (decoded.tile, decoded.bank, decoded.offset) == (tile, bank, word * 4)

    def test_regions_disjoint(self, small_cfg):
        mm = MemoryMap(small_cfg)
        assert SHARED_BASE + mm.shared_size <= TILE_PRIVATE_BASE
        assert TILE_PRIVATE_BASE + mm.tile_private_size <= CORE_PRIVATE_BASE


class TestMemoryBank:
    def test_read_write(self):
        bank = MemoryBank(1024)
        bank.write_word(16, 0xCAFE)
        assert bank.read_word(16) == 0xCAFE
        assert bank.read_word(20) == 0

    def test_unaligned_rejected(self):
        with pytest.raises(EmulatorError):
            MemoryBank(1024).read_word(3)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(EmulatorError):
            MemoryBank(1024).write_word(1024, 0)

    def test_oversize_value_rejected(self):
        with pytest.raises(EmulatorError):
            MemoryBank(1024).write_word(0, 1 << 32)

    def test_counters(self):
        bank = MemoryBank(1024)
        bank.write_word(0, 1)
        bank.read_word(0)
        assert bank.reads == 1 and bank.writes == 1 and bank.access_count == 2
        bank.clear()
        assert bank.access_count == 0 and bank.read_word(0) == 0

    def test_table1_bank_bandwidth(self):
        # 1024 tiles x 5 banks x 4B x 300MHz = 6.144 TB/s.
        total = 1024 * bank_bandwidth_bytes_per_s(300e6, banks=5)
        assert total == pytest.approx(6.144e12)


class TestAssembler:
    def test_forward_labels(self):
        program = assemble("""
            jmp end
            ldi r1, 99
        end:
            halt
        """)
        assert program.instructions[0].target == 2

    def test_comments_stripped(self):
        program = assemble("ldi r1, 5 ; set up\nhalt")
        assert len(program) == 2

    def test_unknown_mnemonic(self):
        with pytest.raises(EmulatorError):
            assemble("frobnicate r1")

    def test_undefined_label(self):
        with pytest.raises(EmulatorError):
            assemble("jmp nowhere\nhalt")

    def test_duplicate_label(self):
        with pytest.raises(EmulatorError):
            assemble("a:\nnop\na:\nhalt")

    def test_register_range(self):
        with pytest.raises(EmulatorError):
            assemble("ldi r16, 1")

    def test_hex_immediates(self):
        program = assemble("ldi r1, 0xff\nhalt")
        assert program.instructions[0].imm == 255


class _DirectPort:
    """A flat 1-cycle memory for core-only tests."""

    def __init__(self):
        self.mem = {}

    def read(self, core_index, address):
        return (self.mem.get(address, 0), 1)

    def write(self, core_index, address, value):
        self.mem[address] = value
        return 1


class TestCore:
    def run_program(self, source):
        port = _DirectPort()
        core = Core(0, port)
        core.load_program(assemble(source))
        core.run()
        return core, port

    def test_arithmetic(self):
        core, _ = self.run_program("""
            ldi r1, 7
            ldi r2, 5
            add r3, r1, r2
            sub r4, r1, r2
            mul r5, r1, r2
            halt
        """)
        assert core.registers[3] == 12
        assert core.registers[4] == 2
        assert core.registers[5] == 35

    def test_wraparound(self):
        core, _ = self.run_program("""
            ldi r1, -1
            ldi r2, 1
            add r3, r1, r2
            halt
        """)
        assert core.registers[3] == 0

    def test_logic_and_shifts(self):
        core, _ = self.run_program("""
            ldi r1, 0xf0
            ldi r2, 0x0f
            and r3, r1, r2
            or r4, r1, r2
            shl r5, r2, 4
            shr r6, r1, 4
            halt
        """)
        assert core.registers[3] == 0
        assert core.registers[4] == 0xFF
        assert core.registers[5] == 0xF0
        assert core.registers[6] == 0x0F

    def test_branching_loop(self):
        core, _ = self.run_program("""
            ldi r1, 0
            ldi r2, 10
            ldi r3, 1
        loop:
            beq r1, r2, done
            add r1, r1, r3
            jmp loop
        done:
            halt
        """)
        assert core.registers[1] == 10

    def test_signed_blt(self):
        core, _ = self.run_program("""
            ldi r1, -5
            ldi r2, 3
            ldi r4, 0
            blt r1, r2, yes
            jmp end
        yes:
            ldi r4, 1
        end:
            halt
        """)
        assert core.registers[4] == 1

    def test_memory_roundtrip(self):
        core, port = self.run_program("""
            ldi r1, 0x40
            ldi r2, 1234
            st r1, r2
            ld r3, r1
            halt
        """)
        assert core.registers[3] == 1234
        assert port.mem[0x40] == 1234

    def test_stall_accounting(self):
        class SlowPort(_DirectPort):
            def read(self, core_index, address):
                return (0, 10)

        core = Core(0, SlowPort())
        core.load_program(assemble("ldi r1, 0\nld r2, r1\nhalt"))
        core.run()
        assert core.stall_cycles == 9

    def test_runaway_detected(self):
        core = Core(0, _DirectPort())
        core.load_program(assemble("loop: jmp loop"))
        with pytest.raises(EmulatorError):
            core.run(max_cycles=100)

    def test_pc_off_end_detected(self):
        core = Core(0, _DirectPort())
        core.load_program(assemble("nop"))
        with pytest.raises(EmulatorError):
            core.run()


class TestCrossbar:
    def test_single_requests_granted(self):
        xbar = Crossbar(masters=4, targets=["bank0", "bank1"])
        grants = xbar.arbitrate({0: "bank0", 1: "bank1"})
        assert grants == {0: True, 1: True}

    def test_contention_one_winner(self):
        xbar = Crossbar(masters=4, targets=["bank0"])
        grants = xbar.arbitrate({0: "bank0", 1: "bank0", 2: "bank0"})
        assert sum(grants.values()) == 1
        assert xbar.stats.stalls == 2

    def test_round_robin_fairness(self):
        xbar = Crossbar(masters=3, targets=["t"])
        done = xbar.service_cycles({0: "t", 1: "t", 2: "t"})
        assert sorted(done.values()) == [1, 2, 3]

    def test_unknown_master_target(self):
        xbar = Crossbar(masters=2, targets=["t"])
        with pytest.raises(EmulatorError):
            xbar.arbitrate({5: "t"})
        with pytest.raises(EmulatorError):
            xbar.arbitrate({0: "nope"})

    @given(n=st.integers(1, 14))
    @settings(max_examples=20)
    def test_n_contenders_take_n_cycles(self, n):
        xbar = Crossbar(masters=14, targets=["bank"])
        done = xbar.service_cycles({i: "bank" for i in range(n)})
        assert max(done.values()) == n


class TestWaferscaleSystem:
    def test_local_vs_remote_latency(self, tiny_cfg):
        system = WaferscaleSystem(tiny_cfg)
        mm = system.memory_map
        local = assemble(f"""
            ldi r1, {mm.shared_address((0, 0), 0, 0)}
            ld r2, r1
            halt
        """)
        remote = assemble(f"""
            ldi r1, {mm.shared_address((3, 3), 0, 0)}
            ld r2, r1
            halt
        """)
        tile = system.tile((0, 0))
        tile.load_program(0, local)
        local_cycles = tile.cores[0].run()
        tile.load_program(0, remote)
        remote_cycles = tile.cores[0].run()
        assert remote_cycles > local_cycles

    def test_remote_write_visible_at_owner(self, tiny_cfg):
        system = WaferscaleSystem(tiny_cfg)
        mm = system.memory_map
        program = assemble(f"""
            ldi r1, {mm.shared_address((2, 2), 1, 64)}
            ldi r2, 777
            st r1, r2
            halt
        """)
        system.tile((0, 0)).load_program(0, program)
        system.tile((0, 0)).cores[0].run()
        assert system.read_shared((2, 2), 1, 64) == 777

    def test_broadcast_and_lockstep(self, tiny_cfg):
        system = WaferscaleSystem(tiny_cfg)
        program = assemble("""
            ldi r1, 2
            ldi r2, 3
            add r3, r1, r2
            halt
        """)
        system.broadcast_program(program)
        cycles = system.run_to_completion()
        assert cycles > 0
        for tile in system.tiles.values():
            for core in tile.cores:
                assert core.halted
                assert core.registers[3] == 5

    def test_faulty_tile_absent(self, tiny_cfg):
        fmap = FaultMap(tiny_cfg, frozenset({(1, 1)}))
        system = WaferscaleSystem(tiny_cfg, fmap)
        assert len(system.tiles) == 15
        with pytest.raises(EmulatorError):
            system.tile((1, 1))

    def test_unreachable_remote_raises(self, tiny_cfg):
        # Fault both neighbours patterns such that detour also fails: fault
        # every tile except two opposite corners in the same row? Simpler:
        # isolate (0,0) completely.
        fmap = FaultMap(tiny_cfg, frozenset({(0, 1), (1, 0)}))
        system = WaferscaleSystem(tiny_cfg, fmap)
        mm = system.memory_map
        program = assemble(f"""
            ldi r1, {mm.shared_address((3, 3), 0, 0)}
            ld r2, r1
            halt
        """)
        system.tile((0, 0)).load_program(0, program)
        with pytest.raises(NetworkError):
            system.tile((0, 0)).cores[0].run()

    def test_hop_accounting(self, tiny_cfg):
        system = WaferscaleSystem(tiny_cfg)
        mm = system.memory_map
        program = assemble(f"""
            ldi r1, {mm.shared_address((0, 3), 0, 0)}
            ld r2, r1
            halt
        """)
        system.tile((0, 0)).load_program(0, program)
        system.tile((0, 0)).cores[0].run()
        assert system.network_accesses == 1
        assert system.mean_hops_per_access == 6.0   # 3 hops each way
