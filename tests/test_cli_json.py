"""Tests for the CLI's structured-result API: --json, --workers, --no-cache.

Every ``--json`` document is a versioned ``repro/v1`` envelope:
``command``/``ok`` at the top level, the command payload under
``result``, and a ``manifest`` field (populated when telemetry ran).
"""

import json

import pytest

from repro.cli import _RENDERERS, _RUNNERS, build_parser, main
from repro.obs import ENVELOPE_SCHEMA, validate_envelope_document

# Smallest cheap invocation of every command.
COMMANDS = {
    "table1": ["table1", "--rows", "4", "--cols", "4"],
    "flow": ["flow", "--rows", "4", "--cols", "4", "--trials", "2"],
    "droop": ["droop", "--rows", "4", "--cols", "4"],
    "fig6": ["fig6", "--rows", "6", "--cols", "6", "--trials", "2",
             "--max-faults", "2", "--no-cache"],
    "clock": ["clock", "--rows", "4", "--cols", "4", "--faults", "2", "--seed", "1"],
    "resiliency": ["resiliency", "--rows", "4", "--cols", "4", "--trials", "2",
                   "--max-faults", "2", "--no-cache"],
    "loadtime": ["loadtime", "--rows", "4", "--cols", "4"],
    "yield": ["yield", "--rows", "4", "--cols", "4"],
    "shmoo": ["shmoo", "--rows", "4", "--cols", "4", "--no-cache"],
    "validate": ["validate", "--rows", "32", "--cols", "32"],
    "report": ["report", "--rows", "4", "--cols", "4", "--trials", "2"],
    "bringup": ["bringup", "--rows", "4", "--cols", "4", "--faults", "1",
                "--seed", "1"],
    "remap": ["remap", "--rows", "4", "--cols", "4", "--faults", "2", "--seed", "1"],
    "lot": ["lot", "--rows", "4", "--cols", "4", "--wafers", "4", "--no-cache"],
    "noc": ["noc", "--rows", "4", "--cols", "4", "--cycles", "20"],
    "emu": ["emu", "--rows", "4", "--cols", "4", "--workload", "wave",
            "--engine", "vector", "--faults", "1", "--seed", "1"],
    "collective": ["collective", "--rows", "4", "--cols", "4", "--ranks", "4",
                   "--pattern", "ring-all-reduce", "--seed", "1"],
    "verify": ["verify", "--suite", "dft", "--trials", "2"],
    # A missing file is still a structured (ok=False) result.
    "obs": ["obs", "validate", "does-not-exist.json"],
    # An unreachable daemon is still a structured (ok=False) result.
    "submit": ["submit", "sleep", "--port", "1", "--timeout", "1"],
}


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep CLI cache writes out of the working directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestJsonOutput:
    @pytest.mark.parametrize("command", sorted(COMMANDS))
    def test_json_is_valid_envelope(self, command, capsys):
        main(COMMANDS[command] + ["--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == ENVELOPE_SCHEMA
        assert payload["command"] == command
        assert isinstance(payload["ok"], bool)
        assert isinstance(payload["result"], dict)
        assert validate_envelope_document(payload) == []

    def test_global_json_flag_before_subcommand(self, capsys):
        assert main(["--json", "loadtime"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "loadtime"

    def test_json_matches_text_exit_code(self, capsys):
        text_code = main(COMMANDS["validate"])
        capsys.readouterr()
        json_code = main(COMMANDS["validate"] + ["--json"])
        payload = json.loads(capsys.readouterr().out)
        assert text_code == json_code == (0 if payload["ok"] else 1)

    def test_every_command_has_runner_and_renderer(self):
        assert set(_RUNNERS) == set(_RENDERERS) == set(COMMANDS)

    def test_manifest_populated_with_metrics_flag(self, tmp_path, capsys):
        sink = tmp_path / "metrics.json"
        main(COMMANDS["fig6"] + ["--json", "--metrics", str(sink)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifest"] is not None
        assert payload["manifest"]["experiment"].startswith("noc.")
        assert validate_envelope_document(payload) == []

    def test_envelope_validates_via_obs_command(self, tmp_path, capsys):
        doc = tmp_path / "envelope.json"
        main(COMMANDS["loadtime"] + ["--json"])
        doc.write_text(capsys.readouterr().out)
        assert main(["obs", "validate", str(doc)]) == 0
        out = capsys.readouterr().out
        assert "valid envelope file" in out


class TestTextRendering:
    """Default text output is the renderer applied to the structured dict."""

    @pytest.mark.parametrize("command", sorted(COMMANDS))
    def test_text_is_rendered_dict(self, command, capsys):
        parser = build_parser()
        args = parser.parse_args(COMMANDS[command])
        result = _RUNNERS[command](args)
        expected = _RENDERERS[command](result)
        assert isinstance(result, dict)
        assert expected    # every command prints something

    def test_fig6_text_format(self, capsys):
        main(COMMANDS["fig6"])
        out = capsys.readouterr().out
        assert out.splitlines()[0] == f"{'faults':>7} {'single %':>9} {'dual %':>8}"

    def test_lot_text_format(self, capsys):
        main(COMMANDS["lot"])
        out = capsys.readouterr().out
        assert "pillar(s)/pad:" in out and "sellable" in out

    def test_resiliency_text_has_header(self, capsys):
        main(COMMANDS["resiliency"])
        out = capsys.readouterr().out
        assert "coverage %" in out.splitlines()[0]


class TestCollectiveCommand:
    """Smoke for the collective paths: envelope validity + engine echo."""

    @pytest.mark.parametrize("engine", ["reference", "fast", "vector"])
    def test_noc_backend_echoes_engine(self, engine, capsys):
        assert main(COMMANDS["collective"] + ["--engine", engine, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_envelope_document(payload) == []
        assert payload["result"]["engine"] == engine
        assert payload["result"]["oracle_checks"] > 0

    def test_emu_backend_echoes_resolved_engine(self, capsys):
        cmd = COMMANDS["collective"] + ["--backend", "emu",
                                        "--engine", "vector", "--json"]
        assert main(cmd) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_envelope_document(payload) == []
        assert payload["result"]["engine"] == "vector"
        assert payload["result"]["supersteps"] > 0

    def test_dataflow_pattern(self, capsys):
        cmd = ["collective", "--rows", "5", "--cols", "5", "--pattern",
               "dataflow", "--json"]
        assert main(cmd) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["pattern"] == "dataflow"
        assert payload["result"]["oracle_checks"] > 0

    def test_sweep_mode(self, capsys):
        cmd = ["collective", "--rows", "5", "--cols", "5", "--ranks", "6",
               "--sweep-faults", "0,2", "--trials", "2", "--no-cache",
               "--engine", "vector", "--json"]
        assert main(cmd) == 0
        payload = json.loads(capsys.readouterr().out)
        points = payload["result"]["points"]
        assert [p["faults"] for p in points] == [0, 2]
        assert payload["result"]["engine"] == "vector"

    def test_verify_collective_suite_listed(self):
        from repro.verify import SUITES

        assert "collective" in SUITES


class TestEngineFlags:
    def test_workers_do_not_change_cli_statistics(self, capsys):
        base = ["fig6", "--rows", "6", "--cols", "6", "--trials", "3",
                "--max-faults", "3", "--seed", "5", "--no-cache", "--json"]
        main(base + ["--workers", "1"])
        one = json.loads(capsys.readouterr().out)
        main(base + ["--workers", "4"])
        four = json.loads(capsys.readouterr().out)
        assert one["result"]["stats"] == four["result"]["stats"]

    def test_cache_populated_unless_disabled(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cli-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        cmd = ["fig6", "--rows", "4", "--cols", "4", "--trials", "2",
               "--max-faults", "1"]
        main(cmd + ["--no-cache"])
        assert not cache_dir.exists()
        main(cmd)
        assert any(cache_dir.glob("*/*.pkl"))

    def test_cached_rerun_matches(self, capsys):
        cmd = ["lot", "--rows", "4", "--cols", "4", "--wafers", "4", "--json"]
        main(cmd)
        first = json.loads(capsys.readouterr().out)
        main(cmd)
        second = json.loads(capsys.readouterr().out)
        assert first["result"]["variants"] == second["result"]["variants"]
