"""Shared fixtures for the test suite."""

import pytest

from repro.config import SystemConfig
from repro.noc.faults import FaultMap


@pytest.fixture
def paper_cfg() -> SystemConfig:
    """The full 32x32 paper configuration."""
    return SystemConfig()


@pytest.fixture
def small_cfg() -> SystemConfig:
    """An 8x8 configuration (Fig. 4 scale) for simulation-heavy tests."""
    return SystemConfig(rows=8, cols=8)


@pytest.fixture
def tiny_cfg() -> SystemConfig:
    """A 4x4 configuration for emulator tests."""
    return SystemConfig(rows=4, cols=4)


@pytest.fixture
def clean_map(small_cfg) -> FaultMap:
    """An 8x8 fault map with no faults."""
    return FaultMap(small_cfg)
