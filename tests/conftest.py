"""Shared fixtures for the test suite."""

import pytest

from repro.arch.emulator import clear_route_cache
from repro.config import SystemConfig
from repro.noc.faults import FaultMap


@pytest.fixture(autouse=True)
def _fresh_route_caches():
    """Clear the emulator's process-wide route caches around every test.

    ``_ROUTE_CACHE`` (and the vector engine's route-table LRU) are keyed
    by fault map, so entries seeded by one test would otherwise leak
    into the next — invisible under the default ordering but flaky
    under ``pytest-randomly``.
    """
    clear_route_cache()
    yield
    clear_route_cache()


@pytest.fixture
def paper_cfg() -> SystemConfig:
    """The full 32x32 paper configuration."""
    return SystemConfig()


@pytest.fixture
def small_cfg() -> SystemConfig:
    """An 8x8 configuration (Fig. 4 scale) for simulation-heavy tests."""
    return SystemConfig(rows=8, cols=8)


@pytest.fixture
def tiny_cfg() -> SystemConfig:
    """A 4x4 configuration for emulator tests."""
    return SystemConfig(rows=4, cols=4)


@pytest.fixture
def clean_map(small_cfg) -> FaultMap:
    """An 8x8 fault map with no faults."""
    return FaultMap(small_cfg)
