"""Tests for the stencil and PageRank workloads, and the analysis layer."""

import numpy as np
import pytest

from repro.analysis.dse import sweep_array_size, sweep_io_pitch, sweep_link_width
from repro.analysis.render import render_field, render_fault_overlay
from repro.arch.system import WaferscaleSystem
from repro.config import SystemConfig
from repro.errors import ReproError, WorkloadError
from repro.noc.faults import FaultMap
from repro.workloads.graphs import grid_graph, random_graph
from repro.workloads.pagerank import DistributedPageRank, reference_pagerank
from repro.workloads.stencil import DistributedStencil, reference_jacobi


@pytest.fixture(scope="module")
def system44():
    return WaferscaleSystem(SystemConfig(rows=4, cols=4))


class TestStencil:
    def test_matches_numpy_reference(self, system44):
        field = np.zeros((16, 16))
        field[0, :] = 100.0
        field[:, 0] = 50.0
        result = DistributedStencil(system44, field).run(iterations=12)
        np.testing.assert_allclose(result.field, reference_jacobi(field, 12))

    def test_heat_diffuses_inward(self, system44):
        field = np.zeros((16, 16))
        field[0, :] = 100.0
        result = DistributedStencil(system44, field).run(iterations=30)
        assert result.field[5, 8] > 0.0
        assert result.field[5, 8] < 100.0

    def test_zero_iterations_identity(self, system44):
        field = np.random.default_rng(0).random((16, 16))
        result = DistributedStencil(system44, field).run(iterations=0)
        np.testing.assert_allclose(result.field, field)

    def test_halo_messages_counted(self, system44):
        field = np.zeros((16, 16))
        result = DistributedStencil(system44, field).run(iterations=3)
        # 4x4 tiles: 2*4*3 = 24 interior tile-pair adjacencies, two
        # directions each, per iteration.
        assert result.stats.messages_sent == 3 * 48

    def test_uneven_field_rejected(self, system44):
        with pytest.raises(WorkloadError):
            DistributedStencil(system44, np.zeros((15, 16)))

    def test_faulty_system_rejected(self):
        cfg = SystemConfig(rows=4, cols=4)
        system = WaferscaleSystem(cfg, FaultMap(cfg, frozenset({(0, 0)})))
        with pytest.raises(WorkloadError):
            DistributedStencil(system, np.zeros((16, 16)))

    def test_1d_field_rejected(self, system44):
        with pytest.raises(WorkloadError):
            DistributedStencil(system44, np.zeros(16))


class TestPageRank:
    def test_matches_networkx(self, system44):
        graph = random_graph(150, 5.0, seed=4)
        result = DistributedPageRank(system44, graph).run(iterations=100)
        reference = reference_pagerank(graph)
        for node, rank in reference.items():
            assert result.ranks[node] == pytest.approx(rank, abs=1e-4)

    def test_ranks_sum_to_one(self, system44):
        graph = random_graph(100, 4.0, seed=5)
        result = DistributedPageRank(system44, graph).run(iterations=60)
        assert sum(result.ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_hub_outranks_leaf(self, system44):
        graph = grid_graph(10)
        # Attach many leaves to node 0 to make it a hub.
        next_id = 100
        for _ in range(12):
            graph.add_edge(0, next_id)
            next_id += 1
        result = DistributedPageRank(system44, graph).run(iterations=80)
        assert result.ranks[0] > result.ranks[55]

    def test_convergence_early_exit(self, system44):
        graph = grid_graph(6)
        result = DistributedPageRank(system44, graph).run(
            iterations=500, tolerance=1e-10
        )
        assert result.iterations < 500

    def test_runs_on_faulty_wafer(self):
        cfg = SystemConfig(rows=4, cols=4)
        system = WaferscaleSystem(cfg, FaultMap(cfg, frozenset({(2, 2)})))
        graph = random_graph(80, 4.0, seed=6)
        result = DistributedPageRank(system, graph).run(iterations=60)
        reference = reference_pagerank(graph)
        for node, rank in reference.items():
            assert result.ranks[node] == pytest.approx(rank, abs=1e-4)

    def test_invalid_damping(self, system44):
        graph = grid_graph(3)
        with pytest.raises(WorkloadError):
            DistributedPageRank(system44, graph, damping=1.0)


class TestDse:
    def test_array_size_sweep_shapes(self):
        points = sweep_array_size([8, 16, 32])
        voltages = [p.min_delivered_v for p in points]
        assert voltages == sorted(voltages, reverse=True)   # bigger = worse
        bandwidths = [p.network_bw_tbps for p in points]
        assert bandwidths == sorted(bandwidths)             # bigger = more BW

    def test_32x32_hits_the_ldo_floor(self):
        point = sweep_array_size([32])[0]
        assert point.min_delivered_v == pytest.approx(1.4, abs=0.05)

    def test_io_pitch_sweep(self):
        rows = sweep_io_pitch([20.0, 10.0, 5.0])
        ios = [r["max_perimeter_ios"] for r in rows]
        assert ios == sorted(ios)
        # Finer pitch => more I/Os => single-pillar yield collapses.
        yields_1p = [r["bond_yield_1_pillar"] for r in rows]
        assert yields_1p == sorted(yields_1p, reverse=True)
        for row in rows:
            assert row["bond_yield_2_pillars"] > row["bond_yield_1_pillar"]

    def test_link_width_sweep(self):
        rows = sweep_link_width([100, 400])
        assert rows[1]["link_bw_gbps"] == pytest.approx(4 * rows[0]["link_bw_gbps"])
        assert all(r["fits_perimeter"] for r in rows)


class TestRender:
    def test_render_shape(self):
        art = render_field(np.arange(12).reshape(3, 4), legend=False)
        lines = art.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 4 for line in lines)

    def test_extremes_use_ramp_ends(self):
        art = render_field(np.array([[0.0, 1.0]]), legend=False)
        assert art[0] == " " and art[-1] == "@"

    def test_constant_field(self):
        art = render_field(np.full((2, 2), 5.0), legend=False)
        assert set(art.replace("\n", "")) == {" "}

    def test_legend(self):
        art = render_field(np.array([[1.0, 2.0]]))
        assert "1" in art.splitlines()[-1]

    def test_fault_overlay(self):
        cfg = SystemConfig(rows=3, cols=3)
        fmap = FaultMap(cfg, frozenset({(1, 1)}))
        art = render_fault_overlay(np.zeros((3, 3)), fmap)
        assert art.splitlines()[1][1] == "X"

    def test_bad_inputs(self):
        with pytest.raises(ReproError):
            render_field(np.zeros(3))
        with pytest.raises(ReproError):
            render_field(np.zeros((2, 2)), ramp="")
        cfg = SystemConfig(rows=3, cols=3)
        with pytest.raises(ReproError):
            render_fault_overlay(np.zeros((2, 2)), FaultMap(cfg))
