"""Tests for the collective workload family and its conformance oracles.

Four layers, mirroring the verify architecture:

* program semantics vs the naive golden models (pure differential);
* Hypothesis conformance: random (geometry, fault map, spec) points
  must agree bit-identically across all three NoC engines, batch vs
  individual dispatch, and the golden reduction on every reachable tile;
* mutation must-trip tests: a corrupted, dropped or duplicated
  contribution MUST raise a structured ``InvariantViolation`` with
  tile/phase context — an oracle that cannot fail cannot catch bugs;
* the seeded fault-degradation regression pinning achieved-bandwidth
  monotonic non-increase as the fault count grows.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.system import WaferscaleSystem
from repro.arch.emulator import clear_route_cache
from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.noc.faults import FaultMap, random_fault_map
from repro.verify.campaign import _collective_golden_check, _collective_trial
from repro.verify.golden import (
    golden_all_reduce,
    golden_all_to_all,
    golden_broadcast,
    golden_collective_finals,
    golden_dataflow,
    golden_pipeline,
    golden_reduce,
)
from repro.verify.invariants import InvariantViolation
from repro.verify.strategies import collective_specs
from repro.workloads.collectives import (
    PATTERNS,
    PLACEMENTS,
    CollectiveDriver,
    CollectiveSpec,
    all_to_all,
    broadcast,
    build_program,
    check_delivery,
    compile_noc,
    contribution,
    execute_program,
    fault_sweep,
    pipeline,
    recursive_doubling_all_reduce,
    ring_all_reduce,
    run_noc_collective,
    run_noc_collective_batch,
    select_ranks,
    tree_reduce,
)
from repro.workloads.dataflow import DataflowGraph, demo_graph

ENGINES = ("fast", "reference", "vector")


def _golden_for(program):
    return golden_collective_finals(
        program.name,
        program.ranks,
        seed=program.params.get("seed", 0),
        segments=program.params.get("segments", 1),
        root=program.params.get("root", 0),
        stages=program.params.get("stages", 2),
        microbatches=program.params.get("microbatches", 4),
    )


def _assert_matches_golden(program, finals):
    for rank, slots in _golden_for(program).items():
        for slot, want in slots.items():
            assert finals[rank].get(slot, 0) == want, (
                program.name, rank, slot,
            )


# ---------------------------------------------------------------------------
# program semantics vs the naive golden models
# ---------------------------------------------------------------------------


class TestProgramSemantics:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("segments", [1, 2])
    def test_ring_all_reduce(self, n, segments):
        if segments > n:
            pytest.skip("segments capped at rank count")
        program = ring_all_reduce(n, segments=segments, seed=3)
        program.validate()
        finals = execute_program(program).finals
        values = [
            [contribution(3, r, s) for s in range(segments)] for r in range(n)
        ]
        totals = golden_all_reduce(values)
        for r in range(n):
            for s in range(segments):
                assert finals[r][s] == totals[s]

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 7, 8, 13])
    def test_recursive_doubling_all_reduce(self, n):
        program = recursive_doubling_all_reduce(n, seed=5)
        program.validate()
        finals = execute_program(program).finals
        total = golden_all_reduce([[contribution(5, r, 0)] for r in range(n)])
        for r in range(n):
            assert finals[r][0] == total[0]

    @pytest.mark.parametrize("n,root", [(1, 0), (4, 0), (5, 3), (9, 8)])
    def test_broadcast_and_reduce(self, n, root):
        bcast = broadcast(n, root=root, seed=2)
        bcast.validate()
        finals = execute_program(bcast).finals
        values = [contribution(2, r, 0) for r in range(n)]
        want = golden_broadcast(values, root)
        for r in range(n):
            assert finals[r][0] == want[r]

        red = tree_reduce(n, root=root, seed=2)
        red.validate()
        finals = execute_program(red).finals
        assert finals[root][0] == golden_reduce(values)

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7])
    def test_all_to_all(self, n):
        program = all_to_all(n, seed=9)
        program.validate()
        finals = execute_program(program).finals
        values = [
            [contribution(9, i, j) for j in range(n)] for i in range(n)
        ]
        want = golden_all_to_all(values)
        for j in range(n):
            for i in range(n):
                assert finals[j][n + i] == want[j][i]

    @pytest.mark.parametrize(
        "n,stages,microbatches", [(1, 1, 1), (4, 2, 3), (6, 3, 4), (8, 4, 2)]
    )
    def test_pipeline(self, n, stages, microbatches):
        program = pipeline(n, stages=stages, microbatches=microbatches, seed=4)
        program.validate()
        finals = execute_program(program).finals
        outs = golden_pipeline(
            [
                [contribution(4, t, b) for b in range(microbatches)]
                for t in range(stages)
            ]
        )
        expected = _golden_for(program)
        for rank, slots in expected.items():
            for b, want in slots.items():
                assert want == outs[b]
                assert finals[rank][b] == want

    def test_ring_rejects_too_many_segments(self):
        with pytest.raises(WorkloadError):
            ring_all_reduce(3, segments=4)

    def test_build_program_rejects_unknown_pattern(self):
        with pytest.raises(WorkloadError):
            build_program(CollectiveSpec(pattern="gossip"), 4)

    def test_placements_are_deterministic(self):
        cfg = SystemConfig(rows=5, cols=5)
        fmap = random_fault_map(cfg, 3, rng=7)
        for placement in PLACEMENTS:
            spec = CollectiveSpec(ranks=8, placement=placement, seed=11)
            assert select_ranks(fmap, spec) == select_ranks(fmap, spec)
        row = select_ranks(fmap, CollectiveSpec(ranks=8))
        col = select_ranks(fmap, CollectiveSpec(ranks=8, placement="column-major"))
        assert row != col

    def test_select_ranks_rejects_oversubscription(self):
        cfg = SystemConfig(rows=4, cols=4)
        with pytest.raises(WorkloadError):
            select_ranks(FaultMap(cfg), CollectiveSpec(ranks=17))


# ---------------------------------------------------------------------------
# Hypothesis conformance across engines, batch dispatch, and golden
# ---------------------------------------------------------------------------


class TestHypothesisConformance:
    @given(
        rows=st.integers(4, 6),
        cols=st.integers(4, 6),
        faults=st.integers(0, 3),
        fault_seed=st.integers(0, 2**31 - 1),
        spec=collective_specs(max_ranks=9),
    )
    @settings(max_examples=12, deadline=None)
    def test_three_engines_and_batch_agree_with_golden(
        self, rows, cols, faults, fault_seed, spec
    ):
        cfg = SystemConfig(rows=rows, cols=cols)
        fmap = random_fault_map(cfg, faults, rng=fault_seed)
        spec = dataclasses.replace(
            spec, ranks=min(spec.ranks, fmap.healthy_count)
        )
        try:
            coll = compile_noc(cfg, fmap, spec)
        except Exception:
            fmap = FaultMap(cfg)
            coll = compile_noc(cfg, fmap, spec)

        reports = {}
        for engine in ENGINES:
            reports[engine], checks = run_noc_collective(coll, engine=engine)
            assert checks > 0
        assert reports["fast"] == reports["reference"] == reports["vector"]

        # Batch dispatch must equal the individual vector run driven
        # over the same injection window.
        window = coll.last_cycle + 1
        solo, _ = run_noc_collective(
            coll, engine="vector", run_cycles=window
        )
        assert run_noc_collective_batch([coll])[0] == solo

        # Every reachable (= participant) tile ends with the golden value.
        _assert_matches_golden(coll.program, coll.trace.finals)

    @given(
        faults=st.integers(0, 3),
        seed=st.integers(0, 2**31 - 1),
        pattern=st.sampled_from(PATTERNS),
    )
    @settings(max_examples=10, deadline=None)
    def test_emulator_driver_matches_noc_and_golden(self, faults, seed, pattern):
        cfg = SystemConfig(rows=5, cols=5)
        fmap = random_fault_map(cfg, faults, rng=seed)
        spec = CollectiveSpec(
            pattern=pattern, seed=seed, ranks=min(6, fmap.healthy_count),
            segments=2, root=1, stages=2, microbatches=3,
        )
        clear_route_cache()
        system = WaferscaleSystem(cfg, fmap)
        driver = CollectiveDriver(system, spec)
        stats = {e: driver.run(engine=e) for e in ENGINES}
        assert stats["fast"] == stats["reference"] == stats["vector"]
        _assert_matches_golden(driver.program, driver.state)


# ---------------------------------------------------------------------------
# mutation must-trip tests for the oracles
# ---------------------------------------------------------------------------


def _delivered(coll, engine="reference"):
    from repro.noc.simulator import NocSimulator

    sim = NocSimulator(coll.config, coll.fault_map, engine=engine)
    schedule = coll.packet_schedule()
    position = 0
    for cycle in range(coll.last_cycle + 1):
        while position < len(schedule) and schedule[position][0] == cycle:
            _, packet, network = schedule[position]
            sim.inject(packet, network)
            position += 1
        sim.step()
    sim.drain()
    return list(sim.delivered_packets)


class TestOracleMustTrip:
    def _compiled(self):
        cfg = SystemConfig(rows=5, cols=5)
        fmap = random_fault_map(cfg, 2, rng=3)
        spec = CollectiveSpec(pattern="ring-all-reduce", ranks=6, segments=2, seed=8)
        return compile_noc(cfg, fmap, spec)

    def test_healthy_run_passes(self):
        coll = self._compiled()
        assert check_delivery(coll, _delivered(coll)) > 0

    def test_corrupted_contribution_trips_with_context(self):
        coll = self._compiled()
        packets = _delivered(coll)
        packets[3].payload = (packets[3].payload + 1) % (1 << 64)
        with pytest.raises(InvariantViolation) as exc:
            check_delivery(coll, packets, engine="reference")
        violation = exc.value
        assert violation.subsystem == "collective"
        assert "phase" in violation.context
        assert "src" in violation.context and "dst" in violation.context
        assert violation.context["engine"] == "reference"

    def test_dropped_packet_trips(self):
        coll = self._compiled()
        with pytest.raises(InvariantViolation):
            check_delivery(coll, _delivered(coll)[:-1])

    def test_duplicated_packet_trips(self):
        coll = self._compiled()
        packets = _delivered(coll)
        with pytest.raises(InvariantViolation):
            check_delivery(coll, packets + [packets[0]])

    def test_foreign_packet_trips(self):
        coll = self._compiled()
        packets = _delivered(coll)
        stray = dataclasses.replace(packets[0])
        stray.address = len(coll.program.phases) + 7
        with pytest.raises(InvariantViolation) as exc:
            check_delivery(coll, packets + [stray])
        assert exc.value.invariant == "delivery_oracle"

    def test_emulator_final_state_corruption_trips(self):
        cfg = SystemConfig(rows=4, cols=4)
        clear_route_cache()
        system = WaferscaleSystem(cfg, None)
        driver = CollectiveDriver(
            system, CollectiveSpec(pattern="rd-all-reduce", ranks=5, seed=1)
        )
        driver.run(engine="fast")
        driver.state[2][0] ^= 1
        with pytest.raises(InvariantViolation) as exc:
            driver.verify()
        violation = exc.value
        assert violation.invariant == "completion_oracle"
        assert violation.context["rank"] == 2
        assert "tile" in violation.context and "slot" in violation.context

    def test_campaign_golden_check_trips(self):
        coll = self._compiled()
        assert _collective_golden_check(coll) > 0
        rank = next(iter(coll.trace.finals))
        coll.trace.finals[rank][0] ^= 1
        with pytest.raises(InvariantViolation) as exc:
            _collective_golden_check(coll)
        assert exc.value.invariant == "golden_differential"


# ---------------------------------------------------------------------------
# seeded fault-degradation regression
# ---------------------------------------------------------------------------


class TestFaultDegradation:
    def test_bandwidth_monotone_non_increasing(self):
        """Nested fault maps with a pinned participant set: more faults
        can only detour or congest the same logical traffic, so achieved
        bandwidth must not increase.  Seeded so re-route regressions
        (e.g. detours silently becoming drops) fail loudly."""
        cfg = SystemConfig(rows=8, cols=8)
        spec = CollectiveSpec(pattern="ring-all-reduce", ranks=24, segments=8)
        points = fault_sweep(
            cfg, spec, [0, 4, 8, 12, 16], seed=6, phase_gap=1
        )
        assert all(p["ok"] for p in points)
        bandwidth = [p["bandwidth_words_per_cycle"] for p in points]
        assert all(
            bandwidth[i] >= bandwidth[i + 1] for i in range(len(bandwidth) - 1)
        ), bandwidth
        assert bandwidth[0] > bandwidth[-1]
        detours = [p["detoured_transfers"] for p in points]
        assert detours[0] == 0 and max(detours) > 0

    def test_sweep_reports_oracle_checks(self):
        cfg = SystemConfig(rows=5, cols=5)
        points = fault_sweep(
            cfg, CollectiveSpec(pattern="broadcast", ranks=8), [0, 2], seed=1
        )
        assert all(p["oracle_checks"] > 0 for p in points if p["ok"])


# ---------------------------------------------------------------------------
# dataflow DAG workloads
# ---------------------------------------------------------------------------


class TestDataflow:
    def _graph(self):
        graph = DataflowGraph(seed=13)
        graph.add_layer("a", 3)
        graph.add_layer("b", 2)
        graph.add_layer("c", 4)
        graph.add_layer("d", 1)
        graph.add_edge("a", "b", "dense")
        graph.add_edge("b", "c", "broadcast")
        graph.add_edge("a", "c", "dense")
        graph.add_edge("c", "d", "reduce")
        return graph

    def _golden(self, graph):
        inputs, biases = {}, {}
        fed = {e.dst for e in graph.edges}
        for name, layer in graph.layers.items():
            slot = 0 if name not in fed else 1
            values = [
                contribution(graph.seed, r, slot) for r in layer.ranks
            ]
            (inputs if name not in fed else biases)[name] = values
        return golden_dataflow(
            [(name, layer.width) for name, layer in graph.layers.items()],
            [(e.src, e.dst, e.kind) for e in graph.edges],
            inputs,
            biases,
        )

    def test_program_matches_golden(self):
        graph = self._graph()
        program = graph.build_program()
        finals = graph.layer_finals(execute_program(program).finals)
        assert finals == self._golden(graph)

    def test_cycle_detection(self):
        graph = DataflowGraph()
        graph.add_layer("x", 1)
        graph.add_layer("y", 1)
        graph.add_edge("x", "y")
        graph.add_edge("y", "x")
        with pytest.raises(WorkloadError):
            graph.build_program()

    def test_noc_backend_runs_dataflow(self):
        graph = self._graph()
        cfg = SystemConfig(rows=5, cols=5)
        fmap = random_fault_map(cfg, 2, rng=5)
        coll = compile_noc(
            cfg, fmap, CollectiveSpec(seed=5), program=graph.build_program()
        )
        reports = {}
        for engine in ENGINES:
            reports[engine], checks = run_noc_collective(coll, engine=engine)
            assert checks > 0
        assert reports["fast"] == reports["reference"] == reports["vector"]
        assert graph.layer_finals(coll.trace.finals) == self._golden(graph)

    def test_emulator_backend_runs_dataflow(self):
        graph = self._graph()
        cfg = SystemConfig(rows=5, cols=5)
        clear_route_cache()
        system = WaferscaleSystem(cfg, random_fault_map(cfg, 2, rng=5))
        driver = CollectiveDriver(
            system, CollectiveSpec(seed=5), program=graph.build_program()
        )
        stats = {e: driver.run(engine=e) for e in ENGINES}
        assert stats["fast"] == stats["reference"] == stats["vector"]
        assert graph.layer_finals(driver.state) == self._golden(graph)

    def test_demo_graph_covers_every_edge_kind(self):
        graph = demo_graph(seed=2)
        kinds = {e.kind for e in graph.edges}
        assert kinds == {"dense", "broadcast", "reduce"}
        program = graph.build_program()
        finals = graph.layer_finals(execute_program(program).finals)
        assert finals == self._golden(graph)


# ---------------------------------------------------------------------------
# campaign integration
# ---------------------------------------------------------------------------


class TestCampaignIntegration:
    def test_collective_suite_passes(self):
        from repro.verify import run_verify

        verdict = run_verify(suite="collective", trials=6, seed=0)
        entry = verdict["suites"]["collective"]
        assert entry["passed"], entry
        assert entry["checks"] > 0

    def test_trial_covers_multiple_geometries_and_patterns(self):
        from repro.engine.core import ExperimentEngine

        result = ExperimentEngine().run(
            _collective_trial,
            experiment="test.collective.coverage",
            trials=12,
            seed=0,
            params={"rows": 8, "cols": 8},
        )
        geometries = {tuple(v["geometry"]) for v in result.values}
        patterns = {v["pattern"] for v in result.values}
        assert len(geometries) >= 2
        assert len(patterns) == len(PATTERNS)
