"""Tests for the canonical program library and the design-report exporter."""

import pytest

from repro.arch.core import Core
from repro.arch.programs import (
    checksum,
    memory_walk,
    spin_counter,
    vector_add,
)
from repro.arch.system import WaferscaleSystem
from repro.cli import main
from repro.config import SystemConfig
from repro.errors import EmulatorError, ReproError
from repro.flow.export import design_report_markdown, export_design_report


class _FlatPort:
    """Simple flat memory for core-only program tests."""

    def __init__(self):
        self.mem = {}

    def read(self, core_index, address):
        return (self.mem.get(address, 0), 1)

    def write(self, core_index, address, value):
        self.mem[address] = value
        return 1


def run_on_core(built):
    port = _FlatPort()
    core = Core(0, port)
    core.load_program(built.program)
    core.run(max_cycles=2_000_000)
    return core, port


class TestPrograms:
    def test_memory_walk_clean(self):
        built = memory_walk(0x100, words=16)
        _, port = run_on_core(built)
        assert port.mem[built.result_address] == 0      # no mismatches
        assert port.mem[0x100] == 0xA5A5A5A5

    def test_memory_walk_detects_corruption(self):
        built = memory_walk(0x100, words=8)

        class CorruptPort(_FlatPort):
            def read(self, core_index, address):
                value, lat = super().read(core_index, address)
                if address == 0x104:        # one bad word
                    return (value ^ 1, lat)
                return (value, lat)

        port = CorruptPort()
        core = Core(0, port)
        core.load_program(built.program)
        core.run(max_cycles=2_000_000)
        assert port.mem[built.result_address] == 1

    def test_checksum(self):
        built = checksum(0x200, words=4, result_address=0x300)
        port = _FlatPort()
        for i, value in enumerate((10, 20, 30, 40)):
            port.mem[0x200 + 4 * i] = value
        core = Core(0, port)
        core.load_program(built.program)
        core.run()
        assert port.mem[0x300] == 100

    def test_vector_add(self):
        built = vector_add(0x0, 0x100, 0x200, words=5)
        port = _FlatPort()
        for i in range(5):
            port.mem[0x0 + 4 * i] = i + 1
            port.mem[0x100 + 4 * i] = 10 * (i + 1)
        core = Core(0, port)
        core.load_program(built.program)
        core.run()
        for i in range(5):
            assert port.mem[0x200 + 4 * i] == 11 * (i + 1)

    def test_spin_counter(self):
        built = spin_counter(iterations=100, result_address=0x40)
        core, port = run_on_core(built)
        assert port.mem[0x40] == 100
        # ~2 instructions per loop iteration plus setup.
        assert 200 <= core.instructions_retired <= 260

    def test_vector_add_on_system_shared_memory(self, tiny_cfg):
        """The full-stack version: ranges live in another tile's banks."""
        system = WaferscaleSystem(tiny_cfg)
        mm = system.memory_map
        a = mm.shared_address((2, 2), 0, 0)
        b = mm.shared_address((2, 2), 1, 0)
        c = mm.shared_address((3, 3), 0, 0)
        for i in range(4):
            system.write_shared((2, 2), 0, 4 * i, i + 1)
            system.write_shared((2, 2), 1, 4 * i, 100)
        built = vector_add(a, b, c, words=4)
        tile = system.tile((0, 0))
        tile.load_program(0, built.program)
        tile.cores[0].run(max_cycles=100_000)
        for i in range(4):
            assert system.read_shared((3, 3), 0, 4 * i) == 101 + i

    def test_invalid_sizes(self):
        with pytest.raises(EmulatorError):
            memory_walk(0, words=0)
        with pytest.raises(EmulatorError):
            checksum(0, 0, 0x100)
        with pytest.raises(EmulatorError):
            vector_add(0, 0, 0, 0)
        with pytest.raises(EmulatorError):
            spin_counter(0, 0)


class TestDesignReport:
    def test_markdown_structure(self):
        text = design_report_markdown(
            SystemConfig(rows=4, cols=4), connectivity_trials=2
        )
        assert "# Waferscale design review" in text
        assert "ALL STAGES PASS" in text
        for stage in ("geometry", "power", "clock", "io", "network",
                      "dft", "substrate"):
            assert f"### {stage}" in text
        assert "| # Compute Chiplets | 16 |" in text

    def test_characterization_section(self):
        text = design_report_markdown(
            SystemConfig(rows=4, cols=4),
            connectivity_trials=2,
            include_characterization=True,
        )
        assert "Prototype characterization" in text
        assert "lock-step" in text

    def test_file_export(self, tmp_path):
        path = str(tmp_path / "report.md")
        export_design_report(
            path, SystemConfig(rows=4, cols=4), connectivity_trials=2
        )
        with open(path, encoding="utf-8") as handle:
            assert "design review" in handle.read()

    def test_empty_path_rejected(self):
        with pytest.raises(ReproError):
            export_design_report("", SystemConfig(rows=4, cols=4))


class TestNewCliCommands:
    def test_report_to_file(self, tmp_path, capsys):
        path = str(tmp_path / "out.md")
        code = main([
            "report", "--rows", "4", "--cols", "4", "--trials", "2",
            "--output", path,
        ])
        assert code == 0
        with open(path, encoding="utf-8") as handle:
            assert "design review" in handle.read()

    def test_bringup(self, capsys):
        code = main([
            "bringup", "--rows", "5", "--cols", "5", "--faults", "2", "--seed", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "usable tiles" in out

    def test_remap(self, capsys):
        code = main([
            "remap", "--rows", "6", "--cols", "6", "--faults", "3", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best logical grid" in out

    def test_lot(self, capsys):
        code = main(["lot", "--rows", "8", "--cols", "8", "--wafers", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pillar" in out
