"""Tests for the Fig. 6 connectivity engine and the kernel router."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.noc.connectivity import (
    disconnected_fraction,
    monte_carlo_disconnection,
    same_row_col_share,
)
from repro.noc.dualnetwork import NetworkId
from repro.noc.faults import FaultMap, random_fault_map
from repro.noc.kernel import KernelRouter
from repro.noc.routing import path_is_clear, xy_path, yx_path


class TestExactDisconnection:
    def test_no_faults_no_disconnection(self, small_cfg):
        result = disconnected_fraction(FaultMap(small_cfg))
        assert result.single == 0.0
        assert result.dual == 0.0

    def test_dual_never_worse_than_single(self, small_cfg):
        for seed in range(10):
            fmap = random_fault_map(small_cfg, 4, rng=seed)
            result = disconnected_fraction(fmap)
            assert result.dual <= result.single
            assert result.one_way_xy <= result.single

    def test_matches_brute_force_path_walks(self, small_cfg):
        """Vectorised fault geometry == literal path enumeration."""
        fmap = random_fault_map(small_cfg, 5, rng=42)
        healthy = fmap.healthy_tiles()
        pairs = blocked_single = blocked_dual = 0
        for src in healthy:
            for dst in healthy:
                if src == dst:
                    continue
                pairs += 1
                fwd = path_is_clear(xy_path(src, dst), fmap)
                rsp = path_is_clear(xy_path(dst, src), fmap)
                if not (fwd and rsp):
                    blocked_single += 1
                if not fwd and not rsp:
                    blocked_dual += 1
        result = disconnected_fraction(fmap)
        assert result.single == pytest.approx(blocked_single / pairs)
        assert result.dual == pytest.approx(blocked_dual / pairs)

    def test_other_l_is_yx_path(self, small_cfg):
        """The X-Y path B->A covers the same tiles as the Y-X path A->B."""
        fmap = random_fault_map(small_cfg, 6, rng=7)
        for src in [(0, 0), (2, 5), (7, 1)]:
            for dst in [(4, 4), (6, 2)]:
                assert set(xy_path(dst, src)) == set(yx_path(src, dst))

    def test_single_fault_disconnects_some_pairs(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(4, 4)}))
        result = disconnected_fraction(fmap)
        assert result.single > 0.0
        # A single interior fault only kills pairs sharing its row AND
        # column structure on both Ls — rare but nonzero (row/col pairs).
        assert result.dual > 0.0

    def test_dual_improvement_large(self, small_cfg):
        fmap = random_fault_map(small_cfg, 3, rng=11)
        result = disconnected_fraction(fmap)
        if result.dual > 0:
            assert result.dual_improvement > 3.0


class TestFig6MonteCarlo:
    """The headline Fig. 6 reproduction on the full 32x32 wafer."""

    @pytest.fixture(scope="class")
    def stats(self):
        return monte_carlo_disconnection(
            SystemConfig(), fault_counts=[1, 3, 5, 10], trials=15, seed=1
        )

    def test_five_faults_single_exceeds_12pct(self, stats):
        at5 = next(s for s in stats if s.fault_count == 5)
        assert at5.mean_single_pct > 12.0

    def test_five_faults_dual_below_2pct(self, stats):
        at5 = next(s for s in stats if s.fault_count == 5)
        assert at5.mean_dual_pct < 2.0

    def test_monotone_in_fault_count(self, stats):
        singles = [s.mean_single_pct for s in stats]
        duals = [s.mean_dual_pct for s in stats]
        assert singles == sorted(singles)
        assert duals == sorted(duals)

    def test_dual_always_below_single(self, stats):
        for s in stats:
            assert s.mean_dual_pct < s.mean_single_pct

    def test_improvement_shrinks_with_faults(self, stats):
        improvements = [s.improvement for s in stats]
        assert improvements[0] > improvements[-1]


class TestResidualDisconnections:
    def test_mostly_same_row_column(self):
        """Paper: residual dual-network losses are mostly row/column pairs.

        The claim holds at low fault *density* (5 faults in 2048 chiplets):
        off-row/column pairs need two independent faults to lose both Ls,
        which is rare when faults are sparse.  A 16x16 grid with 2 faults
        matches the paper's density regime while staying fast to test.
        """
        import numpy as np

        cfg = SystemConfig(rows=16, cols=16)
        shares = []
        for seed in range(8):
            fmap = random_fault_map(cfg, 2, rng=seed)
            if disconnected_fraction(fmap).dual > 0:
                shares.append(same_row_col_share(fmap))
        assert shares, "expected at least one map with residual losses"
        assert np.mean(shares) > 0.5


class TestKernelRouter:
    def test_balanced_assignment_on_clean_map(self, clean_map):
        kernel = KernelRouter(clean_map)
        report = kernel.assign_all_pairs()
        assert report.unreachable_pairs == 0
        assert report.balance > 0.9

    def test_assignment_stable(self, clean_map):
        kernel = KernelRouter(clean_map)
        first = kernel.assign((0, 0), (5, 5))
        second = kernel.assign((0, 0), (5, 5))
        assert first is second

    def test_single_path_pair_gets_that_network(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(0, 4)}))
        kernel = KernelRouter(fmap)
        assignment = kernel.assign((0, 0), (3, 7))
        assert assignment.network is NetworkId.YX

    def test_detour_found_for_blocked_row_pair(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(0, 4)}))
        kernel = KernelRouter(fmap)
        assignment = kernel.assign((0, 0), (0, 7), allow_detour=True)
        assert assignment.is_detour
        via = assignment.detour_via
        assert via is not None and via[0] != 0      # leaves the blocked row

    def test_no_detour_when_disallowed(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(0, 4)}))
        kernel = KernelRouter(fmap)
        assignment = kernel.assign((0, 0), (0, 7), allow_detour=False)
        assert not assignment.reachable

    def test_faulty_endpoint_unreachable(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(3, 3)}))
        kernel = KernelRouter(fmap)
        assert not kernel.assign((0, 0), (3, 3)).reachable

    def test_all_pairs_with_detours_on_faulty_map(self, tiny_cfg):
        fmap = FaultMap(tiny_cfg, frozenset({(0, 2)}))
        kernel = KernelRouter(fmap)
        report = kernel.assign_all_pairs(allow_detour=True)
        assert report.unreachable_pairs == 0
        assert report.total_pairs == 15 * 14

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_detour_legs_always_clear(self, seed):
        cfg = SystemConfig(rows=6, cols=6)
        fmap = random_fault_map(cfg, 4, rng=seed)
        kernel = KernelRouter(fmap)
        healthy = fmap.healthy_tiles()
        for src in healthy[:4]:
            for dst in healthy[-4:]:
                if src == dst:
                    continue
                a = kernel.assign(src, dst, allow_detour=True)
                if a.is_detour:
                    assert kernel.dual.connected(src, a.detour_via)
                    assert kernel.dual.connected(a.detour_via, dst)
