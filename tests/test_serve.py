"""End-to-end tests for the experiment service (``repro serve``).

The fixture boots a real :class:`~repro.serve.http.ServeHttpServer` on
an ephemeral port inside a background event-loop thread and drives it
with the stdlib :class:`~repro.serve.client.ServeClient` — the same
stack ``repro submit`` and the load bench use.  Covered here:

* submit → poll → result identical to a direct :func:`~repro.engine.
  jobs.run_job` execution;
* **coalescing proof**: N identical concurrent submissions dispatch
  exactly one fresh :class:`~repro.engine.core.ExperimentEngine` run
  (counted by an engine observer, not by the service's own counters);
* completed-run reuse, rate limiting (429), bounded-queue rejection
  and drain semantics (503), the JSONL event stream, and the
  ``repro/v1`` envelope on every response;
* :class:`~repro.serve.ratelimit.TokenBucket` and request-schema units;
* :class:`~repro.engine.cache.ResultCache` atomic-write behaviour under
  concurrent writers (the torn-pickle bugfix).
"""

import asyncio
import http.client
import json
import pickle
import threading

import pytest

from repro.cli import _jsonify
from repro.config import SystemConfig
from repro.engine import ExperimentEngine, JobSpec, job_key, run_job
from repro.engine.cache import ResultCache
from repro.engine.observe import EngineObserver
from repro.errors import ServeError
from repro.obs import validate_envelope_document
from repro.serve import (
    ExperimentService,
    ServeClient,
    ServeHttpServer,
    TokenBucket,
    parse_submit_body,
)

CFG = {"rows": 6, "cols": 6}


class FreshRunCounter(EngineObserver):
    """Counts engine runs that actually computed (not cache hits)."""

    def __init__(self):
        self.fresh = 0
        self.cached = 0
        self._lock = threading.Lock()

    def on_run_end(self, result):
        with self._lock:
            if result.from_cache:
                self.cached += 1
            else:
                self.fresh += 1


class ServerHarness:
    """One live server + service, owned by a background loop thread."""

    def __init__(self, **service_kwargs):
        self.service_kwargs = service_kwargs
        self.ready = threading.Event()
        self.service = None
        self.port = None
        self.loop = None
        self.counter = FreshRunCounter()
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.service = ExperimentService(**self.service_kwargs)
            self.service.engine.add_observer(self.counter)
            server = ServeHttpServer(self.service, port=0)
            await server.start()
            self.port = server.port
            self.loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self.ready.set()
            await self._stop.wait()
            await server.close()

        asyncio.run(main())

    def start(self):
        self._thread.start()
        assert self.ready.wait(10), "server did not start"
        return self

    def stop(self):
        if self.loop is not None:
            self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10)

    def client(self, **kwargs):
        return ServeClient(port=self.port, **kwargs)


@pytest.fixture()
def harness(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serve-cache"))
    h = ServerHarness(serve_workers=2, queue_size=16, cache=True).start()
    yield h
    h.stop()


class TestServeEndToEnd:
    def test_served_result_equals_direct_run(self, harness):
        client = harness.client()
        served = client.run(
            "fig6", config=CFG, params={"max_faults": 3}, trials=4, seed=7
        )
        direct = run_job(
            JobSpec(
                experiment="fig6",
                config=SystemConfig.from_dict(CFG),
                params={"max_faults": 3},
                seed=7,
                trials=4,
            ),
            ExperimentEngine(cache=None),
        )
        assert served == _jsonify(direct)

    def test_completed_run_reused_not_recomputed(self, harness):
        client = harness.client()
        first = client.submit("shmoo", config=CFG, seed=3)
        client.wait(first["id"])
        fresh_before = harness.counter.fresh
        second = client.submit("shmoo", config=CFG, seed=3)
        assert second["outcome"] == "completed"
        assert second["id"] == first["id"]
        assert second["state"] == "done"
        assert harness.counter.fresh == fresh_before

    def test_verify_flag_does_not_split_coalescing(self, harness):
        client = harness.client()
        spec_a = JobSpec("sleep", SystemConfig.from_dict(CFG), seed=11)
        spec_b = JobSpec("sleep", SystemConfig.from_dict(CFG), seed=11, verify=True)
        assert job_key(spec_a) == job_key(spec_b)
        first = client.submit("sleep", config=CFG, seed=11)
        client.wait(first["id"])
        again = client.submit("sleep", config=CFG, seed=11, verify=True)
        assert again["outcome"] == "completed"

    def test_unknown_experiment_is_400(self, harness):
        with pytest.raises(ServeError) as err:
            harness.client().submit("nope", config=CFG)
        assert err.value.status == 400

    def test_unknown_run_is_404(self, harness):
        with pytest.raises(ServeError) as err:
            harness.client().status("run-999999")
        assert err.value.status == 404

    def test_failed_job_reports_error(self, harness):
        client = harness.client()
        # rate=-1.0 makes the NoC traffic generator reject the run.
        sub = client.submit("noc", config=CFG, params={"rate": -1.0}, trials=1)
        with pytest.raises(ServeError) as err:
            client.wait(sub["id"])
        assert err.value.status == 500
        assert client.status(sub["id"])["state"] == "failed"

    def test_health_and_metrics_documents(self, harness):
        client = harness.client()
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        metrics = client.metrics()
        assert metrics["metrics"]["schema"] == "repro.metrics/1"
        assert "executed" in metrics["coalescing"]


class TestCoalescing:
    def test_identical_concurrent_submits_run_engine_once(self, harness):
        """The acceptance-criterion test: N submits -> one engine run."""
        n = 8
        client = harness.client()
        barrier = threading.Barrier(n)
        results, errors = [], []

        def fire():
            barrier.wait()
            try:
                results.append(
                    client.submit(
                        "sleep", config=CFG, params={"seconds": 0.1},
                        trials=6, seed=42,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=fire) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        assert len(results) == n
        ids = {r["id"] for r in results}
        assert len(ids) == 1, f"coalescing split into {ids}"
        final = client.wait(ids.pop())
        assert final["state"] == "done"
        assert final["waiters"] == n
        # Exactly one fresh engine run serviced all n requests.
        assert harness.counter.fresh == 1
        stats = harness.service.coalescing_stats()
        assert stats["executed"] == 1
        assert stats["coalesced_inflight"] + stats["result_hits"] == n - 1

    def test_distinct_specs_do_not_coalesce(self, harness):
        client = harness.client()
        a = client.submit("sleep", config=CFG, seed=1)
        b = client.submit("sleep", config=CFG, seed=2)
        assert a["id"] != b["id"]
        client.wait(a["id"])
        client.wait(b["id"])
        assert harness.counter.fresh == 2


class TestAdmissionControl:
    def test_rate_limit_429(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "rl-cache"))
        h = ServerHarness(
            serve_workers=1, queue_size=16, cache=False, rate=0.001, burst=2.0
        ).start()
        try:
            client = h.client(client_id="hammer")
            client.submit("sleep", config=CFG, seed=1)
            client.submit("sleep", config=CFG, seed=2)
            with pytest.raises(ServeError) as err:
                client.submit("sleep", config=CFG, seed=3)
            assert err.value.status == 429
            # Another client lane is unaffected.
            other = h.client(client_id="polite")
            other.submit("sleep", config=CFG, seed=4)
        finally:
            h.stop()

    def test_queue_full_503(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "qf-cache"))
        h = ServerHarness(serve_workers=1, queue_size=1, cache=False).start()
        try:
            client = h.client()
            statuses = []
            for seed in range(6):
                try:
                    client.submit(
                        "sleep", config=CFG, params={"seconds": 0.3},
                        trials=2, seed=seed,
                    )
                    statuses.append(202)
                except ServeError as exc:
                    statuses.append(exc.status)
            assert 503 in statuses, statuses
        finally:
            h.stop()

    def test_drain_rejects_new_and_finishes_inflight(self, harness):
        client = harness.client()
        running = client.submit(
            "sleep", config=CFG, params={"seconds": 0.2}, trials=4, seed=77
        )
        drain = client.drain(timeout=30)
        assert drain["drained"] is True
        assert drain["status"] == "draining"
        # The in-flight job completed during the drain.
        assert client.status(running["id"])["state"] == "done"
        with pytest.raises(ServeError) as err:
            client.submit("sleep", config=CFG, seed=78)
        assert err.value.status == 503
        # Already-completed results are still served while draining.
        again = client.submit(
            "sleep", config=CFG, params={"seconds": 0.2}, trials=4, seed=77
        )
        assert again["outcome"] == "completed"


class TestEventStream:
    def test_stream_is_ordered_and_terminal(self, harness):
        client = harness.client()
        sub = client.submit(
            "sleep", config=CFG, params={"seconds": 0.02}, trials=5, seed=5
        )
        events = list(client.events(sub["id"]))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert "started" in kinds
        assert kinds[-1] == "done"
        assert [e["seq"] for e in events] == list(range(len(events)))
        progress = [e for e in events if e["event"] == "progress"]
        assert progress, "no progress events streamed"
        assert all(0 < e["done"] <= e["total"] == 5 for e in progress)

    def test_stream_replays_after_completion(self, harness):
        client = harness.client()
        sub = client.submit("sleep", config=CFG, trials=2, seed=6)
        client.wait(sub["id"])
        kinds = [e["event"] for e in client.events(sub["id"])]
        assert kinds[0] == "queued" and kinds[-1] == "done"

    def test_stream_unknown_run_404(self, harness):
        with pytest.raises(ServeError) as err:
            list(harness.client().events("run-424242"))
        assert err.value.status == 404


class TestEnvelopes:
    @pytest.mark.parametrize(
        "method,path",
        [
            ("GET", "/v1/health"),
            ("GET", "/v1/metrics"),
            ("GET", "/v1/runs/run-000000"),   # 404 body is an envelope too
            ("POST", "/v1/runs"),             # 400 body (empty submit)
        ],
    )
    def test_every_response_is_an_envelope(self, harness, method, path):
        conn = http.client.HTTPConnection("127.0.0.1", harness.port)
        try:
            conn.request(method, path, body=b"{}" if method == "POST" else None)
            doc = json.loads(conn.getresponse().read())
        finally:
            conn.close()
        assert validate_envelope_document(doc) == []

    def test_event_stream_lines_are_envelopes(self, harness):
        client = harness.client()
        sub = client.submit("sleep", config=CFG, trials=2, seed=8)
        client.wait(sub["id"])
        conn = http.client.HTTPConnection("127.0.0.1", harness.port)
        try:
            conn.request("GET", f"/v1/runs/{sub['id']}/events")
            response = conn.getresponse()
            lines = [line for line in response.read().splitlines() if line.strip()]
        finally:
            conn.close()
        assert lines
        for line in lines:
            assert validate_envelope_document(json.loads(line)) == []


class TestSubmitSchema:
    def _spec(self, **overrides):
        doc = {"experiment": "sleep", "config": CFG}
        doc.update(overrides)
        return parse_submit_body(doc)

    def test_defaults(self):
        spec, client = self._spec()
        assert spec.trials == 10 and spec.seed == 0
        assert spec.engine == "fast" and spec.verify is False
        assert client == ""

    def test_unknown_field_rejected(self):
        with pytest.raises(ServeError, match="unknown request fields"):
            self._spec(bogus=1)

    def test_unknown_param_rejected(self):
        with pytest.raises(ServeError, match="no parameter"):
            self._spec(params={"bogus": 1})

    def test_param_type_coerced(self):
        spec, _ = self._spec(params={"seconds": "0.5"})
        assert spec.params["seconds"] == 0.5

    def test_bad_engine_rejected(self):
        with pytest.raises(ServeError, match="'engine'"):
            self._spec(engine="warp")

    def test_bad_trials_rejected(self):
        with pytest.raises(ServeError, match="'trials'"):
            self._spec(trials=0)
        with pytest.raises(ServeError, match="'trials'"):
            self._spec(trials="ten")

    def test_non_object_body_rejected(self):
        with pytest.raises(ServeError, match="JSON object"):
            parse_submit_body([1, 2, 3])


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert bucket.allow("c") and bucket.allow("c")
        assert not bucket.allow("c")
        now[0] = 1.0
        assert bucket.allow("c")
        assert not bucket.allow("c")

    def test_lanes_are_independent(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=lambda: 0.0)
        assert bucket.allow("a")
        assert not bucket.allow("a")
        assert bucket.allow("b")

    def test_zero_rate_disables(self):
        bucket = TokenBucket(rate=0.0, burst=1.0)
        assert not bucket.enabled
        assert all(bucket.allow("c") for _ in range(100))


class TestAtomicCache:
    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("ab" + "0" * 62, [1, 2, 3])
        assert not list((tmp_path / "cache").rglob("*.tmp"))

    def test_concurrent_writers_never_tear(self, tmp_path):
        """Readers always see a complete pickle, never a partial write."""
        cache = ResultCache(tmp_path / "cache")
        key = "cd" + "1" * 62
        payloads = [[i] * 2048 for i in range(8)]
        stop = threading.Event()
        failures = []

        def writer(payload):
            while not stop.is_set():
                cache.put(key, payload)

        def reader():
            while not stop.is_set():
                hit, values = cache.get(key)
                if hit and values not in payloads:
                    failures.append(values)

        threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(10)
        assert not failures
        hit, values = cache.get(key)
        assert hit and values in payloads

    def test_clear_sweeps_orphaned_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ef" + "2" * 62
        cache.put(key, [1])
        orphan = cache._path(key).parent / f"{key}.orphan.tmp"
        orphan.write_bytes(pickle.dumps([2]))
        cache.clear()
        assert not orphan.exists()
        assert not cache.get(key)[0]


class TestObservabilityEndpoints:
    """Prometheus exposition, content negotiation and sampled history."""

    @pytest.fixture()
    def obs_harness(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serve-cache"))
        h = ServerHarness(
            serve_workers=2, queue_size=16, cache=True,
            sample_interval_s=0.02,
            metrics_log=str(tmp_path / "samples.jsonl"),
        ).start()
        yield h
        h.stop()

    def test_prometheus_scrape_after_job(self, obs_harness):
        client = obs_harness.client()
        client.run("fig6", config=CFG, trials=2, seed=0)
        text = client.metrics_text()
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 1" in text
        assert "serve_jobs_executed_total 1" in text
        assert "# TYPE serve_queue_depth gauge" in text
        # Labeled engine cache counters survive with their labels.
        assert (
            'engine_cache_misses_total{experiment="noc.fig6_disconnection"}'
            in text
        )
        # Every line is either a comment or `name[{labels}] value`.
        for line in text.strip().splitlines():
            assert line.startswith("# ") or len(line.rsplit(" ", 1)) == 2

    def test_metrics_json_stays_default(self, obs_harness):
        client = obs_harness.client()
        doc = client.metrics()
        assert "metrics" in doc and "coalescing" in doc

    def test_prom_content_type_header(self, obs_harness):
        conn = http.client.HTTPConnection("127.0.0.1", obs_harness.port)
        try:
            conn.request("GET", "/v1/metrics", headers={"Accept": "text/plain"})
            response = conn.getresponse()
            assert response.status == 200
            ctype = response.getheader("Content-Type")
            assert ctype == "text/plain; version=0.0.4; charset=utf-8"
            response.read()
        finally:
            conn.close()

    def test_history_returns_sampled_series(self, obs_harness):
        import time

        client = obs_harness.client()
        client.run("fig6", config=CFG, trials=2, seed=1)
        time.sleep(0.1)  # a few sampler ticks
        history = client.history()
        assert history["samples_taken"] >= 2
        series = history["series"]
        assert "serve.queue_depth" in series
        assert "serve.requests" in series
        points = series["serve.requests"]
        assert points and all(len(p) == 2 for p in points)
        # Timestamps are monotonically non-decreasing within a ring.
        ts = [p[0] for p in points]
        assert ts == sorted(ts)

    def test_sampler_disabled_history_is_empty(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        h = ServerHarness(
            serve_workers=1, cache=None, sample_interval_s=0.0
        ).start()
        try:
            history = h.client().history()
            assert history["series"] == {}
            assert history["samples_taken"] == 0
        finally:
            h.stop()

    def test_metrics_log_written_for_top(self, obs_harness, tmp_path):
        import time

        from repro.obs.top import FileSource, render_frame

        time.sleep(0.08)
        frame = FileSource(str(tmp_path / "samples.jsonl")).fetch()
        assert frame.error is None
        assert "serve.queue_depth" in frame.series
        assert "[queue]" in render_frame(frame)
