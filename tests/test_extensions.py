"""Tests for the future-work extensions: TWV, DTC, thermal, CDC, MBIST."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.arch.membank import MemoryBank
from repro.clock.cdc import (
    ForwardedClockQuality,
    crossing_latency_cycles,
    required_fifo_depth,
    worst_chain_analysis,
)
from repro.config import SystemConfig
from repro.dft.mbist import (
    FaultKind,
    FaultyBank,
    InjectedFault,
    march_c_minus,
    mats_plus,
    mbist_runtime_s,
)
from repro.errors import ClockError, JtagError, PdnError
from repro.pdn.dtc import DtcUpgrade, dtc_upgrade_summary
from repro.pdn.twv import TwvTechnology, max_tile_power_w, solve_twv_delivery
from repro.thermal.grid import ThermalGrid, solve_thermal
from repro.thermal.limits import (
    max_power_per_tile_w,
    system_power_budget_w,
    thermal_headroom_c,
)
from repro.verify.strategies import (
    bit_positions,
    hop_counts,
    mbist_fault_kinds,
    word_offsets,
)


class TestTwv:
    def test_via_resistance_order(self):
        tech = TwvTechnology()
        # 700um deep, 50um diameter copper: a few milliohms.
        assert 1e-3 < tech.via_resistance_ohm < 20e-3

    def test_delivery_droop_tiny(self, paper_cfg):
        result = solve_twv_delivery(paper_cfg)
        assert result.tile_droop_v < 0.01
        assert result.delivered_voltage > 1.45

    def test_droop_position_independent(self, paper_cfg):
        assert solve_twv_delivery(paper_cfg).droop_uniform

    def test_prototype_sits_at_edge_delivery_wall(self, paper_cfg):
        """The design-point consistency result: 350mW/tile is the edge-
        delivery limit at the 1.4V LDO floor — which is the paper's
        operating point, and why higher power needs TWV."""
        limit = max_tile_power_w(paper_cfg, scheme="edge")
        assert limit == pytest.approx(paper_cfg.tile_peak_power_w, rel=0.05)

    def test_twv_scales_far_beyond_edge(self, paper_cfg):
        edge = max_tile_power_w(paper_cfg, scheme="edge")
        twv = max_tile_power_w(paper_cfg, scheme="twv")
        assert twv > 10 * edge

    def test_invalid_geometry(self):
        with pytest.raises(PdnError):
            TwvTechnology(depth_um=0)
        with pytest.raises(PdnError):
            TwvTechnology(pitch_um=10.0, diameter_um=50.0)
        with pytest.raises(PdnError):
            max_tile_power_w(scheme="wireless")

    def test_more_vias_less_droop(self, paper_cfg):
        few = solve_twv_delivery(paper_cfg, via_area_fraction=0.01)
        many = solve_twv_delivery(paper_cfg, via_area_fraction=0.20)
        assert many.tile_droop_v < few.tile_droop_v


class TestDtc:
    def test_footnote2_improvement(self, paper_cfg):
        summary = dtc_upgrade_summary(paper_cfg)
        assert summary["capacitance_gain_x"] > 10
        assert summary["droop_mv"] < 20
        assert summary["reclaimed_chiplet_area_mm2"] > 3.0

    def test_capacitance_scales_with_area(self, paper_cfg):
        small = DtcUpgrade(paper_cfg, dtc_area_fraction=0.1)
        large = DtcUpgrade(paper_cfg, dtc_area_fraction=0.4)
        assert large.capacitance_f == pytest.approx(4 * small.capacitance_f)

    def test_invalid_fraction(self, paper_cfg):
        with pytest.raises(PdnError):
            DtcUpgrade(paper_cfg, dtc_area_fraction=0.0)
        with pytest.raises(PdnError):
            DtcUpgrade(paper_cfg, dtc_area_fraction=1.5)


class TestThermal:
    def test_prototype_runs_cool(self, paper_cfg):
        solution = solve_thermal(paper_cfg)
        # 725W over 15,000mm2 with a cold plate: single-digit rise.
        assert solution.max_rise_c < 15.0

    def test_uniform_power_uniform_temperature(self, paper_cfg):
        solution = solve_thermal(paper_cfg)
        assert solution.gradient_c < 0.1

    def test_hotspot_follows_power(self, small_cfg):
        power = np.full((8, 8), 0.35)
        power[4, 4] = 3.5
        solution = solve_thermal(small_cfg, tile_power_w=power)
        assert solution.temperature_at((4, 4)) == pytest.approx(
            solution.max_temperature_c
        )
        assert solution.gradient_c > 0.1

    def test_lateral_spreading(self, small_cfg):
        power = np.zeros((8, 8))
        power[4, 4] = 5.0
        solution = solve_thermal(small_cfg, tile_power_w=power)
        # Neighbours get warmer than far corners: silicon spreads heat.
        assert solution.temperature_at((4, 5)) > solution.temperature_at((0, 0))

    def test_zero_power_is_ambient(self, small_cfg):
        solution = solve_thermal(small_cfg, tile_power_w=0.0, ambient_c=30.0)
        np.testing.assert_allclose(solution.temperatures_c, 30.0, rtol=1e-9)

    def test_linearity(self, small_cfg):
        one = solve_thermal(small_cfg, tile_power_w=0.5)
        two = solve_thermal(small_cfg, tile_power_w=1.0)
        assert two.max_rise_c == pytest.approx(2 * one.max_rise_c)

    def test_better_cooling_lower_rise(self, small_cfg):
        air = ThermalGrid(small_cfg, sink_h_w_per_m2_k=500.0).solve()
        liquid = ThermalGrid(small_cfg, sink_h_w_per_m2_k=5000.0).solve()
        assert liquid.max_rise_c < air.max_rise_c

    def test_headroom_and_budget(self, paper_cfg):
        assert thermal_headroom_c(paper_cfg) > 50.0
        budget_kw = system_power_budget_w(paper_cfg) / 1000.0
        assert budget_kw > 1.0      # well beyond the sub-kW prototype

    def test_max_power_consistent(self, paper_cfg):
        limit = max_power_per_tile_w(paper_cfg, tj_max_c=105.0, ambient_c=25.0)
        at_limit = solve_thermal(paper_cfg, tile_power_w=limit)
        assert at_limit.max_temperature_c == pytest.approx(105.0, abs=0.5)

    def test_invalid_inputs(self, small_cfg):
        with pytest.raises(PdnError):
            ThermalGrid(small_cfg, sink_h_w_per_m2_k=0)
        with pytest.raises(PdnError):
            solve_thermal(small_cfg, tile_power_w=-1.0)
        with pytest.raises(PdnError):
            max_power_per_tile_w(small_cfg, tj_max_c=20.0, ambient_c=25.0)


class TestCdc:
    def test_jitter_random_walk(self):
        q1 = ForwardedClockQuality(hops=16)
        q2 = ForwardedClockQuality(hops=64)
        assert q2.accumulated_jitter_rms_s == pytest.approx(
            2 * q1.accumulated_jitter_rms_s
        )

    def test_phase_delay_linear(self):
        q = ForwardedClockQuality(hops=10)
        assert q.phase_delay_s == pytest.approx(10 * q.hop_delay_s)

    def test_deep_chain_breaks_synchronous_budget(self):
        deep = ForwardedClockQuality(hops=62)
        assert not deep.synchronous_crossing_viable

    def test_shallow_chain_would_be_synchronous(self):
        shallow = ForwardedClockQuality(hops=4)
        assert shallow.synchronous_crossing_viable

    def test_fifo_depth_power_of_two_and_small(self):
        for hops in (1, 16, 62):
            depth = required_fifo_depth(ForwardedClockQuality(hops=hops))
            assert depth & (depth - 1) == 0
            assert depth <= 16      # footnote 3: a small FIFO suffices

    def test_crossing_latency(self):
        assert crossing_latency_cycles() == 3
        with pytest.raises(ClockError):
            crossing_latency_cycles(synchronizer_stages=1)

    def test_worst_chain_analysis(self):
        analysis = worst_chain_analysis()
        assert analysis["hops"] == 62.0
        assert analysis["synchronous_viable"] == 0.0
        assert analysis["fifo_depth"] <= 16

    @given(hops=hop_counts())
    @settings(max_examples=30)
    def test_fifo_depth_monotone(self, hops):
        d1 = required_fifo_depth(ForwardedClockQuality(hops=hops))
        d2 = required_fifo_depth(ForwardedClockQuality(hops=hops + 50))
        assert d2 >= d1


class TestMbist:
    def test_clean_bank_passes_both(self):
        bank = MemoryBank(8192)
        assert march_c_minus(bank).passed
        assert mats_plus(bank).passed

    @pytest.mark.parametrize("kind", list(FaultKind))
    def test_march_c_detects_all_kinds(self, kind):
        bank = FaultyBank(MemoryBank(4096), [InjectedFault(kind, 256, 7)])
        result = march_c_minus(bank)
        assert not result.passed
        assert 256 in result.failing_offsets

    def test_mats_detects_stuck_at(self):
        for kind in (FaultKind.STUCK_AT_0, FaultKind.STUCK_AT_1):
            bank = FaultyBank(MemoryBank(4096), [InjectedFault(kind, 64, 0)])
            assert not mats_plus(bank).passed

    def test_multiple_faults_all_located(self):
        faults = [
            InjectedFault(FaultKind.STUCK_AT_0, 0, 3),
            InjectedFault(FaultKind.STUCK_AT_1, 512, 31),
        ]
        result = march_c_minus(FaultyBank(MemoryBank(4096), faults))
        assert result.failing_offsets == [0, 512]

    def test_operation_count_10n(self):
        bank = MemoryBank(4096)
        result = march_c_minus(bank)
        assert result.operations == 10 * (4096 // 4)

    def test_mats_operation_count_5n(self):
        result = mats_plus(MemoryBank(4096))
        assert result.operations == 5 * (4096 // 4)

    def test_runtime_estimate(self):
        # One 128KB bank at 300MHz, 10 ops/word: ~1.1ms.
        runtime = mbist_runtime_s(128 * 1024, 300e6)
        assert runtime == pytest.approx(32768 * 10 / 300e6)

    def test_invalid_fault(self):
        with pytest.raises(JtagError):
            InjectedFault(FaultKind.STUCK_AT_0, 0, 32)
        with pytest.raises(JtagError):
            InjectedFault(FaultKind.STUCK_AT_0, 3, 0)

    @given(
        offset_words=word_offsets(),
        bit=bit_positions(),
        kind=mbist_fault_kinds(),
    )
    @settings(max_examples=25, deadline=None)
    def test_march_c_always_detects_property(self, offset_words, bit, kind):
        fault = InjectedFault(kind, offset_words * 4, bit)
        bank = FaultyBank(MemoryBank(4096), [fault])
        result = march_c_minus(bank)
        assert not result.passed
        assert fault.offset in result.failing_offsets
