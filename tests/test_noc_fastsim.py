"""Differential tests: the fast NoC engine against the golden reference.

The active-set, struct-of-arrays engine (``engine="fast"``) must be
*bit-identical* to the object-model reference engine: same delivered
sets, same latency list (in delivery order), same drops, stalls and
cycle counts — across fault maps, traffic patterns, FIFO depths and
request/response workloads.  Every test here drives both engines over
identical traffic and compares reports field-for-field.
"""

import pytest

from repro.config import SystemConfig
from repro.errors import NetworkError
from repro.noc.dualnetwork import NetworkId
from repro.noc.fastsim import FastNocSimulator
from repro.noc.faults import FaultMap, random_fault_map
from repro.noc.loadlatency import measure_load_latency
from repro.noc.packets import Packet, PacketKind
from repro.noc.router import Port
from repro.noc.routing import (
    PORT_LOCAL,
    RoutingPolicy,
    build_port_lut,
    dor_port_code,
    next_hop,
)
from repro.noc.simulator import ENGINES, NocSimulator
from repro.workloads.traffic import TrafficPattern, generate_traffic

ENGINE_PAIR = ("reference", "fast")


def _drive(engine, cfg, fault_map, fifo_depth, traffic, kind=PacketKind.REQUEST):
    """Run one engine over (cycle, packet) traffic; inject at the offered
    cycle, then drain."""
    sim = NocSimulator(
        cfg, fault_map=fault_map, fifo_depth=fifo_depth, engine=engine
    )
    for cycle, packet in traffic:
        while sim.cycle < cycle:
            sim.step()
        if kind is not PacketKind.REQUEST:
            packet = Packet(kind=kind, src=packet.src, dst=packet.dst)
        sim.inject(packet, NetworkId.XY)
    sim.drain(max_cycles=100_000)
    return sim


def _assert_equivalent(ref, fast):
    """Field-for-field equality of the two engines' observable state."""
    assert ref.report() == fast.report()
    assert ref.cycle == fast.cycle
    assert ref.link_stalls == fast.link_stalls
    assert ref.dropped_in_flight == fast.dropped_in_flight
    assert ref.injected_count == fast.injected_count
    # Delivery *order* must match too (packet ids differ by run, so
    # compare the observable per-packet tuple sequence).
    ref_seq = [
        (p.src, p.dst, p.kind, p.injected_cycle, p.delivered_cycle)
        for p in ref.delivered_packets
    ]
    fast_seq = [
        (p.src, p.dst, p.kind, p.injected_cycle, p.delivered_cycle)
        for p in fast.delivered_packets
    ]
    assert ref_seq == fast_seq


class TestRoutingTables:
    """The precomputed LUT agrees with the incremental next_hop decision."""

    @pytest.mark.parametrize("policy", list(RoutingPolicy))
    @pytest.mark.parametrize("rows,cols", [(1, 1), (1, 5), (4, 4), (3, 7)])
    def test_lut_matches_next_hop(self, rows, cols, policy):
        lut = build_port_lut(rows, cols, policy)
        port_order = list(Port)
        for cur in range(rows * cols):
            cr, cc = divmod(cur, cols)
            for dst in range(rows * cols):
                dr, dc = divmod(dst, cols)
                code = int(lut[cur, dst])
                assert code == dor_port_code(cr, cc, dr, dc, policy)
                if cur == dst:
                    assert code == PORT_LOCAL
                    continue
                hop = next_hop((cr, cc), (dr, dc), policy)
                # Port codes are list(Port) indices by construction.
                assert port_order[code].value in {
                    "north", "south", "west", "east"
                }
                step = {
                    0: (-1, 0), 1: (1, 0), 2: (0, -1), 3: (0, 1)
                }[code]
                assert (cr + step[0], cc + step[1]) == hop

    def test_bad_dimensions_rejected(self):
        from repro.errors import RoutingError

        with pytest.raises(RoutingError):
            build_port_lut(0, 4, RoutingPolicy.XY)


class TestEngineSelection:
    def test_fast_engine_is_subclass_via_factory(self, small_cfg):
        sim = NocSimulator(small_cfg, engine="fast")
        assert isinstance(sim, FastNocSimulator)
        assert isinstance(sim, NocSimulator)
        assert sim.engine == "fast"

    def test_reference_is_default(self, small_cfg):
        sim = NocSimulator(small_cfg)
        assert sim.engine == "reference"
        assert not isinstance(sim, FastNocSimulator)
        assert "reference" in ENGINES and "fast" in ENGINES

    def test_unknown_engine_rejected(self, small_cfg):
        with pytest.raises(NetworkError):
            NocSimulator(small_cfg, engine="warp")

    def test_fast_engine_validates_fifo_depth(self, small_cfg):
        with pytest.raises(NetworkError):
            NocSimulator(small_cfg, fifo_depth=0, engine="fast")


class TestDifferentialEquivalence:
    """The acceptance matrix: patterns x fifo depths x fault maps."""

    @pytest.mark.parametrize("fifo_depth", [1, 2, 4])
    @pytest.mark.parametrize(
        "pattern",
        [TrafficPattern.UNIFORM, TrafficPattern.TRANSPOSE, TrafficPattern.HOTSPOT],
    )
    @pytest.mark.parametrize("fault_seed", [None, 11, 23])
    def test_request_response_workload(self, pattern, fifo_depth, fault_seed):
        cfg = SystemConfig(rows=6, cols=6)
        fmap = (
            random_fault_map(cfg, 4, rng=fault_seed)
            if fault_seed is not None
            else None
        )
        sims = {}
        for engine in ENGINE_PAIR:
            traffic = generate_traffic(cfg, pattern, 0.08, 40, seed=5)
            sims[engine] = _drive(engine, cfg, fmap, fifo_depth, traffic)
        _assert_equivalent(sims["reference"], sims["fast"])

    @pytest.mark.parametrize("fifo_depth", [1, 4])
    def test_one_way_response_workload(self, fifo_depth):
        """RESPONSE-kind packets ride one network and spawn no replies."""
        cfg = SystemConfig(rows=6, cols=6)
        sims = {}
        for engine in ENGINE_PAIR:
            traffic = generate_traffic(
                cfg, TrafficPattern.UNIFORM, 0.1, 30, seed=9
            )
            sims[engine] = _drive(
                engine, cfg, None, fifo_depth, traffic, kind=PacketKind.RESPONSE
            )
        _assert_equivalent(sims["reference"], sims["fast"])
        assert sims["fast"].report().responses_delivered == (
            sims["fast"].report().delivered
        )

    @pytest.mark.parametrize("fault_seed", [2, 3, 5, 8])
    def test_randomized_fault_maps_with_in_flight_drops(self, fault_seed):
        """Dense random faults force mid-path drops on both engines."""
        cfg = SystemConfig(rows=8, cols=8)
        fmap = random_fault_map(cfg, 10, rng=fault_seed)
        sims = {}
        for engine in ENGINE_PAIR:
            traffic = generate_traffic(
                cfg, TrafficPattern.UNIFORM, 0.1, 40, seed=fault_seed
            )
            sims[engine] = _drive(engine, cfg, fmap, 2, traffic)
        _assert_equivalent(sims["reference"], sims["fast"])
        # The scenario must actually exercise the drop path.
        assert sims["fast"].dropped_in_flight > 0

    def test_saturating_hotspot(self):
        """Heavy hotspot load: backpressure, stalls, long queues."""
        cfg = SystemConfig(rows=6, cols=6)
        sims = {}
        for engine in ENGINE_PAIR:
            traffic = generate_traffic(
                cfg, TrafficPattern.HOTSPOT, 0.4, 30, seed=13
            )
            sims[engine] = _drive(engine, cfg, None, 2, traffic)
        _assert_equivalent(sims["reference"], sims["fast"])
        assert sims["fast"].link_stalls > 0

    def test_telemetry_metrics_match(self):
        """With live telemetry both engines record identical metrics —
        occupancy histograms (incremental counters vs scans), stall and
        delivery counters, and the per-router report() snapshot."""
        from repro.obs import Telemetry

        cfg = SystemConfig(rows=6, cols=6)
        fmap = random_fault_map(cfg, 3, rng=4)
        snapshots = {}
        for engine in ENGINE_PAIR:
            tel = Telemetry()
            traffic = generate_traffic(cfg, TrafficPattern.UNIFORM, 0.1, 30, seed=7)
            sim = NocSimulator(
                cfg, fault_map=fmap, fifo_depth=2, telemetry=tel, engine=engine
            )
            for cycle, packet in traffic:
                while sim.cycle < cycle:
                    sim.step()
                sim.inject(packet, NetworkId.XY)
            sim.drain(max_cycles=100_000)
            sim.report()
            snapshots[engine] = tel.metrics.to_dict()
        assert snapshots["reference"] == snapshots["fast"]

    def test_load_latency_curve_matches(self):
        """The sweep API produces the same curve on either engine."""
        cfg = SystemConfig(rows=6, cols=6)
        curves = {
            engine: measure_load_latency(
                cfg, rates=[0.02, 0.1], warm_cycles=30, seed=1, engine=engine
            )
            for engine in ENGINE_PAIR
        }
        assert curves["reference"].points == curves["fast"].points


class TestFastEngineState:
    """Fast-engine-specific observable state."""

    def test_idle_is_counter_based(self, small_cfg):
        for engine in ENGINE_PAIR:
            sim = NocSimulator(small_cfg, engine=engine)
            assert sim.idle()
            sim.inject(
                Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(0, 3)),
                NetworkId.XY,
            )
            sim.step()
            assert not sim.idle()
            sim.drain()
            assert sim.idle()
            assert sim._in_flight == 0

    def test_router_occupancy_and_forwarded(self, small_cfg):
        sim = NocSimulator(small_cfg, engine="fast")
        sim.inject(
            Packet(kind=PacketKind.RESPONSE, src=(0, 0), dst=(0, 2)),
            NetworkId.XY,
        )
        sim.step()
        # Injection and the first hop happen in the same cycle.
        assert sim.router_occupancy(NetworkId.XY, (0, 1)) == 1
        assert sim.router_occupancy(NetworkId.YX, (0, 1)) == 0
        sim.drain()
        assert sim.router_occupancy(NetworkId.XY, (0, 1)) == 0
        # src, intermediate, and dst routers all forwarded the packet.
        assert sim.router_forwarded(NetworkId.XY, (0, 0)) == 1
        assert sim.router_forwarded(NetworkId.XY, (0, 1)) == 1
        assert sim.router_forwarded(NetworkId.XY, (0, 2)) == 1

    def test_faulty_flat_indices(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(0, 1), (2, 3), (7, 7)}))
        assert fmap.faulty_flat_indices() == [1, 2 * 8 + 3, 7 * 8 + 7]

    def test_faulty_source_pending_injection_dropped(self, small_cfg):
        """A packet already queued when its source is absent is dropped
        identically by both engines (the router-is-None branch)."""
        fmap = FaultMap(small_cfg, frozenset({(4, 4)}))
        for engine in ENGINE_PAIR:
            sim = NocSimulator(small_cfg, fault_map=fmap, engine=engine)
            # inject() refuses faulty endpoints up front.
            ok = sim.inject(
                Packet(kind=PacketKind.REQUEST, src=(4, 4), dst=(0, 0)),
                NetworkId.XY,
            )
            assert not ok
            assert sim.dropped_unreachable == 1

    def test_injection_backpressure_requeues(self, small_cfg):
        """More offered packets than LOCAL credit: the surplus waits."""
        for engine in ENGINE_PAIR:
            sim = NocSimulator(small_cfg, fifo_depth=1, engine=engine)
            for _ in range(3):
                sim.inject(
                    Packet(kind=PacketKind.RESPONSE, src=(0, 0), dst=(5, 5)),
                    NetworkId.XY,
                )
            sim.step()
            assert sim.injected_count == 1
            assert len(sim._pending_injections) == 2
            sim.drain()
            assert sim.injected_count == 3
            assert sim.report().delivered == 3


class TestPercentileCache:
    """SimulationReport caches its sorted latencies; report() reuses it."""

    def test_percentile_values_unchanged_by_cache(self):
        from repro.noc.simulator import SimulationReport

        latencies = [9, 1, 5, 3, 7]
        report = SimulationReport(
            cycles=10, injected=5, delivered=5, responses_delivered=0,
            dropped_unreachable=0, latencies=list(latencies),
        )
        first = report.latency_percentile(50)
        assert report._sorted_latencies == sorted(latencies)
        # Cached object is reused on the second query.
        cached = report._sorted_latencies
        assert report.latency_percentile(50) == first == 5.0
        assert report._sorted_latencies is cached
        # Growing the latency list invalidates by length.
        report.latencies.append(11)
        assert report.latency_percentile(100) == 11.0

    def test_cache_excluded_from_equality(self):
        from repro.noc.simulator import SimulationReport

        def make():
            return SimulationReport(
                cycles=10, injected=2, delivered=2, responses_delivered=0,
                dropped_unreachable=0, latencies=[4, 2],
            )

        a, b = make(), make()
        a.latency_percentile(99)    # populate a's cache only
        assert a == b

    def test_simulator_report_reuses_sort(self, small_cfg):
        sim = NocSimulator(small_cfg, engine="fast")
        for col in range(1, 6):
            sim.inject(
                Packet(kind=PacketKind.RESPONSE, src=(0, 0), dst=(0, col)),
                NetworkId.XY,
            )
        sim.drain()
        first = sim.report()
        assert first.p99_latency > 0
        second = sim.report()
        # Nothing new delivered: the sorted order carries over.
        assert second._sorted_latencies is first._sorted_latencies
        assert second == first
