"""Tests for repro.substrate (stack, netlist, router, DRC, degraded, fanout)."""

import pytest

from repro.config import SystemConfig
from repro.errors import DrcError, RoutingError, SubstrateError
from repro.substrate.degraded import degraded_mode_report
from repro.substrate.drc import assert_clean, run_drc
from repro.substrate.fanout import plan_edge_fanout
from repro.substrate.netlist import (
    ChannelKind,
    NetClass,
    extract_netlist,
    netlist_summary,
)
from repro.substrate.router import SubstrateRouter
from repro.substrate.stack import LayerRole, default_stack
from repro.substrate.stitching import (
    check_constant_pitch,
    intra_reticle_geometry,
    overlay_tolerance_um,
    stitch_geometry,
    wire_geometry_for_net,
)


@pytest.fixture(scope="module")
def cfg6():
    return SystemConfig(rows=6, cols=6)


@pytest.fixture(scope="module")
def routed6(cfg6):
    router = SubstrateRouter(cfg6)
    nets = extract_netlist(cfg6)
    return router.route(nets), nets


class TestStack:
    def test_four_layers_two_roles(self):
        stack = default_stack()
        assert len(stack.layers) == 4
        assert len(stack.power_layers) == 2
        assert len(stack.signal_layers) == 2

    def test_edge_density_400_per_mm(self):
        assert default_stack().edge_wire_density_per_mm() == pytest.approx(400.0)

    def test_signal_pitch_5um(self):
        for layer in default_stack().signal_layers:
            assert layer.pitch_um == pytest.approx(5.0)

    def test_single_layer_stack(self):
        stack = default_stack(signal_layers=1)
        assert len(stack.signal_layers) == 1
        assert stack.edge_wire_density_per_mm() == pytest.approx(200.0)

    def test_bad_layer_index(self):
        with pytest.raises(SubstrateError):
            default_stack().signal_layer(3)

    def test_invalid_layer_count(self):
        with pytest.raises(SubstrateError):
            default_stack(signal_layers=0)


class TestStitching:
    def test_constant_pitch_rule(self):
        check_constant_pitch()
        w1, s1 = intra_reticle_geometry()
        w2, s2 = stitch_geometry()
        assert (w1, s1) == (2.0, 3.0)
        assert (w2, s2) == (3.0, 2.0)

    def test_geometry_selection(self):
        assert wire_geometry_for_net(True) == stitch_geometry()
        assert wire_geometry_for_net(False) == intra_reticle_geometry()

    def test_fatter_wire_more_overlay_tolerance(self):
        assert overlay_tolerance_um(3.0) > overlay_tolerance_um(2.0)

    def test_overlay_tolerance_floor(self):
        assert overlay_tolerance_um(1.0, min_overlap_um=1.5) == 0.0


class TestNetlist:
    def test_summary_classes(self, cfg6):
        summary = netlist_summary(extract_netlist(cfg6))
        assert summary["mesh_link"] == 2 * 6 * 5 * 400
        assert summary["bank_essential"] > 0
        assert summary["bank_extended"] > summary["bank_essential"]
        assert summary["total"] == sum(v for k, v in summary.items() if k != "total")

    def test_essential_classification(self, cfg6):
        nets = extract_netlist(cfg6)
        for net in nets:
            if net.net_class in (NetClass.MESH_LINK, NetClass.CLOCK, NetClass.TEST):
                assert net.essential
            if net.net_class is NetClass.BANK_EXTENDED:
                assert not net.essential

    def test_intra_tile_nets_self_referential(self, cfg6):
        for net in extract_netlist(cfg6):
            if net.channel is ChannelKind.INTRA_TILE:
                assert net.tile_a == net.tile_b
            else:
                assert net.tile_a != net.tile_b

    def test_empty_summary_rejected(self):
        with pytest.raises(SubstrateError):
            netlist_summary([])


class TestRouter:
    def test_all_nets_route_with_two_layers(self, routed6):
        result, nets = routed6
        assert result.success
        assert result.routed_count == len(nets)

    def test_extended_nets_on_layer_2(self, routed6):
        result, _ = routed6
        for wire in result.wires:
            if wire.net.net_class is NetClass.BANK_EXTENDED:
                assert wire.layer == 2
            if wire.net.essential:
                assert wire.layer == 1

    def test_no_channel_overflow(self, routed6):
        result, _ = routed6
        assert result.max_utilization <= 1.0

    def test_wirelength_positive(self, routed6):
        result, _ = routed6
        assert result.total_wirelength_mm > 0
        for wire in result.wires:
            assert wire.length_mm >= 0

    def test_stitch_wires_on_reticle_boundaries(self):
        # 12x12 spans two reticle columns (12-wide) and two rows (6-tall).
        cfg = SystemConfig(rows=12, cols=12)
        stitches = [
            w
            for w in SubstrateRouter(cfg).route(extract_netlist(cfg)).wires
            if w.crosses_stitch
        ]
        assert stitches
        for wire in stitches:
            assert (wire.width_um, wire.space_um) == stitch_geometry()

    def test_capacity_overflow_raises_for_essential(self):
        cfg = SystemConfig(rows=2, cols=2, link_width_bits=4000,
                           packet_width_bits=100,
                           ios_per_compute_chiplet=20000)
        router = SubstrateRouter(cfg)
        with pytest.raises(RoutingError):
            router.route(extract_netlist(cfg))


class TestDrc:
    def test_clean_routing_passes(self, routed6):
        result, _ = routed6
        report = run_drc(result)
        assert report.clean
        assert report.wires_checked == result.routed_count
        assert_clean(report)

    def test_tampered_wire_caught(self, routed6):
        import dataclasses

        result, _ = routed6
        bad_wire = dataclasses.replace(result.wires[0], width_um=0.5, space_um=4.5)
        tampered = dataclasses.replace(result) if False else result
        saved = result.wires[0]
        result.wires[0] = bad_wire
        try:
            report = run_drc(result)
            assert not report.clean
            assert "min-width" in report.by_rule()
            with pytest.raises(DrcError):
                assert_clean(report)
        finally:
            result.wires[0] = saved

    def test_track_overlap_caught(self, routed6):
        import dataclasses

        result, _ = routed6
        dup = dataclasses.replace(result.wires[1], track=result.wires[0].track,
                                  net=result.wires[0].net)
        result.wires.append(dup)
        try:
            report = run_drc(result)
            assert "track-overlap" in report.by_rule()
        finally:
            result.wires.pop()


class TestDegradedMode:
    def test_single_layer_still_functional(self, cfg6):
        report = degraded_mode_report(cfg6)
        assert report.functional
        assert report.network_intact and report.clock_intact and report.test_intact

    def test_60pct_memory_loss(self, cfg6):
        report = degraded_mode_report(cfg6)
        assert report.shared_memory_loss_fraction == pytest.approx(0.6)

    def test_remaining_shared_capacity(self, cfg6):
        report = degraded_mode_report(cfg6)
        assert report.shared_memory_bytes == 36 * 2 * 128 * 1024

    def test_unrouted_are_only_extended_banks(self, cfg6):
        report = degraded_mode_report(cfg6)
        assert report.routing.unrouted
        assert all(
            n.net_class is NetClass.BANK_EXTENDED for n in report.routing.unrouted
        )


class TestFanout:
    def test_plan_builds_and_meets_density(self, cfg6):
        fanout = plan_edge_fanout(cfg6)
        assert fanout.density_ok()
        assert fanout.total_edge_wires > 0

    def test_row_chain_ends_have_jtag(self, cfg6):
        fanout = plan_edge_fanout(cfg6)
        west_bundles = [b for b in fanout.bundles if b.tile[1] == 0]
        assert all(b.jtag_signals > 0 for b in west_bundles)

    def test_sides_partition_bundles(self, cfg6):
        fanout = plan_edge_fanout(cfg6)
        assert sum(fanout.wires_per_side().values()) == fanout.total_edge_wires

    def test_full_wafer_fanout(self, paper_cfg):
        assert plan_edge_fanout(paper_cfg).density_ok()


class TestConnectors:
    def test_paper_config_feasible(self, paper_cfg):
        from repro.substrate.connectors import plan_connectors

        plan = plan_connectors(paper_cfg)
        assert plan.feasible
        assert 0.0 < plan.utilization <= 1.0

    def test_power_pins_cover_290a(self, paper_cfg):
        from repro.substrate.connectors import plan_connectors

        plan = plan_connectors(paper_cfg)
        assert plan.power_pins * plan.technology.amps_per_power_pin >= 290

    def test_signal_pins_cover_row_chains(self, paper_cfg):
        from repro.substrate.connectors import plan_connectors

        plan = plan_connectors(paper_cfg)
        assert plan.signal_pins >= 32 * 2 * 6

    def test_weak_connector_infeasible(self, paper_cfg):
        from repro.substrate.connectors import ConnectorTechnology, plan_connectors

        weak = ConnectorTechnology(
            pin_pitch_mm=4.0, amps_per_power_pin=0.5, rows=1
        )
        plan = plan_connectors(paper_cfg, weak)
        assert not plan.feasible

    def test_invalid_technology(self):
        from repro.substrate.connectors import ConnectorTechnology

        with pytest.raises(SubstrateError):
            ConnectorTechnology(pin_pitch_mm=0)
        with pytest.raises(SubstrateError):
            ConnectorTechnology(rows=0)

    def test_tiny_edge_rejected(self):
        from repro.substrate.connectors import ConnectorTechnology

        tech = ConnectorTechnology(body_overhead_mm=100.0)
        with pytest.raises(SubstrateError):
            tech.pins_per_edge(50.0)
