"""Checkpoint/restore determinism: resuming must be unobservable.

The contract: run K cycles, ``save_state``, ``load_state`` (same or a
different engine, same or a fresh process), run K more — the result must
equal an uninterrupted 2K-cycle run *field for field*, including latency
lists in delivery order.  Tampered or truncated checkpoint files must be
rejected with :class:`~repro.errors.CheckpointError`, never loaded.
"""

import json
import subprocess
import sys
import zipfile
from pathlib import Path

import pytest

from repro.config import SystemConfig
from repro.errors import CheckpointError
from repro.noc.checkpoint import read_checkpoint_manifest
from repro.noc.dualnetwork import NetworkId
from repro.noc.faults import random_fault_map
from repro.noc.simulator import NocSimulator
from repro.workloads.traffic import TrafficPattern, generate_traffic

ENGINES_UNDER_TEST = ("fast", "vector")


def _drive_window(sim, traffic, start, stop):
    """Inject the schedule entries in [start, stop) and step to `stop`."""
    for cycle, packet in traffic:
        if cycle < start or cycle >= stop:
            continue
        while sim.cycle < cycle:
            sim.step()
        sim.inject(packet, NetworkId.XY)
    while sim.cycle < stop:
        sim.step()


def _observable(sim):
    return (
        sim.report(),
        sim.cycle,
        sim.link_stalls,
        sim.injected_count,
        [
            (p.src, p.dst, p.kind, p.injected_cycle, p.delivered_cycle)
            for p in sim.delivered_packets
        ],
    )


class TestCheckpointDeterminism:
    """K cycles + checkpoint + K more == uninterrupted 2K, every engine."""

    @pytest.mark.parametrize("engine", ENGINES_UNDER_TEST)
    def test_split_run_equals_uninterrupted(self, engine, tmp_path):
        cfg = SystemConfig(rows=8, cols=8)
        fmap = random_fault_map(cfg, 5, rng=3)
        k = 40

        def traffic():
            return generate_traffic(
                cfg, TrafficPattern.UNIFORM, 0.1, 2 * k, seed=21
            )

        whole = NocSimulator(cfg, fault_map=fmap, engine=engine)
        _drive_window(whole, traffic(), 0, 2 * k)
        whole.drain(max_cycles=100_000)

        first = NocSimulator(cfg, fault_map=fmap, engine=engine)
        _drive_window(first, traffic(), 0, k)
        path = tmp_path / "mid.npz"
        first.save_state(path)

        second = NocSimulator.load_state(path)
        assert second.engine == engine
        assert second.cycle == k
        _drive_window(second, traffic(), k, 2 * k)
        second.drain(max_cycles=100_000)

        assert _observable(second) == _observable(whole)

    @pytest.mark.parametrize("engine_pair", [("fast", "vector"), ("vector", "fast")])
    def test_cross_engine_restore(self, engine_pair, tmp_path):
        """Halt on one engine, resume on the other: still bit-identical."""
        save_engine, resume_engine = engine_pair
        cfg = SystemConfig(rows=8, cols=8)
        k = 30

        def traffic():
            return generate_traffic(
                cfg, TrafficPattern.TRANSPOSE, 0.1, 2 * k, seed=8
            )

        whole = NocSimulator(cfg, engine=resume_engine)
        _drive_window(whole, traffic(), 0, 2 * k)
        whole.drain(max_cycles=100_000)

        first = NocSimulator(cfg, engine=save_engine)
        _drive_window(first, traffic(), 0, k)
        path = tmp_path / "cross.npz"
        first.save_state(path)

        second = NocSimulator.load_state(path, engine=resume_engine)
        assert second.engine == resume_engine
        _drive_window(second, traffic(), k, 2 * k)
        second.drain(max_cycles=100_000)
        assert _observable(second) == _observable(whole)

    def test_manifest_round_trips_extra(self, tmp_path):
        cfg = SystemConfig(rows=4, cols=4)
        sim = NocSimulator(cfg, engine="fast")
        path = tmp_path / "meta.npz"
        sim.save_state(path, extra={"pattern": "uniform", "rate": 0.05})
        manifest = read_checkpoint_manifest(path)
        assert manifest["extra"] == {"pattern": "uniform", "rate": 0.05}
        assert manifest["engine"] == "fast"


class TestCorruptedCheckpoints:
    def _checkpoint(self, tmp_path) -> Path:
        cfg = SystemConfig(rows=4, cols=4)
        sim = NocSimulator(cfg, engine="vector")
        _drive_window(
            sim,
            generate_traffic(cfg, TrafficPattern.UNIFORM, 0.2, 20, seed=2),
            0,
            20,
        )
        path = tmp_path / "good.npz"
        sim.save_state(path)
        return path

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            NocSimulator.load_state(tmp_path / "nope.npz")

    def test_truncated_file_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            NocSimulator.load_state(path)

    def test_tampered_manifest_rejected(self, tmp_path):
        """Flipping a counter in the manifest breaks the state hash."""
        path = self._checkpoint(tmp_path)
        with zipfile.ZipFile(path) as zf:
            names = {n: zf.read(n) for n in zf.namelist()}
        manifest_name = next(n for n in names if "manifest" in n)
        # npz stores the manifest as a 0-d numpy string array; edit the
        # raw .npy bytes, which must invalidate the content hash.
        raw = names[manifest_name]
        # The manifest is a <U... unicode scalar: characters are
        # UTF-32-LE code units inside the .npy payload.
        needle = '"cycle"'.encode("utf-32-le")
        assert needle in raw
        names[manifest_name] = raw.replace(
            needle, '"cycl_"'.encode("utf-32-le"), 1
        )
        tampered = tmp_path / "tampered.npz"
        with zipfile.ZipFile(tampered, "w") as zf:
            for name, blob in names.items():
                zf.writestr(name, blob)
        with pytest.raises(CheckpointError):
            NocSimulator.load_state(tampered)


class TestCliCheckpointResume:
    """Fresh-process resume through `repro noc --checkpoint/--resume`."""

    REPO = Path(__file__).resolve().parents[1]

    def _run(self, *args):
        env_src = str(self.REPO / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            capture_output=True,
            text=True,
            cwd=self.REPO,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        return payload.get("result", payload)

    def test_halt_then_resume_matches_uninterrupted(self, tmp_path):
        common = (
            "noc", "--rows", "6", "--cols", "6", "--cycles", "60",
            "--rate", "0.1", "--seed", "4", "--engine", "vector", "--json",
        )
        ckpt = str(tmp_path / "run.npz")
        uninterrupted = self._run(*common)
        halted = self._run(*common, "--checkpoint", ckpt, "--halt-at", "30")
        assert halted["halted"] is True
        resumed = self._run(*common, "--resume", ckpt)
        assert resumed["resumed_at_cycle"] == 30

        volatile = {
            "checkpoint", "checkpoints_written", "resumed_from",
            "resumed_at_cycle", "halted",
        }
        trimmed = lambda r: {k: v for k, v in r.items() if k not in volatile}
        assert trimmed(resumed) == trimmed(uninterrupted)

    def test_resume_rejects_mismatched_parameters(self, tmp_path):
        ckpt = str(tmp_path / "run.npz")
        self._run(
            "noc", "--rows", "6", "--cols", "6", "--cycles", "40",
            "--rate", "0.1", "--seed", "4", "--engine", "fast", "--json",
            "--checkpoint", ckpt, "--halt-at", "20",
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "noc",
                "--rows", "6", "--cols", "6", "--cycles", "40",
                "--rate", "0.2",   # differs from the checkpointed run
                "--seed", "4", "--engine", "fast", "--json",
                "--resume", ckpt,
            ],
            capture_output=True,
            text=True,
            cwd=self.REPO,
            env={"PYTHONPATH": str(self.REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode != 0
        assert "disagree" in proc.stderr
