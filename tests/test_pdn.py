"""Tests for repro.pdn (planes, solver, LDO, decap, delivery)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.errors import ConvergenceError, PdnError
from repro.pdn.decap import DecapModel, paper_decap_model, required_decap_f, transient_droop_v
from repro.pdn.delivery import (
    DeliveryScheme,
    chosen_scheme,
    compare_delivery_schemes,
)
from repro.pdn.ldo import LdoModel, ldo_efficiency_map
from repro.pdn.plane import PlaneStack, PowerPlane, extract_plane_stack
from repro.pdn.solver import PdnSolver, solve_pdn


class TestPlane:
    def test_sheet_resistance_scaling(self):
        thin = PowerPlane("t", thickness_um=1.0)
        thick = PowerPlane("T", thickness_um=2.0)
        assert thin.sheet_resistance_ohm_sq == pytest.approx(
            2 * thick.sheet_resistance_ohm_sq
        )

    def test_slot_factor_raises_resistance(self):
        plain = PowerPlane("p", 2.0, slot_factor=1.0)
        slotted = PowerPlane("s", 2.0, slot_factor=2.0)
        assert slotted.sheet_resistance_ohm_sq == pytest.approx(
            2 * plain.sheet_resistance_ohm_sq
        )

    def test_stack_sums_supply_and_return(self):
        stack = extract_plane_stack()
        assert stack.effective_sheet_resistance == pytest.approx(
            stack.vdd.sheet_resistance_ohm_sq + stack.ret.sheet_resistance_ohm_sq
        )

    def test_invalid_plane_rejected(self):
        with pytest.raises(PdnError):
            PowerPlane("bad", thickness_um=0)
        with pytest.raises(PdnError):
            PowerPlane("bad", thickness_um=1, slot_factor=0.5)

    def test_mesh_resistances_aspect(self):
        cfg = SystemConfig()
        r_h, r_v = extract_plane_stack(cfg).mesh_resistances(cfg)
        # Horizontal pitch < vertical pitch, so r_h < r_v.
        assert r_h < r_v


class TestSolverFig2:
    """The Fig. 2 reproduction: 2.5V edge -> ~1.4V centre."""

    def test_edge_to_center_droop(self, paper_cfg):
        solution = solve_pdn(paper_cfg)
        assert solution.max_voltage == pytest.approx(2.5, abs=0.05)
        assert solution.min_voltage == pytest.approx(1.4, abs=0.1)

    def test_total_current_matches_paper(self, paper_cfg):
        solution = solve_pdn(paper_cfg)
        assert solution.total_current_a == pytest.approx(290, rel=0.05)

    def test_supply_power_matches_table1(self, paper_cfg):
        solution = solve_pdn(paper_cfg)
        assert solution.supply_power_w == pytest.approx(725, rel=0.05)

    def test_droop_monotonic_toward_center(self, paper_cfg):
        solution = solve_pdn(paper_cfg)
        cross = solution.center_cross_section()
        half = len(cross) // 2
        first_half = cross[:half]
        # Voltage falls from the west edge toward the middle of the row.
        assert all(np.diff(first_half) < 1e-12)

    def test_symmetry(self, paper_cfg):
        solution = solve_pdn(paper_cfg)
        v = solution.voltages
        np.testing.assert_allclose(v, v[::-1, :], rtol=1e-6)
        np.testing.assert_allclose(v, v[:, ::-1], rtol=1e-6)

    def test_min_voltage_at_center(self, paper_cfg):
        solution = solve_pdn(paper_cfg)
        center_v = solution.voltage_at((16, 16))
        assert center_v == pytest.approx(solution.min_voltage, abs=1e-3)

    def test_droop_profile_shape(self, paper_cfg):
        profile = solve_pdn(paper_cfg).droop_profile()
        assert len(profile) == 1024
        dist, volts = zip(*profile)
        # Larger distance from the edge => lower voltage, statistically.
        assert np.corrcoef(dist, volts)[0, 1] < -0.9


class TestSolverBehaviour:
    def test_ldo_load_model_is_linear_solve(self, small_cfg):
        solution = PdnSolver(small_cfg).solve(load_model="ldo")
        assert solution.iterations == 1
        assert solution.converged

    def test_constant_power_model_converges(self, small_cfg):
        solution = PdnSolver(small_cfg).solve(load_model="constant_power")
        assert solution.converged
        assert solution.iterations >= 2

    def test_constant_power_draws_less_current(self, small_cfg):
        # At a delivered voltage above the FF corner, constant-power loads
        # draw less current than the LDO pass-through model.
        ldo = PdnSolver(small_cfg).solve(load_model="ldo")
        cp = PdnSolver(small_cfg).solve(load_model="constant_power")
        assert cp.total_current_a < ldo.total_current_a

    def test_unknown_load_model_rejected(self, small_cfg):
        with pytest.raises(PdnError):
            PdnSolver(small_cfg).solve(load_model="magic")

    def test_zero_power_gives_flat_supply(self, small_cfg):
        solution = PdnSolver(small_cfg).solve(tile_power_w=0.0)
        np.testing.assert_allclose(
            solution.voltages, small_cfg.edge_supply_voltage, rtol=1e-9
        )

    def test_nonuniform_power_map(self, small_cfg):
        power = np.zeros((8, 8))
        power[4, 4] = 0.35
        solution = PdnSolver(small_cfg).solve(tile_power_w=power)
        assert solution.voltage_at((4, 4)) == solution.min_voltage

    def test_bad_power_map_shape_rejected(self, small_cfg):
        with pytest.raises(PdnError):
            PdnSolver(small_cfg).solve(tile_power_w=np.zeros((3, 3)))

    def test_negative_power_rejected(self, small_cfg):
        with pytest.raises(PdnError):
            PdnSolver(small_cfg).solve(tile_power_w=-1.0)

    def test_current_conservation(self, small_cfg):
        # Supply power = load power + plane loss, by construction; check
        # the identity holds numerically.
        solution = PdnSolver(small_cfg).solve()
        assert solution.plane_loss_w == pytest.approx(
            solution.supply_power_w - solution.load_power_w
        )
        assert solution.plane_loss_w > 0

    @given(power_mw=st.floats(10, 500))
    @settings(max_examples=10, deadline=None)
    def test_voltage_bounded_by_supply(self, power_mw):
        cfg = SystemConfig(rows=6, cols=6)
        solution = PdnSolver(cfg).solve(tile_power_w=power_mw / 1000.0)
        assert solution.max_voltage <= cfg.edge_supply_voltage + 1e-9
        assert solution.min_voltage < solution.max_voltage

    def test_bigger_load_bigger_droop(self, small_cfg):
        low = PdnSolver(small_cfg).solve(tile_power_w=0.1)
        high = PdnSolver(small_cfg).solve(tile_power_w=0.35)
        assert high.min_voltage < low.min_voltage


class TestLdo:
    def test_nominal_regulation(self):
        ldo = LdoModel()
        assert ldo.regulate(2.5) == pytest.approx(1.1)
        assert ldo.regulate(1.4) == pytest.approx(1.1)

    def test_tracking_range_matches_paper(self):
        ldo = LdoModel()
        assert ldo.in_range(1.4)
        assert ldo.in_range(2.5)
        assert not ldo.in_range(1.3)

    def test_above_range_raises(self):
        with pytest.raises(PdnError):
            LdoModel().regulate(3.0)

    def test_dropout_region(self):
        ldo = LdoModel()
        out = ldo.regulate(1.2)
        assert out == pytest.approx(1.0)

    def test_regulation_band_check(self):
        ldo = LdoModel()
        assert ldo.regulation_ok(1.4)
        assert ldo.regulation_ok(2.5)
        assert not ldo.regulation_ok(1.1)   # deep dropout: out of band

    def test_efficiency_is_vout_over_vin(self):
        ldo = LdoModel(quiescent_a=0.0)
        assert ldo.efficiency(2.2, 0.3) == pytest.approx(1.1 / 2.2)

    def test_center_tiles_more_efficient_than_edge(self):
        ldo = LdoModel()
        assert ldo.efficiency(1.4, 0.3) > ldo.efficiency(2.5, 0.3)

    def test_pass_dissipation(self):
        ldo = LdoModel()
        assert ldo.pass_device_dissipation_w(2.1, 0.2) == pytest.approx(
            (2.1 - 1.1) * 0.2
        )

    def test_efficiency_map_shape(self, small_cfg):
        solution = solve_pdn(small_cfg)
        eff = ldo_efficiency_map(solution.voltages, load_a=0.29)
        assert eff.shape == solution.voltages.shape
        assert (eff > 0).all() and (eff < 1).all()

    def test_invalid_ldo_configs(self):
        with pytest.raises(PdnError):
            LdoModel(v_out_nominal=1.5)     # outside its own band
        with pytest.raises(PdnError):
            LdoModel(v_in_min=1.0)          # no dropout headroom
        with pytest.raises(PdnError):
            LdoModel().efficiency(0.0, 0.1)
        with pytest.raises(PdnError):
            LdoModel().efficiency(2.0, -0.1)


class TestDecap:
    def test_paper_tile_lands_near_20nf(self):
        model = paper_decap_model()
        assert model.capacitance_f == pytest.approx(20e-9, rel=0.1)

    def test_droop_charge_balance(self):
        assert transient_droop_v(20e-9, 0.2, 10e-9) == pytest.approx(0.1)

    def test_required_decap_inverse(self):
        c = required_decap_f(0.2, 10e-9, 0.1)
        assert transient_droop_v(c, 0.2, 10e-9) == pytest.approx(0.1)

    def test_paper_decap_meets_band(self):
        assert paper_decap_model().meets_band()

    def test_undersized_decap_fails_band(self):
        model = DecapModel(tile_area_mm2=1.0)
        assert not model.meets_band()

    def test_area_fraction_is_35pct(self):
        model = paper_decap_model()
        assert model.decap_area_mm2 / model.tile_area_mm2 == pytest.approx(0.35)

    def test_invalid_inputs(self):
        with pytest.raises(PdnError):
            transient_droop_v(0.0, 0.1, 1e-9)
        with pytest.raises(PdnError):
            required_decap_f(0.1, 1e-9, 0.0)
        with pytest.raises(PdnError):
            DecapModel(tile_area_mm2=0)

    @given(
        step=st.floats(0.01, 1.0),
        response_ns=st.floats(1.0, 100.0),
        budget=st.floats(0.01, 0.5),
    )
    def test_required_decap_always_sufficient(self, step, response_ns, budget):
        c = required_decap_f(step, response_ns * 1e-9, budget)
        assert transient_droop_v(c, step, response_ns * 1e-9) <= budget * (1 + 1e-9)


class TestDeliveryComparison:
    @pytest.fixture(scope="class")
    def options(self):
        return compare_delivery_schemes(SystemConfig())

    def test_all_three_schemes_present(self, options):
        assert set(options) == set(DeliveryScheme)

    def test_twv_infeasible(self, options):
        assert not options[DeliveryScheme.TWV_BACKSIDE].feasible

    def test_buck_has_area_overhead(self, options):
        assert options[DeliveryScheme.HV_EDGE_BUCK].area_overhead_fraction >= 0.25

    def test_edge_ldo_keeps_array_regular(self, options):
        assert options[DeliveryScheme.EDGE_LDO].area_overhead_fraction == 0.0

    def test_buck_more_efficient_than_ldo(self, options):
        # The paper accepts the LDO's efficiency loss to avoid the buck's
        # area/complexity; the efficiency ordering must reflect that trade.
        assert (
            options[DeliveryScheme.HV_EDGE_BUCK].end_to_end_efficiency
            > options[DeliveryScheme.EDGE_LDO].end_to_end_efficiency
        )

    def test_paper_choice_rederived(self, options):
        assert chosen_scheme(options) is DeliveryScheme.EDGE_LDO

    def test_edge_ldo_min_voltage_near_1v4(self, options):
        assert options[DeliveryScheme.EDGE_LDO].min_delivered_voltage == pytest.approx(
            1.4, abs=0.1
        )
