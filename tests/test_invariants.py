"""System-level invariants, property-based.

Conservation, linearity and equivalence laws that must hold across
subsystems regardless of parameters — the deepest assurance layer of the
suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.noc.dualnetwork import NetworkId
from repro.noc.faults import FaultMap, random_fault_map
from repro.noc.packets import Packet, PacketKind
from repro.noc.simulator import NocSimulator
from repro.pdn.solver import PdnSolver
from repro.thermal.grid import ThermalGrid


class TestPdnLinearity:
    """The LDO (constant-current) load model makes the PDN linear."""

    @given(scale=st.floats(0.1, 3.0))
    @settings(max_examples=10, deadline=None)
    def test_droop_scales_linearly_with_power(self, scale):
        cfg = SystemConfig(rows=6, cols=6)
        base = PdnSolver(cfg).solve(tile_power_w=0.1)
        scaled = PdnSolver(cfg).solve(tile_power_w=0.1 * scale)
        base_droop = cfg.edge_supply_voltage - base.voltages
        scaled_droop = cfg.edge_supply_voltage - scaled.voltages
        np.testing.assert_allclose(scaled_droop, base_droop * scale, rtol=1e-6)

    def test_superposition_of_power_maps(self):
        cfg = SystemConfig(rows=6, cols=6)
        rng = np.random.default_rng(1)
        map_a = rng.random((6, 6)) * 0.2
        map_b = rng.random((6, 6)) * 0.2
        v_edge = cfg.edge_supply_voltage
        droop_a = v_edge - PdnSolver(cfg).solve(tile_power_w=map_a).voltages
        droop_b = v_edge - PdnSolver(cfg).solve(tile_power_w=map_b).voltages
        droop_ab = v_edge - PdnSolver(cfg).solve(tile_power_w=map_a + map_b).voltages
        np.testing.assert_allclose(droop_ab, droop_a + droop_b, rtol=1e-6)

    def test_current_balance(self):
        """Total injected load current equals the edge supply current."""
        cfg = SystemConfig(rows=6, cols=6)
        solution = PdnSolver(cfg).solve()
        expected = cfg.tiles * cfg.tile_peak_power_w / cfg.ff_corner_voltage
        assert solution.total_current_a == pytest.approx(expected, rel=1e-9)


class TestThermalLaws:
    def test_energy_balance(self):
        """All injected heat leaves through the per-tile sink conductance."""
        cfg = SystemConfig(rows=6, cols=6)
        grid = ThermalGrid(cfg)
        solution = grid.solve(tile_power_w=0.5, ambient_c=25.0)
        g_sink = grid._sink_conductance()
        heat_out = float(
            (g_sink * (solution.temperatures_c - 25.0)).sum()
        )
        heat_in = 0.5 * cfg.tiles
        assert heat_out == pytest.approx(heat_in, rel=1e-6)

    @given(ambient=st.floats(-20.0, 60.0))
    @settings(max_examples=10, deadline=None)
    def test_ambient_shift_invariance(self, ambient):
        """Temperature *rise* is independent of ambient."""
        cfg = SystemConfig(rows=4, cols=4)
        a = ThermalGrid(cfg).solve(tile_power_w=1.0, ambient_c=25.0)
        b = ThermalGrid(cfg).solve(tile_power_w=1.0, ambient_c=ambient)
        np.testing.assert_allclose(
            a.temperatures_c - 25.0, b.temperatures_c - ambient, atol=1e-9
        )


class TestNocConservation:
    @given(seed=st.integers(0, 300), rate=st.floats(0.01, 0.15))
    @settings(max_examples=10, deadline=None)
    def test_packet_conservation_clean_mesh(self, seed, rate):
        """No packet is ever lost or duplicated on a fault-free mesh."""
        from repro.workloads.traffic import TrafficPattern, generate_traffic

        cfg = SystemConfig(rows=5, cols=5)
        sim = NocSimulator(cfg)
        for _, packet in generate_traffic(
            cfg, TrafficPattern.UNIFORM, rate, 40, seed=seed
        ):
            sim.inject(packet, NetworkId.XY)
        sim.drain(max_cycles=30_000)
        report = sim.report()
        assert report.delivered == report.injected
        ids = [p.packet_id for p in sim.delivered_packets]
        assert len(ids) == len(set(ids))    # no duplication

    @given(seed=st.integers(0, 300))
    @settings(max_examples=10, deadline=None)
    def test_every_request_gets_exactly_one_response(self, seed):
        from repro.workloads.traffic import TrafficPattern, generate_traffic

        cfg = SystemConfig(rows=5, cols=5)
        sim = NocSimulator(cfg)
        for _, packet in generate_traffic(
            cfg, TrafficPattern.UNIFORM, 0.05, 40, seed=seed
        ):
            sim.inject(packet, NetworkId.XY)
        sim.drain(max_cycles=30_000)
        requests = [
            p for p in sim.delivered_packets if p.kind is PacketKind.REQUEST
        ]
        responses = [
            p for p in sim.delivered_packets if p.kind is PacketKind.RESPONSE
        ]
        assert len(responses) == len(requests)
        answered = {p.request_id for p in responses}
        assert answered == {p.packet_id for p in requests}

    @given(seed=st.integers(0, 100), faults=st.integers(1, 5))
    @settings(max_examples=8, deadline=None)
    def test_faulty_mesh_accounting_consistent(self, seed, faults):
        """delivered + dropped + still-buffered == offered, always."""
        from repro.workloads.traffic import TrafficPattern, generate_traffic

        cfg = SystemConfig(rows=5, cols=5)
        fmap = random_fault_map(cfg, faults, rng=seed)
        sim = NocSimulator(cfg, fault_map=fmap)
        offered = 0
        for _, packet in generate_traffic(
            cfg, TrafficPattern.UNIFORM, 0.05, 30, seed=seed
        ):
            offered += 1
            sim.inject(packet, NetworkId.XY)
        sim.run(5_000)
        report = sim.report()
        buffered = sum(
            router.occupancy()
            for grid in sim.routers.values()
            for router in grid.values()
        ) + len(sim._pending_injections) + len(sim._pending_responses)
        # The strong law: every injected packet is delivered, still
        # buffered somewhere, or was dropped mid-flight at a faulty link.
        assert report.injected == (
            report.delivered + buffered + sim.dropped_in_flight
        )


def _buffered_requests(sim) -> int:
    count = 0
    for grid in sim.routers.values():
        for router in grid.values():
            for fifo in router.inputs.values():
                count += sum(
                    1 for p in fifo.queue if p.kind is PacketKind.REQUEST
                )
    return count


class TestEmulatorConservation:
    @given(seed=st.integers(0, 200), nodes=st.integers(30, 80))
    @settings(max_examples=8, deadline=None)
    def test_bfs_visits_every_reachable_vertex_once(self, seed, nodes):
        from repro.arch.system import WaferscaleSystem
        from repro.workloads.bfs import DistributedBfs
        from repro.workloads.graphs import random_graph

        system = WaferscaleSystem(SystemConfig(rows=3, cols=3))
        graph = random_graph(nodes, 3.0, seed=seed)
        result = DistributedBfs(system, graph).run(0)
        assert set(result.distance) == set(graph.nodes)   # connected graphs
        assert result.distance[0] == 0
