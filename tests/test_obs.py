"""Tests for the unified telemetry layer (repro.obs).

Covers the four contract areas the layer promises:

* registry semantics — enabled registries record, disabled registries
  hand out true no-op instruments;
* histogram percentile estimates track numpy within a bucket's width;
* traces round-trip through both sink formats and validate against the
  trace schema;
* run manifests are deterministic for identical runs and record cache
  provenance — plus the CLI/engine integration glue around all of it.
"""

import json

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.engine import ExperimentEngine, ResultCache
from repro.errors import ObsError
from repro.obs import (
    MANIFEST_SCHEMA,
    METRICS_SCHEMA,
    Counter,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Telemetry,
    Tracer,
    build_manifest,
    current_telemetry,
    read_manifest,
    read_trace,
    resolve_telemetry,
    summarize_file,
    use_telemetry,
    validate_file,
    validate_manifest_document,
    validate_metrics_document,
    validate_trace_events,
)


def _noise_trial(ctx):
    return float(ctx.rng.normal())


class TestRegistry:
    def test_counter_gauge_histogram_record(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(3.0)
        assert registry.counter("c").value == 5
        assert registry.gauge("g").value == 2.5
        assert registry.histogram("h").count == 1

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("net.delivered", network="XY").inc()
        registry.counter("net.delivered", network="YX").inc(2)
        assert registry.counter("net.delivered", network="XY").value == 1
        assert registry.counter("net.delivered", network="YX").value == 2

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_negative_counter_increment_rejected(self):
        with pytest.raises(ObsError):
            Counter("c").inc(-1)

    def test_disabled_registry_is_a_true_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc(100)
        registry.gauge("g").set(9)
        registry.histogram("h").observe(1.0)
        assert len(registry) == 0
        assert counter.value == 0
        doc = registry.to_dict()
        assert doc["counters"] == {}
        assert doc["gauges"] == {}
        assert doc["histograms"] == {}

    def test_document_has_schema_and_validates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h").observe(2.0)
        doc = registry.to_dict()
        assert doc["schema"] == METRICS_SCHEMA
        assert validate_metrics_document(doc) == []


class TestHistogram:
    def test_percentiles_track_numpy_within_bucket_width(self):
        rng = np.random.default_rng(0)
        samples = rng.uniform(0.0, 100.0, size=5000)
        buckets = tuple(float(b) for b in range(1, 101))
        hist = Histogram("h", buckets=buckets)
        for s in samples:
            hist.observe(float(s))
        for q in (50, 90, 99):
            estimate = hist.percentile(q)
            exact = float(np.percentile(samples, q))
            # Linear interpolation within a unit-wide bucket: the
            # estimate can be off by at most one bucket width.
            assert abs(estimate - exact) <= 1.0

    def test_percentile_clamped_to_observed_range(self):
        hist = Histogram("h", buckets=(10.0, 100.0))
        hist.observe(42.0)
        assert hist.percentile(0) == 42.0
        assert hist.percentile(100) == 42.0

    def test_overflow_bucket_counts(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.count == 1
        snap = hist.snapshot()
        assert snap["buckets"][-1] == ["inf", 1]

    def test_mean_and_bounds(self):
        hist = Histogram("h", buckets=(10.0, 20.0))
        hist.observe(5.0)
        hist.observe(15.0)
        assert hist.mean == pytest.approx(10.0)
        snap = hist.snapshot()
        assert snap["min"] == 5.0 and snap["max"] == 15.0

    def test_non_monotonic_buckets_rejected(self):
        with pytest.raises(ObsError):
            Histogram("h", buckets=(2.0, 1.0))


class TestTracer:
    def test_chrome_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.begin("work", cat="test", step=1)
        tracer.end("work", cat="test")
        tracer.complete("span", ts=10.0, dur=5.0, cat="test")
        tracer.instant("marker", cat="test")
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        events = read_trace(str(path))
        assert validate_trace_events(events) == []
        names = [e["name"] for e in events]
        assert {"work", "span", "marker"} <= set(names)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc      # Chrome/Perfetto loadable shape

    def test_jsonl_roundtrip_matches_chrome_events(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", cat="t"):
            tracer.instant("inner", cat="t")
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        tracer.write(str(chrome))
        tracer.write(str(jsonl))
        assert read_trace(str(chrome)) == read_trace(str(jsonl))

    def test_named_tracks_emit_metadata_once(self):
        tracer = Tracer()
        tracer.name_track(3, "tile (0,2)")
        tracer.name_track(3, "tile (0,2)")
        meta = [e for e in tracer.events if e["ph"] == "M" and e.get("tid") == 3]
        assert len(meta) == 1
        assert meta[0]["args"]["name"] == "tile (0,2)"

    def test_explicit_cycle_timestamps_preserved(self):
        tracer = Tracer()
        tracer.complete("noc.step", ts=17, dur=1, cat="noc")
        event = [e for e in tracer.events if e["name"] == "noc.step"][0]
        assert event["ts"] == 17 and event["dur"] == 1

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        tracer.begin("x")
        tracer.complete("y", ts=0, dur=1)
        with tracer.span("z"):
            pass
        assert tracer.events == []

    def test_read_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all {{{")
        with pytest.raises(ObsError):
            read_trace(str(path))


class TestManifest:
    def test_identity_is_deterministic(self):
        cfg = SystemConfig(rows=4, cols=4)
        a = build_manifest("exp", config=cfg, params={"p": 1}, seed=7,
                           trials=3, workers=2)
        b = build_manifest("exp", config=cfg, params={"p": 1}, seed=7,
                           trials=3, workers=2)
        assert a.identity() == b.identity()
        assert a.config_hash is not None

    def test_identity_changes_with_inputs(self):
        cfg = SystemConfig(rows=4, cols=4)
        base = build_manifest("exp", config=cfg, seed=0, trials=3, workers=1)
        other_seed = build_manifest("exp", config=cfg, seed=1, trials=3, workers=1)
        other_cfg = build_manifest(
            "exp", config=SystemConfig(rows=8, cols=8), seed=0, trials=3, workers=1
        )
        assert base.identity() != other_seed.identity()
        assert base.config_hash != other_cfg.config_hash

    def test_roundtrip_and_schema(self, tmp_path):
        manifest = build_manifest("exp", seed=0, trials=2, workers=1,
                                  wall_s=0.5, busy_s=0.4)
        path = tmp_path / "run.manifest.json"
        manifest.write(str(path))
        doc = json.loads(path.read_text())
        assert doc["schema"] == MANIFEST_SCHEMA
        assert validate_manifest_document(doc) == []
        assert read_manifest(str(path)).identity() == manifest.identity()

    def test_engine_records_manifest_and_cache_provenance(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        telemetry = Telemetry()
        engine = ExperimentEngine(cache=cache, telemetry=telemetry)
        engine.run(_noise_trial, experiment="obs-test", trials=3, seed=0)
        engine.run(_noise_trial, experiment="obs-test", trials=3, seed=0)
        manifests = telemetry.manifests
        assert len(manifests) == 2
        assert not manifests[0].from_cache
        assert manifests[1].from_cache
        assert manifests[0].identity() == manifests[1].identity()
        assert manifests[1].cache_hits == 1
        doc = telemetry.metrics_document()
        assert doc["counters"]["engine.cache_hits{experiment=obs-test}"] == 1
        assert doc["counters"]["engine.cache_misses{experiment=obs-test}"] == 1
        assert validate_metrics_document(doc) == []

    def test_manifest_sidecars_written(self, tmp_path):
        telemetry = Telemetry(manifest_dir=str(tmp_path))
        engine = ExperimentEngine(telemetry=telemetry)
        engine.run(_noise_trial, experiment="side", trials=2, seed=0)
        sidecars = list(tmp_path.glob("*.manifest.json"))
        assert len(sidecars) == 1
        assert read_manifest(str(sidecars[0])).experiment == "side"


class TestAmbientTelemetry:
    def test_default_is_disabled(self):
        assert not current_telemetry().enabled
        assert not resolve_telemetry(None).enabled

    def test_use_telemetry_installs_and_restores(self):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            assert current_telemetry() is telemetry
            assert resolve_telemetry(None) is telemetry
        assert not current_telemetry().enabled

    def test_explicit_argument_wins_over_ambient(self):
        explicit = Telemetry()
        with use_telemetry(Telemetry()):
            assert resolve_telemetry(explicit) is explicit

    def test_engine_without_telemetry_records_nothing(self):
        telemetry = Telemetry()           # never installed, never passed
        ExperimentEngine().run(_noise_trial, experiment="t", trials=2, seed=0)
        assert telemetry.manifests == []
        assert len(telemetry.metrics) == 0


class TestCliIntegration:
    def test_trace_and_metrics_flags_produce_valid_files(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        code = main([
            "--trace", str(trace), "--metrics", str(metrics),
            "noc", "--rows", "4", "--cols", "4", "--cycles", "30",
        ])
        assert code == 0
        kind, problems = validate_file(str(trace))
        assert (kind, problems) == ("trace", [])
        kind, problems = validate_file(str(metrics))
        assert (kind, problems) == ("metrics", [])
        events = read_trace(str(trace))
        cats = {e.get("cat") for e in events}
        assert "noc.sim" in cats and "noc.router" in cats
        doc = json.loads(metrics.read_text())
        assert doc["histograms"]["noc.latency_cycles"]["count"] > 0

    def test_obs_summarize_renders_metrics(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "m.json"
        main(["--metrics", str(metrics),
              "noc", "--rows", "4", "--cols", "4", "--cycles", "20"])
        capsys.readouterr()
        assert main(["obs", "summarize", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "noc.latency_cycles" in out
        kind, text = summarize_file(str(metrics))
        assert kind == "metrics" and "histograms" in text

    def test_obs_validate_flags_invalid_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": METRICS_SCHEMA,
                                   "counters": {"c": "not-a-number"}}))
        assert main(["obs", "validate", str(bad)]) == 1

    def test_output_identical_without_sink_flags(self, tmp_path, capsys):
        from repro.cli import main

        cmd = ["noc", "--rows", "4", "--cols", "4", "--cycles", "30"]
        main(cmd)
        plain = capsys.readouterr().out
        main(["--trace", str(tmp_path / "t.json")] + cmd)
        traced = capsys.readouterr().out
        main(cmd)
        plain_again = capsys.readouterr().out
        assert plain == traced == plain_again


class TestZeroOverheadContract:
    """Instrumented subsystems behave identically with no telemetry."""

    def test_noc_simulator_reports_match(self):
        from repro.noc.dualnetwork import NetworkId
        from repro.noc.simulator import NocSimulator
        from repro.workloads.traffic import TrafficPattern, generate_traffic

        cfg = SystemConfig(rows=4, cols=4)

        def drive(telemetry):
            sim = NocSimulator(cfg, telemetry=telemetry)
            for cycle, packet in generate_traffic(
                cfg, TrafficPattern.UNIFORM, 0.1, 40, seed=3
            ):
                while sim.cycle < cycle:
                    sim.step()
                sim.inject(packet, network=NetworkId.XY)
            sim.drain()
            return sim.report()

        plain = drive(None)
        disabled = drive(Telemetry.disabled())
        enabled = drive(Telemetry())
        for report in (disabled, enabled):
            assert report.delivered == plain.delivered
            assert report.latencies == plain.latencies
            assert report.cycles == plain.cycles

    def test_engine_values_match(self):
        plain = ExperimentEngine().run(
            _noise_trial, experiment="t", trials=4, seed=9
        )
        traced = ExperimentEngine(telemetry=Telemetry()).run(
            _noise_trial, experiment="t", trials=4, seed=9
        )
        assert plain.values == traced.values
