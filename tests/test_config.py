"""Tests for repro.config."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro import params
from repro.config import SystemConfig, paper_config, reduced_config
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_scale(self):
        cfg = paper_config()
        assert cfg.tiles == 1024
        assert cfg.chiplets == 2048
        assert cfg.cores == 14336

    def test_shared_memory_is_512mb(self):
        assert paper_config().shared_memory_bytes == 512 * 1024 * 1024

    def test_tile_shared_memory_is_512kb(self):
        assert paper_config().tile_shared_memory_bytes == 512 * 1024

    def test_total_memory_includes_private(self):
        cfg = paper_config()
        per_tile = 5 * 128 * 1024 + 14 * 64 * 1024
        assert cfg.total_memory_bytes == 1024 * per_tile

    def test_edge_current_near_290a(self):
        assert paper_config().total_edge_current_a == pytest.approx(290, rel=0.05)

    def test_peak_power_near_725w(self):
        assert paper_config().total_peak_power_w == pytest.approx(725, rel=0.05)

    def test_tile_pitch(self):
        cfg = paper_config()
        assert cfg.tile_pitch_x_mm == pytest.approx(3.25)
        assert cfg.tile_pitch_y_mm == pytest.approx(3.7)

    def test_array_area_order_of_magnitude(self):
        # The populated array is ~12,300mm2; with the edge ring it reaches
        # Table I's 15,100mm2 (checked in flow tests).
        assert 11_000 < paper_config().array_area_mm2 < 13_000


class TestValidation:
    def test_rejects_zero_rows(self):
        with pytest.raises(ConfigError):
            SystemConfig(rows=0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            SystemConfig(cores_per_tile=0)

    def test_rejects_bad_pillar_yield(self):
        with pytest.raises(ConfigError):
            SystemConfig(pillar_bond_yield=0.0)
        with pytest.raises(ConfigError):
            SystemConfig(pillar_bond_yield=1.5)

    def test_rejects_zero_pillars(self):
        with pytest.raises(ConfigError):
            SystemConfig(pillars_per_pad=0)

    def test_rejects_shared_banks_exceeding_total(self):
        with pytest.raises(ConfigError):
            SystemConfig(shared_banks_per_tile=6, memory_banks_per_tile=5)

    def test_rejects_low_edge_supply(self):
        with pytest.raises(ConfigError):
            SystemConfig(edge_supply_voltage=1.0)

    def test_rejects_three_signal_layers(self):
        with pytest.raises(ConfigError):
            SystemConfig(signal_layers=3)

    def test_rejects_packet_wider_than_link(self):
        with pytest.raises(ConfigError):
            SystemConfig(packet_width_bits=500, link_width_bits=400)


class TestCoordinates:
    def test_tile_coords_row_major(self):
        cfg = SystemConfig(rows=2, cols=3)
        assert list(cfg.tile_coords()) == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]

    def test_edge_detection(self):
        cfg = SystemConfig(rows=4, cols=4)
        assert cfg.is_edge_tile((0, 2))
        assert cfg.is_edge_tile((3, 0))
        assert not cfg.is_edge_tile((1, 1))

    def test_validate_coord_raises(self):
        cfg = SystemConfig(rows=4, cols=4)
        with pytest.raises(ConfigError):
            cfg.validate_coord((4, 0))
        with pytest.raises(ConfigError):
            cfg.validate_coord((0, -1))

    def test_corner_has_two_neighbors(self, tiny_cfg):
        assert len(tiny_cfg.neighbors((0, 0))) == 2

    def test_interior_has_four_neighbors(self, tiny_cfg):
        assert len(tiny_cfg.neighbors((1, 1))) == 4

    def test_scaled_preserves_other_fields(self):
        cfg = SystemConfig(cores_per_tile=7).scaled(8, 8)
        assert cfg.rows == 8 and cfg.cols == 8
        assert cfg.cores_per_tile == 7

    def test_reduced_config(self):
        cfg = reduced_config(5, 6)
        assert (cfg.rows, cfg.cols) == (5, 6)


class TestProperties:
    @given(rows=st.integers(1, 20), cols=st.integers(1, 20))
    def test_tile_count_product(self, rows, cols):
        cfg = SystemConfig(rows=rows, cols=cols)
        assert cfg.tiles == rows * cols
        assert len(list(cfg.tile_coords())) == rows * cols

    @given(rows=st.integers(2, 12), cols=st.integers(2, 12))
    def test_neighbors_symmetric(self, rows, cols):
        cfg = SystemConfig(rows=rows, cols=cols)
        for coord in cfg.tile_coords():
            for nbr in cfg.neighbors(coord):
                assert coord in cfg.neighbors(nbr)

    @given(rows=st.integers(1, 16), cols=st.integers(1, 16))
    def test_config_hashable_and_frozen(self, rows, cols):
        cfg = SystemConfig(rows=rows, cols=cols)
        assert hash(cfg) == hash(SystemConfig(rows=rows, cols=cols))
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.rows = 1    # type: ignore[misc]


class TestSerialisation:
    def test_to_dict_covers_every_field(self):
        cfg = SystemConfig()
        data = cfg.to_dict()
        assert set(data) == {f.name for f in dataclasses.fields(SystemConfig)}

    def test_round_trip_is_exact(self):
        cfg = SystemConfig(rows=5, cols=9, cores_per_tile=11)
        assert SystemConfig.from_dict(cfg.to_dict()) == cfg

    def test_partial_dict_takes_defaults(self):
        cfg = SystemConfig.from_dict({"rows": 6})
        assert cfg.rows == 6
        assert cfg.cols == SystemConfig().cols

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig.from_dict({"rowz": 4})

    def test_from_dict_validates(self):
        with pytest.raises(ConfigError):
            SystemConfig.from_dict({"rows": 0})

    def test_variant_overrides_and_validates(self):
        cfg = SystemConfig().variant(rows=3, cores_per_tile=9)
        assert (cfg.rows, cfg.cores_per_tile) == (3, 9)
        with pytest.raises(ConfigError):
            SystemConfig().variant(pillars_per_pad=0)

    def test_aliases_agree_with_from_dict(self):
        assert paper_config() == SystemConfig.from_dict({})
        assert reduced_config(7, 3) == SystemConfig.from_dict({"rows": 7, "cols": 3})
        assert SystemConfig().scaled(4, 4) == SystemConfig.from_dict(
            {"rows": 4, "cols": 4}
        )
