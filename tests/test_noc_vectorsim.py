"""Differential tests: the batched vector NoC engine and trial batching.

``engine="vector"`` advances the whole mesh through a handful of numpy
kernel calls per cycle (lane-major arbitration over occupied FIFO lanes,
packet pools, credit-indexed injection).  None of that machinery may be
observable: every test here drives the vector engine over identical
traffic as the reference and fast engines and requires bit-identical
reports, delivery order and telemetry.  The batched form
(:func:`simulate_batch`) must in turn equal B individual vector runs
field for field.
"""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import NetworkError
from repro.noc.dualnetwork import NetworkId
from repro.noc.faults import random_fault_map
from repro.noc.loadlatency import measure_load_latency
from repro.noc.packets import Packet, PacketKind
from repro.noc.routing import RoutingPolicy, build_port_lut, dor_port_codes
from repro.noc.simulator import ENGINES, NocSimulator
from repro.noc.vectorsim import (
    BatchNocSimulator,
    VectorNocSimulator,
    simulate_batch,
)
from repro.workloads.traffic import TrafficPattern, generate_traffic

ENGINE_TRIO = ("reference", "fast", "vector")


def _drive(engine, cfg, fault_map, fifo_depth, traffic, kind=PacketKind.REQUEST,
           alternate=False):
    """Run one engine over (cycle, packet) traffic, then drain."""
    sim = NocSimulator(
        cfg, fault_map=fault_map, fifo_depth=fifo_depth, engine=engine
    )
    for position, (cycle, packet) in enumerate(traffic):
        while sim.cycle < cycle:
            sim.step()
        if kind is not PacketKind.REQUEST:
            packet = Packet(kind=kind, src=packet.src, dst=packet.dst)
        net = NetworkId.YX if (alternate and position % 2) else NetworkId.XY
        sim.inject(packet, net)
    sim.drain(max_cycles=100_000)
    return sim


def _assert_equivalent(ref, vec):
    """Field-for-field equality of two engines' observable state."""
    assert ref.report() == vec.report()
    assert ref.cycle == vec.cycle
    assert ref.link_stalls == vec.link_stalls
    assert ref.dropped_in_flight == vec.dropped_in_flight
    assert ref.injected_count == vec.injected_count
    ref_seq = [
        (p.src, p.dst, p.kind, p.injected_cycle, p.delivered_cycle)
        for p in ref.delivered_packets
    ]
    vec_seq = [
        (p.src, p.dst, p.kind, p.injected_cycle, p.delivered_cycle)
        for p in vec.delivered_packets
    ]
    assert ref_seq == vec_seq


class TestEngineSelection:
    def test_vector_engine_via_factory(self, small_cfg):
        sim = NocSimulator(small_cfg, engine="vector")
        assert isinstance(sim, VectorNocSimulator)
        assert isinstance(sim, NocSimulator)
        assert sim.engine == "vector"
        assert "vector" in ENGINES

    def test_vector_engine_validates_fifo_depth(self, small_cfg):
        with pytest.raises(NetworkError):
            NocSimulator(small_cfg, fifo_depth=0, engine="vector")


class TestVectorizedRouting:
    """The arithmetic routing kernel agrees with its scalar twin."""

    @pytest.mark.parametrize("policy", list(RoutingPolicy))
    @pytest.mark.parametrize("rows,cols", [(1, 6), (5, 4), (3, 7)])
    def test_dor_port_codes_matches_lut(self, rows, cols, policy):
        lut = build_port_lut(rows, cols, policy)
        flat = np.arange(rows * cols)
        r, c = flat // cols, flat % cols
        codes = dor_port_codes(
            r[:, None], c[:, None], r[None, :], c[None, :], policy
        )
        assert codes.dtype == np.int8
        assert np.array_equal(codes, lut)


class TestDifferentialEquivalence:
    """Acceptance matrix: patterns x fifo depths x fault maps x engines."""

    @pytest.mark.parametrize("fifo_depth", [1, 2, 4])
    @pytest.mark.parametrize(
        "pattern",
        [TrafficPattern.UNIFORM, TrafficPattern.TRANSPOSE, TrafficPattern.HOTSPOT],
    )
    @pytest.mark.parametrize("fault_seed", [None, 11, 23])
    def test_request_response_workload(self, pattern, fifo_depth, fault_seed):
        cfg = SystemConfig(rows=6, cols=6)
        fmap = (
            random_fault_map(cfg, 4, rng=fault_seed)
            if fault_seed is not None
            else None
        )
        sims = {}
        for engine in ("reference", "vector"):
            traffic = generate_traffic(cfg, pattern, 0.08, 40, seed=5)
            sims[engine] = _drive(engine, cfg, fmap, fifo_depth, traffic)
        _assert_equivalent(sims["reference"], sims["vector"])

    def test_yx_driver_injection(self):
        """Driver traffic on BOTH networks: responses then share a LOCAL
        FIFO with fresh driver packets, so any divergence in admission
        order (backlog, driver, released responses) becomes visible."""
        cfg = SystemConfig(rows=6, cols=6)
        sims = {}
        for engine in ENGINE_TRIO:
            traffic = generate_traffic(
                cfg, TrafficPattern.UNIFORM, 0.12, 40, seed=3
            )
            sims[engine] = _drive(engine, cfg, None, 2, traffic, alternate=True)
        _assert_equivalent(sims["reference"], sims["vector"])
        _assert_equivalent(sims["fast"], sims["vector"])

    def test_one_way_response_workload(self):
        cfg = SystemConfig(rows=6, cols=6)
        sims = {}
        for engine in ("fast", "vector"):
            traffic = generate_traffic(
                cfg, TrafficPattern.UNIFORM, 0.1, 30, seed=9
            )
            sims[engine] = _drive(
                engine, cfg, None, 2, traffic, kind=PacketKind.RESPONSE
            )
        _assert_equivalent(sims["fast"], sims["vector"])

    @pytest.mark.parametrize("fault_seed", [2, 5])
    def test_randomized_fault_maps_with_in_flight_drops(self, fault_seed):
        cfg = SystemConfig(rows=8, cols=8)
        fmap = random_fault_map(cfg, 10, rng=fault_seed)
        sims = {}
        for engine in ("reference", "vector"):
            traffic = generate_traffic(
                cfg, TrafficPattern.UNIFORM, 0.1, 40, seed=fault_seed
            )
            sims[engine] = _drive(engine, cfg, fmap, 2, traffic)
        _assert_equivalent(sims["reference"], sims["vector"])
        assert sims["vector"].dropped_in_flight > 0

    def test_saturating_hotspot(self):
        cfg = SystemConfig(rows=6, cols=6)
        sims = {}
        for engine in ("fast", "vector"):
            traffic = generate_traffic(
                cfg, TrafficPattern.HOTSPOT, 0.4, 30, seed=13
            )
            sims[engine] = _drive(engine, cfg, None, 2, traffic)
        _assert_equivalent(sims["fast"], sims["vector"])
        assert sims["vector"].link_stalls > 0

    def test_arithmetic_routing_path(self, monkeypatch):
        """Force the no-LUT arithmetic port kernel and re-check equality."""
        import repro.noc.vectorsim as vectorsim

        monkeypatch.setattr(vectorsim, "LUT_MAX_TILES", 1)
        cfg = SystemConfig(rows=6, cols=6)
        traffic = generate_traffic(cfg, TrafficPattern.UNIFORM, 0.1, 40, seed=2)
        vec = _drive("vector", cfg, None, 4, traffic)
        assert vec._mesh.lut is None   # the LUT really was disabled
        traffic = generate_traffic(cfg, TrafficPattern.UNIFORM, 0.1, 40, seed=2)
        fast = _drive("fast", cfg, None, 4, traffic)
        _assert_equivalent(fast, vec)

    def test_telemetry_metrics_match(self):
        from repro.obs import Telemetry

        cfg = SystemConfig(rows=6, cols=6)
        fmap = random_fault_map(cfg, 3, rng=4)
        snapshots = {}
        for engine in ("fast", "vector"):
            tel = Telemetry()
            traffic = generate_traffic(cfg, TrafficPattern.UNIFORM, 0.1, 30, seed=7)
            sim = NocSimulator(
                cfg, fault_map=fmap, fifo_depth=2, telemetry=tel, engine=engine
            )
            for cycle, packet in traffic:
                while sim.cycle < cycle:
                    sim.step()
                sim.inject(packet, NetworkId.XY)
            sim.drain(max_cycles=100_000)
            sim.report()
            snapshots[engine] = tel.metrics.to_dict()
        assert snapshots["fast"] == snapshots["vector"]

    def test_invariant_checkers_attach(self, small_cfg):
        from repro.verify import full_noc_checkers

        checkers = full_noc_checkers()
        sim = NocSimulator(small_cfg, engine="vector", checkers=checkers)
        traffic = generate_traffic(
            small_cfg, TrafficPattern.UNIFORM, 0.08, 30, seed=1
        )
        for cycle, packet in traffic:
            while sim.cycle < cycle:
                sim.step()
            sim.inject(packet, NetworkId.XY)
        sim.drain(max_cycles=100_000)
        assert sum(c.checks for c in checkers) > 0

    def test_inject_rejects_out_of_mesh(self, small_cfg):
        sim = NocSimulator(small_cfg, engine="vector")
        with pytest.raises(Exception):
            sim.inject(
                Packet(kind=PacketKind.REQUEST, src=(99, 0), dst=(0, 0)),
                NetworkId.XY,
            )

    def test_load_latency_curve_matches(self):
        """engine="vector" sweeps all rates in one batched kernel; the
        curve must still equal the per-rate engines point for point."""
        cfg = SystemConfig(rows=6, cols=6)
        curves = {
            engine: measure_load_latency(
                cfg, rates=[0.02, 0.1], warm_cycles=30, seed=1, engine=engine
            )
            for engine in ("fast", "vector")
        }
        assert curves["fast"].points == curves["vector"].points


class TestBatchedTrials:
    """simulate_batch == B individual vector runs, field for field."""

    def _schedule(self, cfg, seed, rate=0.08, cycles=40):
        schedule = generate_traffic(
            cfg, TrafficPattern.UNIFORM, rate, cycles, seed=seed
        )
        return [
            (cycle, packet,
             NetworkId.XY if i % 2 == 0 else NetworkId.YX)
            for i, (cycle, packet) in enumerate(schedule)
        ]

    def test_batch_equals_individual_runs(self):
        cfg = SystemConfig(rows=6, cols=6)
        fmaps = [None, random_fault_map(cfg, 4, rng=17), None]
        seeds = [5, 6, 7]
        run_cycles = 40 + 200

        expected = []
        for fmap, seed in zip(fmaps, seeds):
            sim = NocSimulator(cfg, fault_map=fmap, engine="vector")
            for cycle, packet, net in self._schedule(cfg, seed):
                while sim.cycle < cycle:
                    sim.step()
                sim.inject(packet, net)
            sim.run(run_cycles - sim.cycle)
            expected.append(sim.report())

        batched = simulate_batch(
            cfg,
            [self._schedule(cfg, seed) for seed in seeds],
            fault_maps=fmaps,
            run_cycles=run_cycles,
            drain=False,
        )
        assert batched == expected

    def test_batch_drain_matches_individual_drain(self):
        cfg = SystemConfig(rows=6, cols=6)
        seeds = [1, 2]
        expected = []
        for seed in seeds:
            sim = NocSimulator(cfg, engine="vector")
            for cycle, packet, net in self._schedule(cfg, seed):
                while sim.cycle < cycle:
                    sim.step()
                sim.inject(packet, net)
            sim.drain(max_cycles=100_000)
            expected.append(sim.report())
        batched = simulate_batch(
            cfg, [self._schedule(cfg, seed) for seed in seeds]
        )
        assert batched == expected

    def test_batch_validates_inputs(self, small_cfg):
        with pytest.raises(NetworkError):
            BatchNocSimulator(small_cfg, [])
        with pytest.raises(NetworkError):
            simulate_batch(small_cfg, [[], []], fault_maps=[None])

    def test_trial_isolation_flags(self, small_cfg):
        """An idle trial retires while a loaded one keeps simulating."""
        sim = BatchNocSimulator(small_cfg, [None, None])
        sim.inject(
            1,
            Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(7, 7)),
            NetworkId.XY,
        )
        sim.step()
        assert sim.trial_idle(0)
        assert not sim.trial_idle(1)
        sim.drain(max_cycles=10_000)
        assert sim.idle()
        reports = sim.reports()
        assert reports[0].delivered == 0
        # request + its response both arrive on trial 1
        assert reports[1].delivered == 2
