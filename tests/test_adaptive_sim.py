"""Tests for the adaptive odd-even cycle-level simulator."""

import itertools
import random

import pytest
from hypothesis import given, settings

from repro.config import SystemConfig
from repro.errors import NetworkError
from repro.noc.adaptive import (
    AdaptiveNocSimulator,
    AdaptiveRouter,
    _chiu_route,
)
from repro.noc.faults import FaultMap, random_fault_map
from repro.noc.oddeven import _turn_allowed
from repro.noc.packets import Packet, PacketKind
from repro.noc.router import Port
from repro.verify.strategies import coords8
from repro.workloads.traffic import TrafficPattern, generate_traffic


class TestChiuRoute:
    @given(src=coords8, dst=coords8)
    @settings(max_examples=100)
    def test_route_set_nonempty_and_minimal(self, src, dst):
        if src == dst:
            return
        directions = _chiu_route(src, src, dst)
        assert directions
        for d in directions:
            nxt = (src[0] + d[0], src[1] + d[1])
            before = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
            after = abs(nxt[0] - dst[0]) + abs(nxt[1] - dst[1])
            assert after == before - 1      # strictly minimal

    def test_random_walks_reach_destination_with_legal_turns(self):
        """Any adaptive choice sequence converges and stays turn-legal."""
        rng = random.Random(1)
        for src, dst in itertools.product(
            [(0, 0), (3, 5), (7, 2)], [(6, 6), (0, 7), (5, 0)]
        ):
            cur, incoming = src, None
            for _ in range(100):
                if cur == dst:
                    break
                dirs = _chiu_route(cur, src, dst)
                assert dirs
                for d in dirs:
                    assert _turn_allowed(incoming, d, cur)
                d = rng.choice(dirs)
                cur = (cur[0] + d[0], cur[1] + d[1])
                incoming = d
            assert cur == dst


class TestAdaptiveRouter:
    def test_local_delivery(self):
        router = AdaptiveRouter((2, 2))
        packet = Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(2, 2))
        assert router.candidates(Port.WEST, packet) == [Port.LOCAL]

    def test_multiple_candidates_off_diagonal(self):
        router = AdaptiveRouter((3, 3))      # odd column: vertical allowed
        packet = Packet(kind=PacketKind.REQUEST, src=(3, 1), dst=(6, 6))
        candidates = router.candidates(Port.WEST, packet)
        assert len(candidates) == 2
        assert Port.SOUTH in candidates and Port.EAST in candidates

    def test_bad_depth(self):
        with pytest.raises(NetworkError):
            AdaptiveRouter((0, 0), fifo_depth=0)


class TestAdaptiveSimulator:
    def test_clean_uniform_all_delivered(self, small_cfg):
        sim = AdaptiveNocSimulator(small_cfg)
        for _, packet in generate_traffic(
            small_cfg, TrafficPattern.UNIFORM, 0.1, 60, seed=1
        ):
            sim.inject(packet)
        sim.drain()
        report = sim.report()
        assert report.all_delivered
        assert sim.source_routed_count == 0     # nothing needed routes

    def test_fault_wall_same_row_pair_delivered(self, small_cfg):
        """The pair dual-DoR cannot serve: adaptive routing delivers it."""
        fmap = FaultMap(small_cfg, frozenset({(0, 4), (1, 4)}))
        sim = AdaptiveNocSimulator(small_cfg, fault_map=fmap)
        sim.inject(Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(0, 7)))
        sim.drain()
        report = sim.report()
        assert report.delivered == 2            # request + response
        assert sim.source_routed_count == 2

    def test_random_fault_maps_all_delivered(self, small_cfg):
        for seed in range(8):
            fmap = random_fault_map(small_cfg, 4, rng=seed)
            sim = AdaptiveNocSimulator(small_cfg, fault_map=fmap, seed=seed)
            for _, packet in generate_traffic(
                small_cfg, TrafficPattern.UNIFORM, 0.05, 50, seed=seed
            ):
                sim.inject(packet)
            sim.drain(max_cycles=60_000)
            assert sim.report().all_delivered

    def test_deadlock_free_under_heavy_load(self):
        cfg = SystemConfig(rows=6, cols=6)
        sim = AdaptiveNocSimulator(cfg, fifo_depth=2)
        for _, packet in generate_traffic(
            cfg, TrafficPattern.TRANSPOSE, 0.4, 50, seed=2
        ):
            sim.inject(packet)
        sim.drain(max_cycles=40_000)
        assert sim.report().all_delivered

    def test_unreachable_dropped_not_hung(self, small_cfg):
        # Surround the destination completely.
        fmap = FaultMap(
            small_cfg, frozenset({(2, 3), (4, 3), (3, 2), (3, 4)})
        )
        sim = AdaptiveNocSimulator(small_cfg, fault_map=fmap)
        ok = sim.inject(
            Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(3, 3))
        )
        assert not ok
        assert sim.report().dropped_unreachable == 1
        sim.drain()     # immediately idle

    def test_faulty_endpoints_dropped(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(5, 5)}))
        sim = AdaptiveNocSimulator(small_cfg, fault_map=fmap)
        assert not sim.inject(
            Packet(kind=PacketKind.REQUEST, src=(5, 5), dst=(0, 0))
        )

    def test_adaptive_spreads_congestion(self):
        """With adaptivity, hotspot-adjacent traffic should not collapse:
        everything still drains in bounded time at moderate load."""
        cfg = SystemConfig(rows=6, cols=6)
        sim = AdaptiveNocSimulator(cfg)
        for _, packet in generate_traffic(
            cfg, TrafficPattern.HOTSPOT, 0.15, 60, seed=3
        ):
            sim.inject(packet)
        sim.drain(max_cycles=30_000)
        assert sim.report().all_delivered

    def test_latency_reasonable_on_clean_mesh(self, small_cfg):
        sim = AdaptiveNocSimulator(small_cfg)
        sim.inject(Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(7, 7)))
        sim.drain()
        report = sim.report()
        # 14 hops minimum; injection/ejection overhead small.
        assert 14 <= min(report.latencies) <= 25
