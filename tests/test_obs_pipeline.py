"""The cross-process telemetry pipeline: capture → merge → sample → expose → diff.

Covers the observability tentpole end to end:

* :meth:`MetricsRegistry.dump` / :meth:`MetricsRegistry.merge` algebra
  (counters sum, histogram buckets add, gauges last-write, labels
  preserved, kind/bucket mismatches rejected);
* worker snapshots (:mod:`repro.obs.snapshot`) and the headline
  correctness property: an N-worker engine run's merged telemetry —
  counter totals, histogram bucket counts, label sets and non-meta
  trace-event counts — is **identical** to the single-worker run's;
* :class:`MetricsSampler` ring buffers and the JSONL sample log;
* Prometheus text exposition (:mod:`repro.obs.prom`);
* metrics/bench document diffing (:mod:`repro.obs.diff`);
* the ``repro top`` frame renderer and sources;
* truncated-trailing-JSONL tolerance in :func:`read_trace`.
"""

import json

import pytest

from repro.cli import run_obs
from repro.config import SystemConfig
from repro.engine.core import ExperimentEngine
from repro.errors import ObsError
from repro.obs import (
    MetricsRegistry,
    MetricsSampler,
    SeriesRing,
    Telemetry,
    TelemetrySnapshot,
    Tracer,
    capture_snapshot,
    diff_documents,
    merge_snapshot,
    read_sample_log,
    read_trace,
    read_trace_with_warnings,
    render_frame,
    render_prometheus,
    sparkline,
    summarize_file,
    validate_file,
)
from repro.obs.top import FileSource, Frame


# ---------------------------------------------------------------------------
# Registry merge algebra.
# ---------------------------------------------------------------------------


class TestRegistryMerge:
    def test_counters_sum_and_labels_survive(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("noc.injected", network="data").inc(3)
        a.counter("plain").inc(1)
        b.counter("noc.injected", network="data").inc(4)
        b.counter("noc.injected", network="resp").inc(9)
        a.merge(b.dump())
        assert a.counter("noc.injected", network="data").value == 7
        assert a.counter("noc.injected", network="resp").value == 9
        assert a.counter("plain").value == 1

    def test_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(5)
        b.gauge("depth").set(2)
        a.merge(b.dump())
        assert a.gauge("depth").value == 2

    def test_histograms_add_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        bounds = [1.0, 10.0, 100.0]
        for value in (0.5, 5.0, 50.0):
            a.histogram("lat", buckets=bounds).observe(value)
        for value in (0.7, 500.0):
            b.histogram("lat", buckets=bounds).observe(value)
        a.merge(b.dump())
        h = a.histogram("lat", buckets=bounds)
        assert h.count == 5
        assert h.counts == [2, 1, 1, 1]
        assert h.min == 0.5
        assert h.max == 500.0
        assert h.total == pytest.approx(0.5 + 5 + 50 + 0.7 + 500)

    def test_merge_into_empty_is_identity(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        src.counter("c", kind="x").inc(2)
        src.gauge("g").set(1.5)
        src.histogram("h", buckets=[1, 2]).observe(1.7)
        dst.merge(src.dump())
        assert dst.to_dict() == src.to_dict()

    def test_mismatched_buckets_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=[1, 2]).observe(1)
        b.histogram("h", buckets=[1, 2, 3]).observe(1)
        with pytest.raises(ObsError, match="mismatched buckets"):
            a.merge(b.dump())

    def test_kind_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1)
        with pytest.raises(ObsError, match="already registered"):
            a.merge(b.dump())

    def test_disabled_registry_ignores_merge(self):
        src = MetricsRegistry()
        src.counter("c").inc(5)
        dst = MetricsRegistry(enabled=False)
        dst.merge(src.dump())
        assert len(dst) == 0


# ---------------------------------------------------------------------------
# Worker snapshots.
# ---------------------------------------------------------------------------


class TestSnapshot:
    def test_capture_and_merge_roundtrip(self):
        worker = Telemetry(tracer=Tracer(process_name=""))
        worker.metrics.counter("noc.injected", network="data").inc(6)
        worker.metrics.histogram("lat", buckets=[1, 2]).observe(1.5)
        worker.tracer.instant("evt")
        snap = capture_snapshot(worker)
        assert not snap.empty

        driver = Telemetry()
        merge_snapshot(driver, snap)
        doc = driver.metrics_document()
        assert doc["counters"]["noc.injected{network=data}"] == 6
        assert doc["histograms"]["lat"]["count"] == 1
        names = [e["name"] for e in driver.tracer.events if e["ph"] != "M"]
        assert "evt" in names

    def test_foreign_pid_gets_named_track_once(self):
        driver = Telemetry()
        events = [{"name": "e", "ph": "i", "ts": 0, "pid": 999, "tid": 0}]
        snap = TelemetrySnapshot(pid=999, events=events)
        merge_snapshot(driver, snap)
        merge_snapshot(driver, TelemetrySnapshot(pid=999, events=events))
        metas = [
            e for e in driver.tracer.events
            if e["ph"] == "M" and e.get("pid") == 999
        ]
        assert len(metas) == 1
        assert metas[0]["args"]["name"] == "worker-999"

    def test_disabled_driver_ignores_snapshot(self):
        driver = Telemetry.disabled()
        snap = TelemetrySnapshot(
            pid=1, metrics=[{"kind": "counter", "key": "c", "value": 3}]
        )
        merge_snapshot(driver, snap)
        assert len(driver.metrics) == 0


# ---------------------------------------------------------------------------
# The headline property: worker count never changes merged telemetry.
# ---------------------------------------------------------------------------


def _noc_trial(ctx):
    """One small NoC simulation recording real in-simulator metrics."""
    from repro.noc.dualnetwork import NetworkId
    from repro.noc.simulator import NocSimulator
    from repro.workloads.traffic import TrafficPattern, generate_traffic

    config = ctx.config
    sim = NocSimulator(config, engine="fast")
    traffic = generate_traffic(
        config, TrafficPattern.UNIFORM, 0.1, 20,
        seed=int(ctx.rng.integers(0, 2**31)),
    )
    for _, packet in traffic:
        sim.inject(packet, NetworkId.XY)
    for _ in range(20):
        sim.step()
    sim.drain(max_cycles=5_000)
    return sim.report().delivered


def _run_with_workers(workers: int) -> Telemetry:
    telemetry = Telemetry()
    engine = ExperimentEngine(workers=workers, cache=None, telemetry=telemetry)
    engine.run(
        _noc_trial,
        experiment="pipeline-eq",
        trials=8,
        seed=42,
        config=SystemConfig(rows=4, cols=4),
    )
    return telemetry


class TestWorkerMergeEquality:
    def test_multiworker_metrics_equal_single_worker(self):
        tel_1 = _run_with_workers(1)
        tel_4 = _run_with_workers(4)
        doc_1 = tel_1.metrics_document()
        doc_4 = tel_4.metrics_document()

        # In-simulator metrics made it back from the workers at all.
        assert any(k.startswith("noc.") for k in doc_4["counters"])
        # Counter totals and label sets are exactly equal.
        assert doc_1["counters"] == doc_4["counters"]
        # Histograms: observation counts always match; cycle-domain
        # simulator histograms match to the bucket level too (wall-time
        # histograms like engine.trial_seconds measure contention, so
        # their bucket *placement* legitimately varies with workers).
        assert set(doc_1["histograms"]) == set(doc_4["histograms"])
        assert any(k.startswith("noc.") for k in doc_1["histograms"])
        for key, snap in doc_1["histograms"].items():
            assert doc_4["histograms"][key]["count"] == snap["count"], key
            if key.startswith("noc."):
                assert doc_4["histograms"][key]["buckets"] == snap["buckets"], key

        # Trace events: workers>1 adds one process_name meta event per
        # worker pid, so equality is over *non-meta* events.
        events_1 = [e for e in tel_1.tracer.events if e.get("ph") != "M"]
        events_4 = [e for e in tel_4.tracer.events if e.get("ph") != "M"]
        assert len(events_1) == len(events_4)

    def test_disabled_telemetry_ships_no_snapshots(self):
        telemetry = Telemetry.disabled()
        engine = ExperimentEngine(workers=2, cache=None, telemetry=telemetry)
        result = engine.run(
            _noc_trial,
            experiment="pipeline-off",
            trials=4,
            seed=1,
            config=SystemConfig(rows=4, cols=4),
        )
        assert len(result.values) == 4
        assert len(telemetry.metrics) == 0


# ---------------------------------------------------------------------------
# Sampler rings and the JSONL log.
# ---------------------------------------------------------------------------


class TestSampler:
    def test_ring_bounded_and_ordered(self):
        ring = SeriesRing("s", capacity=3)
        for i in range(5):
            ring.append(float(i), float(i * 10))
        assert len(ring) == 3
        assert ring.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert ring.values() == [20.0, 30.0, 40.0]
        assert ring.last() == 40.0

    def test_samples_instruments_and_histogram_counts(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc(3)
        reg.gauge("serve.queue_depth").set(7)
        reg.histogram("lat", buckets=[1, 2]).observe(0.5)
        reg.counter("noc.delivered", network="data").inc(2)
        clock = iter(float(i) for i in range(100))
        sampler = MetricsSampler(
            reg,
            ["serve.requests", "serve.queue_depth", "lat",
             "noc.delivered{network=data}", "absent.metric"],
            proc_stats=False,
            clock=lambda: next(clock),
        )
        values = sampler.sample_once()
        assert values == {
            "serve.requests": 3.0,
            "serve.queue_depth": 7.0,
            "lat": 1.0,                            # histogram → count
            "noc.delivered{network=data}": 2.0,
        }
        reg.counter("serve.requests").inc()
        sampler.sample_once()
        history = sampler.history()
        assert history["samples_taken"] == 2
        assert history["series"]["serve.requests"] == [[0.0, 3.0], [1.0, 4.0]]
        assert "absent.metric" not in history["series"]

    def test_proc_sources_present_on_linux(self):
        sampler = MetricsSampler(MetricsRegistry(), [], proc_stats=True)
        values = sampler.sample_once()
        # Linux CI: both /proc reads succeed; elsewhere they are skipped
        # silently, which is also correct behaviour.
        if "proc.rss_bytes" in values:
            assert values["proc.rss_bytes"] > 0
            assert values["proc.cpu_seconds"] >= 0

    def test_jsonl_log_roundtrip_tolerates_truncation(self, tmp_path):
        log = tmp_path / "samples.jsonl"
        reg = MetricsRegistry()
        reg.counter("c").inc()
        sampler = MetricsSampler(
            reg, ["c"], proc_stats=False, log_path=str(log),
            clock=lambda: 1.0,
        )
        sampler.sample_once()
        sampler.sample_once()
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro.samples/1", "ts": 2.0, "val')
        samples = read_sample_log(str(log))
        assert len(samples) == 2
        assert samples[0]["values"] == {"c": 1.0}
        assert read_sample_log(str(log), limit=1) == samples[-1:]


# ---------------------------------------------------------------------------
# Prometheus exposition.
# ---------------------------------------------------------------------------


class TestPrometheus:
    def test_counters_get_total_suffix_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("noc.injected", network="data").inc(5)
        text = render_prometheus(reg.to_dict())
        assert "# TYPE noc_injected_total counter" in text
        assert 'noc_injected_total{network="data"} 5' in text

    def test_histogram_buckets_cumulative_to_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat.s", buckets=[1.0, 10.0])
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)
        lines = render_prometheus(reg.to_dict()).splitlines()
        assert 'lat_s_bucket{le="1"} 1' in lines
        assert 'lat_s_bucket{le="10"} 2' in lines
        assert 'lat_s_bucket{le="+Inf"} 3' in lines
        assert "lat_s_count 3" in lines
        assert "lat_s_sum 105.5" in lines

    def test_type_header_once_per_metric_family(self):
        reg = MetricsRegistry()
        reg.counter("noc.delivered", network="a").inc()
        reg.counter("noc.delivered", network="b").inc()
        text = render_prometheus(reg.to_dict())
        assert text.count("# TYPE noc_delivered_total counter") == 1

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("g", path='a"b\\c').set(1)
        text = render_prometheus(reg.to_dict())
        assert 'path="a\\"b\\\\c"' in text

    def test_empty_document_renders_empty(self):
        assert render_prometheus(MetricsRegistry().to_dict()) == ""


# ---------------------------------------------------------------------------
# Document diffing.
# ---------------------------------------------------------------------------


class TestDiff:
    def test_cost_and_goodness_directions(self):
        a = {"m": {"overhead_pct": 10.0, "throughput": 100.0, "widgets": 5.0}}
        b = {"m": {"overhead_pct": 20.0, "throughput": 200.0, "widgets": 50.0}}
        report = diff_documents(a, b, threshold=0.1)
        kinds = {e.key: e.kind for e in report.entries}
        assert kinds["m.overhead_pct"] == "regression"      # cost grew
        assert kinds["m.throughput"] == "improvement"       # goodness grew
        assert kinds["m.widgets"] == "changed"              # neutral key

    def test_threshold_suppresses_noise(self):
        a = {"m": {"wall_s": 1.00}}
        b = {"m": {"wall_s": 1.05}}
        assert diff_documents(a, b, threshold=0.1).ok
        assert not diff_documents(a, b, threshold=0.01).ok

    def test_added_removed_and_ignore(self):
        a = {"old": 1.0, "wall_s": 1.0}
        b = {"new": 2.0, "wall_s": 9.0}
        report = diff_documents(a, b, ignore="wall")
        kinds = {e.key: e.kind for e in report.entries}
        assert kinds == {"old": "removed", "new": "added"}
        assert report.ok

    def test_zero_base_flags_growth(self):
        report = diff_documents({"misses": 0.0}, {"misses": 5.0})
        assert [e.kind for e in report.entries] == ["regression"]

    def test_cli_diff_exit_semantics(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps({"measured": {"overhead_pct": 5.0}}))
        b.write_text(json.dumps({"measured": {"overhead_pct": 9.0}}))
        result = run_obs("diff", [str(a), str(b)])
        assert not result["ok"]
        assert result["diff"]["regressions"] == 1
        result = run_obs("diff", [str(a), str(a)])
        assert result["ok"]
        with pytest.raises(SystemExit):
            run_obs("diff", [str(a)])


# ---------------------------------------------------------------------------
# The top renderer and its sources.
# ---------------------------------------------------------------------------


class TestTop:
    def test_sparkline_shape(self):
        assert sparkline([]) == ""
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_render_frame_panels(self):
        frame = Frame(
            source="t",
            health={"status": "ok", "uptime_s": 5, "workers": 2,
                    "engine_workers": 1},
            counters={"serve.requests": 4, "serve.jobs_executed": 2,
                      "engine.trials": 20,
                      "engine.cache_hits{experiment=fig6}": 1,
                      "engine.cache_misses{experiment=fig6}": 1},
            gauges={"serve.queue_depth": 1, "serve.jobs_running": 1},
            histograms={"engine.trial_seconds":
                        {"count": 20, "p50": 0.001, "p99": 0.002, "max": 0.01}},
            series={"serve.queue_depth": [0, 1, 2]},
        )
        text = render_frame(frame, width=100)
        assert "[queue]" in text
        assert "[throughput]" in text
        assert "[cache & coalescing]" in text
        assert "[latency (engine.trial_seconds)]" in text
        assert "engine cache hits" in text and "(50%)" in text

    def test_render_frame_error_short_circuits(self):
        text = render_frame(Frame(source="t", error="unreachable"))
        assert "!! unreachable" in text
        assert "[queue]" not in text

    def test_file_source_builds_series(self, tmp_path):
        log = tmp_path / "s.jsonl"
        lines = [
            {"schema": "repro.samples/1", "ts": float(i),
             "values": {"serve.queue_depth": float(i), "serve.requests": 2.0}}
            for i in range(4)
        ]
        log.write_text("\n".join(json.dumps(d) for d in lines) + "\n")
        frame = FileSource(str(log)).fetch()
        assert frame.error is None
        assert frame.series["serve.queue_depth"] == [0.0, 1.0, 2.0, 3.0]
        assert frame.gauges["serve.queue_depth"] == 3.0
        assert frame.counters["serve.requests"] == 2.0
        text = render_frame(frame)
        assert "[queue]" in text

    def test_file_source_empty_log(self, tmp_path):
        log = tmp_path / "empty.jsonl"
        log.write_text("")
        frame = FileSource(str(log)).fetch()
        assert frame.error == "no samples yet"


# ---------------------------------------------------------------------------
# Truncated trailing JSONL tolerance (the satellite fix).
# ---------------------------------------------------------------------------


def _event(name: str) -> dict:
    return {"name": name, "ph": "i", "ts": 1.0, "pid": 1, "tid": 0}


class TestTruncatedTrace:
    def test_trailing_truncation_dropped_with_warning(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(_event("a")) + "\n"
            + json.dumps(_event("b")) + "\n"
            + '{"name": "c", "ph"'          # killed mid-write
        )
        events, warnings = read_trace_with_warnings(str(path))
        assert [e["name"] for e in events] == ["a", "b"]
        assert len(warnings) == 1 and "truncated" in warnings[0]
        assert len(read_trace(str(path))) == 2

    def test_midfile_corruption_still_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(_event("a")) + "\n"
            + "{broken\n"
            + json.dumps(_event("b")) + "\n"
        )
        with pytest.raises(ObsError, match="bad JSONL event"):
            read_trace(str(path))

    def test_sole_truncated_line_is_an_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "a", "ph"')
        with pytest.raises(ObsError):
            read_trace(str(path))

    def test_validate_and_summarize_tolerate_truncation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(_event("a")) + "\n" + '{"name": "b", "ph'
        )
        kind, problems = validate_file(str(path))
        assert kind == "trace" and problems == []
        kind, text = summarize_file(str(path))
        assert "WARNING: 1 truncated trailing line(s) dropped" in text
        result = run_obs("validate", [str(path)])
        assert result["ok"]
