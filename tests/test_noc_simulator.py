"""Tests for the cycle-level NoC simulator (packets, routers, simulation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.errors import NetworkError
from repro.noc.dualnetwork import NetworkId
from repro.noc.faults import FaultMap
from repro.noc.packets import PACKET_BITS, Packet, PacketKind
from repro.noc.router import InputFifo, Port, Router, port_toward
from repro.noc.routing import RoutingPolicy
from repro.noc.simulator import NocSimulator, SimulationReport
from repro.workloads.traffic import TrafficPattern, generate_traffic

coords8 = st.tuples(st.integers(0, 7), st.integers(0, 7))


class TestPackets:
    def test_packet_is_100_bits(self):
        assert PACKET_BITS == 100

    @given(
        src=coords8,
        dst=coords8,
        address=st.integers(0, 2**15 - 1),
        payload=st.integers(0, 2**64 - 1),
        kind=st.sampled_from(list(PacketKind)),
    )
    def test_encode_decode_roundtrip(self, src, dst, address, payload, kind):
        packet = Packet(kind=kind, src=src, dst=dst, address=address, payload=payload)
        word = packet.encode(cols=8)
        assert 0 <= word < (1 << PACKET_BITS)
        decoded = Packet.decode(word, cols=8)
        assert decoded.kind == kind
        assert decoded.src == src
        assert decoded.dst == dst
        assert decoded.address == address
        assert decoded.payload == payload

    def test_oversize_fields_rejected(self):
        with pytest.raises(NetworkError):
            Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(0, 1), address=1 << 15)
        with pytest.raises(NetworkError):
            Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(0, 1), payload=1 << 64)

    def test_latency_requires_both_stamps(self):
        packet = Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(1, 1))
        assert packet.latency is None
        packet.injected_cycle = 3
        packet.delivered_cycle = 10
        assert packet.latency == 7


class TestRouter:
    def test_output_port_follows_dor(self):
        router = Router((2, 2), RoutingPolicy.XY)
        east = Packet(kind=PacketKind.REQUEST, src=(2, 2), dst=(0, 5))
        assert router.output_port(east) is Port.EAST     # column first in XY
        local = Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(2, 2))
        assert router.output_port(local) is Port.LOCAL

    def test_yx_router_corrects_row_first(self):
        router = Router((2, 2), RoutingPolicy.YX)
        packet = Packet(kind=PacketKind.REQUEST, src=(2, 2), dst=(0, 5))
        assert router.output_port(packet) is Port.NORTH

    def test_port_toward(self):
        assert port_toward((1, 1), (0, 1)) is Port.NORTH
        assert port_toward((1, 1), (1, 2)) is Port.EAST
        with pytest.raises(NetworkError):
            port_toward((1, 1), (3, 3))

    def test_fifo_backpressure(self):
        fifo = InputFifo(depth=2)
        p = Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(1, 1))
        fifo.push(p)
        fifo.push(p)
        assert fifo.full
        with pytest.raises(NetworkError):
            fifo.push(p)

    def test_round_robin_rotates(self):
        router = Router((1, 1), RoutingPolicy.XY)
        # Two packets from different inputs contending for EAST.
        p = Packet(kind=PacketKind.REQUEST, src=(1, 0), dst=(1, 3))
        q = Packet(kind=PacketKind.REQUEST, src=(0, 1), dst=(1, 3))
        router.accept(Port.WEST, p)
        router.accept(Port.NORTH, q)
        winners = router.arbitrate()
        out_port, (in_port, _) = next(iter(winners.items()))
        assert out_port is Port.EAST
        router.grant(out_port, in_port)
        # The other input must win next.
        winners2 = router.arbitrate()
        _, (in_port2, _) = next(iter(winners2.items()))
        assert in_port2 != in_port


class TestSimulator:
    def test_single_packet_latency(self, small_cfg):
        sim = NocSimulator(small_cfg)
        packet = Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(0, 3))
        sim.inject(packet, NetworkId.XY)
        sim.drain()
        assert packet.latency is not None
        assert packet.latency >= 3      # at least one cycle per hop

    def test_request_generates_response_on_complement(self, small_cfg):
        sim = NocSimulator(small_cfg)
        sim.inject(
            Packet(kind=PacketKind.REQUEST, src=(1, 1), dst=(6, 6)), NetworkId.XY
        )
        sim.drain()
        report = sim.report()
        assert report.delivered == 2
        assert report.responses_delivered == 1
        assert report.per_network_delivered[NetworkId.XY] == 1
        assert report.per_network_delivered[NetworkId.YX] == 1

    def test_faulty_endpoint_dropped(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(3, 3)}))
        sim = NocSimulator(small_cfg, fault_map=fmap)
        ok = sim.inject(
            Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(3, 3)), NetworkId.XY
        )
        assert not ok
        assert sim.report().dropped_unreachable == 1

    def test_many_packets_all_delivered(self, small_cfg):
        sim = NocSimulator(small_cfg)
        traffic = generate_traffic(
            small_cfg, TrafficPattern.UNIFORM, injection_rate=0.05,
            cycles=50, seed=2,
        )
        for cycle, packet in traffic:
            sim.inject(packet, NetworkId.XY)
        sim.drain()
        report = sim.report()
        # Responses are re-injected, so injected == delivered and half of
        # everything delivered is a response.
        assert report.delivered == report.injected
        assert report.responses_delivered == report.delivered // 2
        assert report.mean_latency > 0

    def test_deadlock_free_under_heavy_transpose(self):
        cfg = SystemConfig(rows=6, cols=6)
        sim = NocSimulator(cfg, fifo_depth=2)
        traffic = generate_traffic(
            cfg, TrafficPattern.TRANSPOSE, injection_rate=0.3, cycles=40, seed=3
        )
        for _, packet in traffic:
            sim.inject(packet, NetworkId.XY)
        sim.drain(max_cycles=20_000)    # raises on deadlock/livelock
        assert sim.idle()

    def test_hotspot_congestion_raises_latency(self):
        cfg = SystemConfig(rows=6, cols=6)
        quiet = NocSimulator(cfg)
        busy = NocSimulator(cfg)
        low = generate_traffic(cfg, TrafficPattern.HOTSPOT, 0.02, 60, seed=4)
        high = generate_traffic(cfg, TrafficPattern.HOTSPOT, 0.4, 60, seed=4)
        for _, p in low:
            quiet.inject(p, NetworkId.XY)
        for _, p in high:
            busy.inject(p, NetworkId.XY)
        quiet.drain(max_cycles=50_000)
        busy.drain(max_cycles=50_000)
        assert busy.report().mean_latency > quiet.report().mean_latency

    def test_report_throughput(self, small_cfg):
        sim = NocSimulator(small_cfg)
        for col in range(1, 8):
            sim.inject(
                Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(0, col)),
                NetworkId.XY,
            )
        sim.drain()
        report = sim.report()
        assert report.throughput_packets_per_cycle > 0
        assert report.p99_latency >= report.mean_latency


class TestLatencyPercentile:
    """Regression tests for SimulationReport.latency_percentile / p99."""

    def _report(self, latencies):
        return SimulationReport(
            cycles=100,
            injected=len(latencies),
            delivered=len(latencies),
            responses_delivered=0,
            dropped_unreachable=0,
            latencies=list(latencies),
        )

    def test_empty_returns_zero_instead_of_raising(self):
        report = self._report([])
        assert report.p99_latency == 0.0
        assert report.latency_percentile(50) == 0.0

    def test_single_sample(self):
        assert self._report([7]).p99_latency == 7.0

    def test_two_samples_interpolates(self):
        # p99 of [10, 20] is not simply max(): rank 0.99 between them.
        report = self._report([10, 20])
        assert report.p99_latency == pytest.approx(19.9)

    @given(
        latencies=st.lists(st.integers(1, 500), min_size=1, max_size=40),
        q=st.sampled_from([0, 25, 50, 90, 99, 100]),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_linear_method(self, latencies, q):
        import numpy as np

        report = self._report(latencies)
        assert report.latency_percentile(q) == pytest.approx(
            float(np.percentile(latencies, q))
        )

    def test_out_of_range_q_raises(self):
        report = self._report([1, 2, 3])
        with pytest.raises(NetworkError):
            report.latency_percentile(101)
        with pytest.raises(NetworkError):
            report.latency_percentile(-1)
