"""Tests for repro.dft (JTAG, DAP chains, broadcast, unrolling, probes)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.dft.broadcast import BroadcastLoader, LoadMode
from repro.dft.dap import ChainMode, TileDapChain
from repro.dft.jtag import JtagChain, JtagDevice, TapController, TapState
from repro.dft.multichain import (
    load_time_model,
    paper_load_time_comparison,
    row_chains,
    single_chain,
)
from repro.dft.probe import PadSet, ProbeCard, can_probe, probe_plan
from repro.dft.unrolling import (
    ChainTestSession,
    TileUnderTest,
    during_assembly_check,
    locate_faulty_tiles,
)
from repro.errors import JtagError


class TestTapController:
    def test_reset_from_anywhere(self):
        tap = TapController()
        tap.step(0)                         # Run-Test/Idle
        tap.goto_shift_dr()
        tap.reset()
        assert tap.state is TapState.TEST_LOGIC_RESET

    def test_dr_scan_path(self):
        tap = TapController()
        tap.step(0)
        assert tap.state is TapState.RUN_TEST_IDLE
        tap.goto_shift_dr()
        assert tap.state is TapState.SHIFT_DR
        tap.exit_to_idle()
        assert tap.state is TapState.RUN_TEST_IDLE

    def test_ir_scan_path(self):
        tap = TapController()
        tap.step(0)
        tap.goto_shift_ir()
        assert tap.state is TapState.SHIFT_IR

    def test_invalid_tms_rejected(self):
        with pytest.raises(JtagError):
            TapController().step(2)

    @given(tms_sequence=st.lists(st.integers(0, 1), min_size=1, max_size=100))
    def test_all_transitions_defined(self, tms_sequence):
        tap = TapController()
        for tms in tms_sequence:
            state = tap.step(tms)
            assert isinstance(state, TapState)

    @given(tms_sequence=st.lists(st.integers(0, 1), max_size=50))
    def test_five_ones_always_reset(self, tms_sequence):
        """The IEEE 1149.1 guarantee: 5x TMS=1 reaches Test-Logic-Reset."""
        tap = TapController()
        for tms in tms_sequence:
            tap.step(tms)
        for _ in range(5):
            tap.step(1)
        assert tap.state is TapState.TEST_LOGIC_RESET


class TestJtagChain:
    def test_shift_through_two_devices(self):
        a = JtagDevice("a", ir_length=4)
        b = JtagDevice("b", ir_length=4)
        chain = JtagChain([a, b])
        chain.select_all("BYPASS")
        # Two bypass bits: a 1 emerges after 2 shifts.
        tdo = chain.shift_dr([1, 0, 0])
        assert tdo == [0, 0, 1]

    def test_dr_values_land_in_devices(self):
        a = JtagDevice("a", ir_length=4, dr_lengths={"BYPASS": 1, "REG": 4})
        b = JtagDevice("b", ir_length=4, dr_lengths={"BYPASS": 1, "REG": 4})
        chain = JtagChain([a, b])
        chain.select_all("REG")
        # Shift 8 bits: the last 4 shifted end up in device a (nearest TDI).
        chain.shift_dr([1, 1, 1, 1, 0, 1, 0, 1])
        assert a.dr_value != 0 or b.dr_value != 0
        assert chain.total_dr_bits == 8

    def test_bit_exact_pattern_recovery(self):
        """Whatever is shifted in comes out after total_dr_bits shifts."""
        devices = [
            JtagDevice(f"d{i}", ir_length=4, dr_lengths={"BYPASS": 1, "R": 3})
            for i in range(4)
        ]
        chain = JtagChain(devices)
        chain.select_all("R")
        pattern = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0]
        tdo_first = chain.shift_dr(pattern)
        tdo_second = chain.shift_dr([0] * len(pattern))
        assert tdo_second == pattern    # the pattern re-emerges intact

    def test_broken_chain_raises(self):
        a = JtagDevice("a", ir_length=4)
        b = JtagDevice("b", ir_length=4, faulty=True)
        chain = JtagChain([a, b])
        assert chain.broken
        with pytest.raises(JtagError):
            chain.shift_dr([1])

    def test_unknown_instruction(self):
        with pytest.raises(JtagError):
            JtagDevice("a", ir_length=4).select("NOPE")

    def test_scan_cycles_accounting(self):
        chain = JtagChain([JtagDevice(f"d{i}", 4) for i in range(8)])
        cycles = chain.scan_cycles(words=10, word_bits=35)
        assert cycles == 10 * (35 + 7 + 10)

    def test_ir_length_minimum(self):
        with pytest.raises(JtagError):
            JtagDevice("bad", ir_length=1)


class TestDapChainFig9:
    def test_14x_latency_reduction(self):
        assert TileDapChain().latency_reduction() == pytest.approx(14.0)

    def test_visible_daps(self):
        assert TileDapChain(mode=ChainMode.CHAINED).visible_dap_count() == 14
        assert TileDapChain(mode=ChainMode.BROADCAST).visible_dap_count() == 1

    def test_broadcast_loads_every_core(self):
        tile = TileDapChain(mode=ChainMode.BROADCAST)
        tile.broadcast_load([0xDEAD, 0xBEEF])
        for dap in tile.daps:
            assert dap.loaded_words == [0xDEAD, 0xBEEF]

    def test_chained_loads_distinct(self):
        tile = TileDapChain(cores=3, mode=ChainMode.CHAINED)
        tile.chained_load([[1], [2], [3]])
        assert [d.loaded_words for d in tile.daps] == [[1], [2], [3]]

    def test_mode_mismatch_rejected(self):
        with pytest.raises(JtagError):
            TileDapChain(mode=ChainMode.CHAINED).broadcast_load([1])
        with pytest.raises(JtagError):
            TileDapChain(mode=ChainMode.BROADCAST).chained_load([[1]] * 14)

    @given(cores=st.integers(1, 32), payload=st.integers(1, 4096))
    def test_reduction_equals_core_count(self, cores, payload):
        chain = TileDapChain(cores=cores)
        assert chain.latency_reduction(payload) == pytest.approx(cores)


class TestBroadcastLoader:
    def test_modes_ordering(self):
        loader = BroadcastLoader()
        unicast = loader.estimate(4096, LoadMode.UNICAST)
        tile = loader.estimate(4096, LoadMode.BROADCAST_TILE)
        chain = loader.estimate(4096, LoadMode.BROADCAST_CHAIN)
        assert unicast.total_shift_bits > tile.total_shift_bits > chain.total_shift_bits

    def test_tile_broadcast_is_14x(self):
        loader = BroadcastLoader(cores_per_tile=14)
        tile = loader.estimate(4096, LoadMode.BROADCAST_TILE)
        assert tile.reduction_vs_unicast == pytest.approx(14.0)

    def test_seconds_at_tck(self):
        loader = BroadcastLoader(tck_hz=10e6)
        estimate = loader.estimate(1250, LoadMode.BROADCAST_CHAIN)    # 10k bits
        assert estimate.seconds == pytest.approx(1e-3)


class TestUnrollingFig10:
    def test_healthy_chain_fully_unrolls(self):
        assert locate_faulty_tiles([True] * 16) == []

    def test_first_faulty_located(self):
        for position in (0, 3, 15):
            health = [True] * 16
            health[position] = False
            assert locate_faulty_tiles(health) == [position]

    def test_unroll_stops_at_failure(self):
        health = [True, True, False, True, False]
        tiles = [TileUnderTest(index=i, healthy=h) for i, h in enumerate(health)]
        session = ChainTestSession(tiles=tiles)
        faulty = session.unroll()
        assert faulty == [2]
        assert session.tests_run == 3       # tiles 0, 1, then the failure

    def test_frontier_enforced(self):
        tiles = [TileUnderTest(index=i) for i in range(4)]
        session = ChainTestSession(tiles=tiles)
        with pytest.raises(JtagError):
            session.test_tile(2)            # cannot skip ahead

    def test_visible_chain_grows(self):
        tiles = [TileUnderTest(index=i) for i in range(4)]
        session = ChainTestSession(tiles=tiles)
        session.unroll()
        lengths = [s.visible_chain_length for s in session.steps]
        assert lengths == [1, 2, 3, 4]

    def test_during_assembly_partial(self):
        health = [True, True, False, True]
        faulty, good = during_assembly_check(2, health)
        assert good and faulty == []
        faulty, good = during_assembly_check(3, health)
        assert not good and faulty == [2]

    def test_bad_indices_rejected(self):
        with pytest.raises(JtagError):
            ChainTestSession(tiles=[TileUnderTest(index=5)])

    @given(health=st.lists(st.booleans(), min_size=1, max_size=64))
    @settings(max_examples=50)
    def test_locates_first_failure_property(self, health):
        result = locate_faulty_tiles(health)
        if all(health):
            assert result == []
        else:
            assert result == [health.index(False)]


class TestMultiChainSection7:
    def test_row_chain_count(self, paper_cfg):
        plan = row_chains(paper_cfg)
        assert plan.chain_count == 32
        assert plan.max_chain_length == 32

    def test_single_chain_covers_everything(self, paper_cfg):
        plan = single_chain(paper_cfg)
        assert plan.chain_count == 1
        assert plan.max_chain_length == 1024

    def test_serpentine_is_contiguous(self, paper_cfg):
        tiles = single_chain(paper_cfg).chains[0].tiles
        for a, b in zip(tiles, tiles[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_row_chains_achieve_10mhz(self, paper_cfg):
        assert row_chains(paper_cfg).tck_hz() == pytest.approx(10e6)

    def test_single_chain_tck_degraded(self, paper_cfg):
        assert single_chain(paper_cfg).tck_hz() < 1e6

    def test_paper_load_comparison(self, paper_cfg):
        result = paper_load_time_comparison(paper_cfg)
        assert result["single_chain_hours"] == pytest.approx(2.5, rel=0.1)
        assert result["multi_chain_minutes"] < 5.0
        assert result["speedup"] == pytest.approx(32.0)

    def test_load_time_scales_inverse_chains(self, paper_cfg):
        single = load_time_model(single_chain(paper_cfg))
        multi = load_time_model(row_chains(paper_cfg))
        assert single.seconds == pytest.approx(multi.seconds * 32)

    def test_custom_payload(self, paper_cfg):
        estimate = load_time_model(row_chains(paper_cfg), total_bytes=0)
        assert estimate.seconds == 0.0


class TestProbeFig8:
    def test_fine_pads_not_probeable(self):
        fine = PadSet(name="fine", count=2020, pitch_um=10.0, width_um=7.0)
        assert not can_probe(fine)

    def test_large_pads_probeable(self):
        test = PadSet(name="test", count=12, pitch_um=90.0, width_um=60.0)
        assert can_probe(test)

    def test_plan_validates(self):
        plan = probe_plan(2020)
        assert plan.test_pads.probed
        assert not plan.fine_pads.probed
        assert plan.bondable_pads().count == 2020

    def test_probed_fine_pads_unbondable(self):
        plan = probe_plan(2020)
        damaged = PadSet(
            name="fine", count=2020, pitch_um=10.0, width_um=7.0, probed=True
        )
        broken = type(plan)(fine_pads=damaged, test_pads=plan.test_pads)
        with pytest.raises(JtagError):
            broken.bondable_pads()

    def test_undersized_probe_pads_rejected(self):
        with pytest.raises(JtagError):
            probe_plan(2020, probe_pad_pitch_um=30.0)

    def test_pad_geometry_validation(self):
        with pytest.raises(JtagError):
            PadSet(name="bad", count=1, pitch_um=5.0, width_um=7.0)
