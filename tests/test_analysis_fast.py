"""Differential tests for the fast analytic kernels.

Every fast path in the analysis layer keeps its reference
implementation — the per-fault connectivity loop, the
fresh-``spsolve``-per-call PDN solve, the per-flow emulator routing —
and these tests prove the fast results identical to them: randomized
and adversarial fault maps for connectivity, both load models for the
PDN (at 1e-12), and field-for-field emulation stats for the route cache.
"""

import numpy as np
import pytest

from repro.arch.emulator import Emulator, clear_route_cache
from repro.arch.system import WaferscaleSystem
from repro.config import SystemConfig
from repro.errors import NetworkError, PdnError, ReproError
from repro.flow.characterize import characterize_activity_sweep
from repro.engine import CIStop
from repro.noc.connectivity import (
    _pair_blockage,
    _pair_blockage_reference,
    _pair_blockage_sparse,
    _same_row_col_share_reference,
    disconnected_fraction,
    disconnected_fractions,
    monte_carlo_disconnection,
    same_row_col_share,
)
from repro.noc.faults import FaultMap, random_fault_map
from repro.obs.telemetry import Telemetry, use_telemetry
from repro.pdn.solver import PdnSolution, PdnSolver
from repro.workloads.bfs import DistributedBfs


def _random_maps(cfg, fault_counts, seed=0):
    rng = np.random.default_rng(seed)
    return [
        random_fault_map(cfg, count, rng)
        for count in fault_counts
        for _ in range(3)
    ]


# ---------------------------------------------------------------------------
# connectivity: vectorized kernel vs the retained reference loop
# ---------------------------------------------------------------------------


class TestConnectivityDifferential:
    def test_randomized_maps_match_reference(self, small_cfg):
        for fmap in _random_maps(small_cfg, (0, 1, 2, 5, 12), seed=3):
            assert _pair_blockage(fmap) == _pair_blockage_reference(fmap)

    def test_paper_scale_maps_match_reference(self, paper_cfg):
        for fmap in _random_maps(paper_cfg, (2, 10), seed=4):
            assert _pair_blockage(fmap) == _pair_blockage_reference(fmap)

    def test_non_square_grid_matches_reference(self):
        cfg = SystemConfig(rows=6, cols=5)
        for fmap in _random_maps(cfg, (0, 1, 4, 9), seed=5):
            assert _pair_blockage(fmap) == _pair_blockage_reference(fmap)

    def test_same_row_only_faults(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset((3, c) for c in range(1, 7)))
        assert _pair_blockage(fmap) == _pair_blockage_reference(fmap)

    def test_same_col_only_faults(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset((r, 5) for r in range(0, 8, 2)))
        assert _pair_blockage(fmap) == _pair_blockage_reference(fmap)

    def test_near_fully_faulty(self, small_cfg):
        healthy = {(0, 0), (7, 7), (3, 4)}
        faulty = frozenset(
            coord for coord in small_cfg.tile_coords() if coord not in healthy
        )
        fmap = FaultMap(small_cfg, faulty)
        assert _pair_blockage(fmap) == _pair_blockage_reference(fmap)

    def test_degenerate_map_raises_both_kernels(self, small_cfg):
        faulty = frozenset(set(small_cfg.tile_coords()) - {(0, 0)})
        fmap = FaultMap(small_cfg, faulty)
        for method in ("vectorized", "reference"):
            with pytest.raises(NetworkError, match="two healthy"):
                disconnected_fraction(fmap, method=method)

    def test_unknown_method_rejected(self, clean_map):
        with pytest.raises(ReproError, match="unknown method"):
            disconnected_fraction(clean_map, method="nope")

    def test_batched_fractions_match_single(self, small_cfg):
        maps = _random_maps(small_cfg, (1, 4), seed=6)
        batched = disconnected_fractions(maps)
        assert batched == [disconnected_fraction(m) for m in maps]

    def test_sparse_kernel_matches_both_kernels(self, small_cfg):
        for fmap in _random_maps(small_cfg, (0, 1, 2, 5, 12, 30), seed=8):
            sparse = _pair_blockage_sparse(fmap)
            assert sparse == _pair_blockage(fmap)
            assert sparse == _pair_blockage_reference(fmap)

    def test_sparse_kernel_paper_scale_and_non_square(self, paper_cfg):
        for fmap in _random_maps(paper_cfg, (5, 40), seed=9):
            assert _pair_blockage_sparse(fmap) == _pair_blockage(fmap)
        cfg = SystemConfig(rows=6, cols=5)
        for fmap in _random_maps(cfg, (0, 3, 9), seed=10):
            assert _pair_blockage_sparse(fmap) == _pair_blockage(fmap)

    def test_sparse_kernel_adversarial_rows_cols(self, small_cfg):
        row_map = FaultMap(small_cfg, frozenset((3, c) for c in range(1, 7)))
        col_map = FaultMap(small_cfg, frozenset((r, 5) for r in range(0, 8, 2)))
        healthy = {(0, 0), (7, 7), (3, 4)}
        dense_map = FaultMap(
            small_cfg,
            frozenset(
                coord
                for coord in small_cfg.tile_coords()
                if coord not in healthy
            ),
        )
        for fmap in (row_map, col_map, dense_map):
            assert _pair_blockage_sparse(fmap) == _pair_blockage(fmap)

    def test_sparse_kernel_degenerate_raises(self, small_cfg):
        faulty = frozenset(set(small_cfg.tile_coords()) - {(0, 0)})
        with pytest.raises(NetworkError, match="two healthy"):
            _pair_blockage_sparse(FaultMap(small_cfg, faulty))

    def test_same_row_col_share_matches_reference(self, small_cfg):
        for fmap in _random_maps(small_cfg, (1, 3, 8), seed=7):
            fast = same_row_col_share(fmap)
            ref = _same_row_col_share_reference(fmap)
            assert fast == pytest.approx(ref, abs=1e-12)


class TestMonteCarloFastPath:
    def test_methods_produce_identical_statistics(self, small_cfg):
        kwargs = dict(fault_counts=[2, 5], trials=6, seed=9)
        fast = monte_carlo_disconnection(small_cfg, **kwargs)
        ref = monte_carlo_disconnection(small_cfg, method="reference", **kwargs)
        assert fast == ref

    def test_batched_run_is_deterministic(self, small_cfg):
        kwargs = dict(fault_counts=[3], trials=7, seed=2, batch=3)
        first = monte_carlo_disconnection(small_cfg, **kwargs)
        second = monte_carlo_disconnection(small_cfg, **kwargs)
        assert first == second
        assert first[0].trials == 7

    def test_degenerate_draw_names_trial_and_seed(self):
        cfg = SystemConfig(rows=1, cols=3)
        with pytest.raises(NetworkError) as excinfo:
            monte_carlo_disconnection(cfg, [2], trials=2, seed=11)
        message = str(excinfo.value)
        assert "degenerate fault map" in message
        assert "trial" in message
        assert "fault_count 2" in message
        assert "run seed (11, 2)" in message

    def test_batch_must_be_positive(self, small_cfg):
        with pytest.raises(NetworkError, match="batch"):
            monte_carlo_disconnection(small_cfg, [1], trials=2, batch=0)
        with pytest.raises(NetworkError, match="batch"):
            monte_carlo_disconnection(small_cfg, [1], trials=2, batch="nope")

    def test_chunk_dispatch_bit_identical_to_per_trial(self, small_cfg):
        kwargs = dict(fault_counts=[2, 5], trials=20, seed=9)
        base = monte_carlo_disconnection(small_cfg, **kwargs)
        for workers in (1, 3):
            chunked = monte_carlo_disconnection(
                small_cfg, workers=workers, batch="chunk", **kwargs
            )
            assert chunked == base

    def test_chunk_dispatch_reference_method(self, small_cfg):
        kwargs = dict(fault_counts=[3], trials=8, seed=4, method="reference")
        base = monte_carlo_disconnection(small_cfg, **kwargs)
        chunked = monte_carlo_disconnection(
            small_cfg, batch="chunk", **kwargs
        )
        assert chunked == base

    def test_chunk_degenerate_draw_names_trial_and_seed(self):
        cfg = SystemConfig(rows=1, cols=3)
        with pytest.raises(NetworkError) as excinfo:
            monte_carlo_disconnection(
                cfg, [2], trials=2, seed=11, batch="chunk"
            )
        message = str(excinfo.value)
        assert "degenerate fault map" in message
        assert "fault_count 2" in message
        assert "run seed (11, 2)" in message


class TestMonteCarloAdaptive:
    def test_stops_early_and_is_worker_invariant(self, small_cfg):
        rule = CIStop(rel_halfwidth=0.02, min_trials=16, block=8)
        kwargs = dict(fault_counts=[5], trials=400, seed=7, adaptive=rule)
        solo = monte_carlo_disconnection(small_cfg, **kwargs)
        assert solo[0].trials < 400
        pooled = monte_carlo_disconnection(small_cfg, workers=4, **kwargs)
        chunked = monte_carlo_disconnection(
            small_cfg, workers=4, batch="chunk", **kwargs
        )
        assert solo == pooled == chunked

    def test_adaptive_prefix_matches_fixed_run(self, small_cfg):
        rule = CIStop(rel_halfwidth=0.05, min_trials=16, block=8)
        adaptive = monte_carlo_disconnection(
            small_cfg, [5], trials=300, seed=3, adaptive=rule
        )
        fixed = monte_carlo_disconnection(
            small_cfg, [5], trials=adaptive[0].trials, seed=3
        )
        assert adaptive[0].mean_single_pct == fixed[0].mean_single_pct
        assert adaptive[0].mean_dual_pct == fixed[0].mean_dual_pct

    def test_adaptive_rejects_integer_batches(self, small_cfg):
        with pytest.raises(NetworkError, match="adaptive"):
            monte_carlo_disconnection(
                small_cfg, [5], trials=8, batch=4, adaptive=CIStop()
            )

    def test_adaptive_cap_is_respected(self, small_cfg):
        rule = CIStop(rel_halfwidth=1e-9, min_trials=4, block=4)
        out = monte_carlo_disconnection(
            small_cfg, [5], trials=12, seed=1, adaptive=rule
        )
        assert out[0].trials == 12


# ---------------------------------------------------------------------------
# PDN: factorization-cached solves vs fresh spsolve
# ---------------------------------------------------------------------------


class TestPdnDifferential:
    @pytest.mark.parametrize("load_model", ["ldo", "constant_power"])
    def test_factorized_matches_spsolve(self, small_cfg, load_model):
        reference = PdnSolver(small_cfg, factorize=False)
        fast = PdnSolver(small_cfg)
        for scale in (0.25, 1.0):
            power = scale * small_cfg.tile_peak_power_w
            ref_sol = reference.solve(power, load_model=load_model)
            fast_sol = fast.solve(power, load_model=load_model)
            assert np.allclose(ref_sol.voltages, fast_sol.voltages, atol=1e-12)
            assert np.allclose(ref_sol.currents, fast_sol.currents, atol=1e-12)
            assert ref_sol.iterations == fast_sol.iterations

    @pytest.mark.parametrize("load_model", ["ldo", "constant_power"])
    def test_solve_many_matches_individual_solves(self, small_cfg, load_model):
        rng = np.random.default_rng(1)
        maps = [
            rng.uniform(0.2, 1.0, size=(small_cfg.rows, small_cfg.cols))
            * small_cfg.tile_peak_power_w
            for _ in range(4)
        ]
        solver = PdnSolver(small_cfg)
        batch = solver.solve_many(maps, load_model=load_model)
        for power, batched in zip(maps, batch):
            single = solver.solve(power, load_model=load_model)
            assert np.allclose(single.voltages, batched.voltages, atol=1e-12)
            assert single.iterations == batched.iterations
            assert batched.converged

    def test_solve_many_empty_batch(self, small_cfg):
        assert PdnSolver(small_cfg).solve_many([]) == []

    def test_solve_many_rejects_bad_model(self, small_cfg):
        with pytest.raises(PdnError, match="unknown load model"):
            PdnSolver(small_cfg).solve_many([0.1], load_model="nope")

    def test_factorization_telemetry_counters(self, small_cfg):
        tel = Telemetry()
        with use_telemetry(tel):
            solver = PdnSolver(small_cfg)
            for _ in range(3):
                solver.solve()
        assert tel.metrics.counter("pdn.factorizations").value == 1
        assert tel.metrics.counter("pdn.factorization_reuses").value == 2


class TestPdnSolutionPowerLoads:
    def _solution(self, small_cfg, power):
        shape = (small_cfg.rows, small_cfg.cols)
        return PdnSolution(
            config=small_cfg,
            voltages=np.full(shape, 2.0),
            currents=np.full(shape, 0.1),
            edge_voltage=2.5,
            iterations=1,
            converged=True,
            power_loads_w=power,
        )

    def test_none_power_map_is_safe(self, small_cfg):
        solution = self._solution(small_cfg, None)
        assert solution.power_loads_w is None
        assert solution.specified_power_w is None
        assert solution.delivery_efficiency is None

    def test_recorded_power_map_properties(self, small_cfg):
        power = np.full((small_cfg.rows, small_cfg.cols), 0.35)
        solution = self._solution(small_cfg, power)
        assert solution.specified_power_w == pytest.approx(power.sum())
        assert solution.delivery_efficiency == pytest.approx(
            power.sum() / solution.supply_power_w
        )

    def test_solver_records_power_map(self, small_cfg):
        solution = PdnSolver(small_cfg).solve()
        assert solution.power_loads_w is not None
        assert solution.delivery_efficiency is not None


class TestActivitySweep:
    def test_sweep_shares_factorization(self, small_cfg):
        tel = Telemetry()
        with use_telemetry(tel):
            results = characterize_activity_sweep(
                [0.25, 0.5, 1.0], config=small_cfg
            )
        assert tel.metrics.counter("pdn.factorizations").value == 1
        assert [factor for factor, _ in results] == [0.25, 0.5, 1.0]
        min_v = [shmoo.regulated_v.min() for _, shmoo in results]
        assert min_v[0] >= min_v[-1]

    def test_sweep_validates_inputs(self, small_cfg):
        with pytest.raises(Exception, match="at least one"):
            characterize_activity_sweep([], config=small_cfg)
        with pytest.raises(Exception, match="non-negative"):
            characterize_activity_sweep([-0.5], config=small_cfg)


# ---------------------------------------------------------------------------
# emulator: fault-map-keyed route cache vs per-flow assignment
# ---------------------------------------------------------------------------


def _detour_system():
    """A system whose fault layout forces software detours."""
    cfg = SystemConfig(rows=8, cols=8)
    fmap = FaultMap(cfg).with_fault((0, 4)).with_fault((4, 0))
    return WaferscaleSystem(cfg, fmap)


class TestEmulatorRouteCache:
    def _run_bfs(self, route_cache):
        import networkx as nx

        system = _detour_system()
        graph = nx.gnm_random_graph(80, 320, seed=2)
        return DistributedBfs(system, graph).run(0, route_cache=route_cache)

    def test_stats_identical_with_and_without_cache(self):
        clear_route_cache()
        reference = self._run_bfs(route_cache=False)
        fast_cold = self._run_bfs(route_cache=True)
        fast_warm = self._run_bfs(route_cache=True)
        assert reference.distance == fast_cold.distance == fast_warm.distance
        for field in (
            "supersteps",
            "messages_sent",
            "message_hops",
            "detoured_messages",
            "local_compute_cycles",
            "network_cycles",
            "per_step_messages",
        ):
            assert (
                getattr(reference.stats, field)
                == getattr(fast_cold.stats, field)
                == getattr(fast_warm.stats, field)
            ), field
        assert reference.stats.detoured_messages > 0

    def test_route_cache_telemetry_counters(self):
        clear_route_cache()
        system = _detour_system()
        tel = Telemetry()
        with use_telemetry(tel):
            emulator = Emulator(system, telemetry=tel)
            emulator.send((0, 0), (3, 3), "ping")
            emulator.superstep(lambda tile, inbox, em: 0)
            emulator.send((0, 0), (3, 3), "ping")
            emulator.superstep(lambda tile, inbox, em: 0)
        assert tel.metrics.counter("emu.route_cache_misses").value == 1
        assert tel.metrics.counter("emu.route_cache_hits").value == 1

    def test_unreachable_pair_error_is_cached(self):
        cfg = SystemConfig(rows=2, cols=2)
        fmap = FaultMap(cfg).with_fault((0, 1)).with_fault((1, 0))
        system = WaferscaleSystem(cfg, fmap)
        clear_route_cache()
        for _ in range(2):     # second pass hits the cached entry
            emulator = Emulator(system)
            emulator.send((0, 0), (1, 1), "ping")
            with pytest.raises(NetworkError, match=r"no path for messages"):
                emulator.superstep(lambda tile, inbox, em: 0)

    def test_cache_disabled_matches_legacy_error(self):
        cfg = SystemConfig(rows=2, cols=2)
        fmap = FaultMap(cfg).with_fault((0, 1)).with_fault((1, 0))
        system = WaferscaleSystem(cfg, fmap)
        emulator = Emulator(system, route_cache=False)
        emulator.send((0, 0), (1, 1), "ping")
        with pytest.raises(NetworkError, match=r"no path for messages"):
            emulator.superstep(lambda tile, inbox, em: 0)
