"""Tests for assembly policies, lot simulation, and logical-grid remapping."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.config import SystemConfig
from repro.dft.assembly import (
    AssemblyPolicy,
    assemble_wafer,
    evaluate_policy,
    sweep_check_intervals,
)
from repro.errors import ConfigError, FaultMapError, JtagError
from repro.noc.faults import FaultMap, random_fault_map
from repro.noc.remap import (
    best_logical_grid,
    largest_fault_free_rectangle,
    logical_system_config,
    row_column_deletion,
)
from repro.verify.strategies import fault_counts, seeds
from repro.yieldmodel.lots import (
    BinPolicy,
    pillar_redundancy_lot_comparison,
    simulate_lot,
)


class TestAssemblyPolicy:
    def test_perfect_bonding_always_completes(self, small_cfg):
        policy = AssemblyPolicy(check_interval=8)
        outcome = assemble_wafer(small_cfg, policy, rng=0, tile_fail_probability=0.0)
        assert outcome.completed
        assert outcome.kgd_wasted == 0
        assert outcome.faults_found == 0

    def test_hopeless_bonding_aborts_early(self, small_cfg):
        policy = AssemblyPolicy(check_interval=4, fault_budget=2)
        outcome = assemble_wafer(small_cfg, policy, rng=0, tile_fail_probability=0.9)
        assert not outcome.completed
        assert outcome.tiles_bonded < small_cfg.tiles

    def test_never_checking_wastes_most(self):
        cfg = SystemConfig()
        never = evaluate_policy(
            cfg, AssemblyPolicy(check_interval=0, fault_budget=8),
            trials=40, seed=3, tile_fail_probability=0.02,
        )
        often = evaluate_policy(
            cfg, AssemblyPolicy(check_interval=32, fault_budget=8),
            trials=40, seed=3, tile_fail_probability=0.02,
        )
        assert often.mean_kgd_wasted < never.mean_kgd_wasted
        assert often.mean_checks > never.mean_checks

    def test_sweep_shapes(self):
        cfg = SystemConfig()
        evaluations = sweep_check_intervals(
            cfg, [0, 64, 512], trials=30, seed=1,
            tile_fail_probability=0.02, fault_budget=8,
        )
        wasted = [e.mean_kgd_wasted for e in evaluations if e.policy.check_interval]
        assert wasted == sorted(wasted)     # more frequent checks waste less

    def test_completion_rate_policy_independent(self):
        # Checking frequency changes wastage, not which wafers are good.
        cfg = SystemConfig()
        a = evaluate_policy(
            cfg, AssemblyPolicy(check_interval=0), trials=50, seed=7,
            tile_fail_probability=0.005,
        )
        b = evaluate_policy(
            cfg, AssemblyPolicy(check_interval=128), trials=50, seed=7,
            tile_fail_probability=0.005,
        )
        assert a.completion_rate == pytest.approx(b.completion_rate, abs=1e-9)

    def test_invalid_policy(self):
        with pytest.raises(JtagError):
            AssemblyPolicy(check_interval=-1)
        with pytest.raises(JtagError):
            AssemblyPolicy(check_interval=1, fault_budget=-1)

    def test_invalid_probability(self, small_cfg):
        with pytest.raises(JtagError):
            assemble_wafer(
                small_cfg, AssemblyPolicy(check_interval=1),
                tile_fail_probability=2.0,
            )


class TestLots:
    def test_dual_pillar_lot_sells_everything(self, paper_cfg):
        lots = pillar_redundancy_lot_comparison(paper_cfg, wafers=50)
        assert lots[2].sellable_fraction == 1.0
        assert lots[1].sellable_fraction == 0.0
        assert lots[1].mean_faults > 100 * max(lots[2].mean_faults, 0.001)

    def test_bins_partition_wafers(self, paper_cfg):
        report = simulate_lot(paper_cfg, wafers=30, tile_fail_probability=0.01)
        assert sum(report.bins.values()) == 30

    def test_bin_policy(self):
        policy = BinPolicy(full_spec_max_faults=2, degraded_max_faults=10)
        assert policy.bin_of(0) == "full-spec"
        assert policy.bin_of(5) == "degraded"
        assert policy.bin_of(50) == "scrap"

    def test_bad_policy(self):
        with pytest.raises(ConfigError):
            BinPolicy(full_spec_max_faults=10, degraded_max_faults=5)

    def test_sellable_tiles_bounded(self, paper_cfg):
        report = simulate_lot(paper_cfg, wafers=10, tile_fail_probability=0.01)
        assert report.sellable_tiles <= 10 * paper_cfg.tiles

    def test_empty_lot_rejected(self, paper_cfg):
        with pytest.raises(ConfigError):
            simulate_lot(paper_cfg, wafers=0)


class TestRemap:
    def test_clean_map_full_array(self, small_cfg):
        grid = largest_fault_free_rectangle(FaultMap(small_cfg))
        assert (grid.rows, grid.cols) == (8, 8)
        assert grid.contiguous

    def test_rectangle_avoids_faults(self, small_cfg):
        for seed in range(8):
            fmap = random_fault_map(small_cfg, 6, rng=seed)
            grid = largest_fault_free_rectangle(fmap)
            assert all(not fmap.is_faulty(t) for t in grid.all_physical())
            assert grid.contiguous

    def test_deletion_avoids_faults(self, small_cfg):
        for seed in range(8):
            fmap = random_fault_map(small_cfg, 6, rng=seed)
            grid = row_column_deletion(fmap)
            assert all(not fmap.is_faulty(t) for t in grid.all_physical())

    def test_rectangle_is_maximal_vs_bruteforce(self):
        cfg = SystemConfig(rows=6, cols=6)
        for seed in range(6):
            fmap = random_fault_map(cfg, 5, rng=seed)
            healthy = ~fmap.as_bool_array()
            best = 0
            for r0 in range(6):
                for c0 in range(6):
                    for r1 in range(r0, 6):
                        for c1 in range(c0, 6):
                            if healthy[r0 : r1 + 1, c0 : c1 + 1].all():
                                best = max(best, (r1 - r0 + 1) * (c1 - c0 + 1))
            grid = largest_fault_free_rectangle(fmap)
            assert grid.tiles == best

    def test_single_fault_center(self):
        cfg = SystemConfig(rows=5, cols=5)
        fmap = FaultMap(cfg, frozenset({(2, 2)}))
        rect = largest_fault_free_rectangle(fmap)
        assert rect.tiles == 10     # 5x2 or 2x5
        deletion = row_column_deletion(fmap)
        assert deletion.tiles == 20     # drop one row or column

    def test_logical_physical_mapping(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(0, 0)}))
        grid = row_column_deletion(fmap)
        phys = grid.physical((0, 0))
        assert not fmap.is_faulty(phys)
        with pytest.raises(FaultMapError):
            grid.physical((grid.rows, 0))

    def test_all_faulty_raises(self):
        cfg = SystemConfig(rows=2, cols=2)
        fmap = FaultMap(cfg, frozenset({(0, 0), (0, 1), (1, 0), (1, 1)}))
        with pytest.raises(FaultMapError):
            largest_fault_free_rectangle(fmap)

    def test_best_grid_picks_larger(self, small_cfg):
        fmap = random_fault_map(small_cfg, 5, rng=0)
        rect = largest_fault_free_rectangle(fmap)
        deletion = row_column_deletion(fmap)
        best = best_logical_grid(fmap)
        assert best.tiles == max(rect.tiles, deletion.tiles)
        contiguous = best_logical_grid(fmap, require_contiguous=True)
        assert contiguous.contiguous

    def test_stencil_runs_on_remapped_faulty_wafer(self):
        """The integration payoff: a grid-pinned workload survives faults
        by running on the extracted logical grid."""
        from repro.arch.system import WaferscaleSystem
        from repro.workloads.stencil import DistributedStencil, reference_jacobi

        cfg = SystemConfig(rows=6, cols=6)
        fmap = random_fault_map(cfg, 4, rng=11)
        grid = best_logical_grid(fmap, require_contiguous=True)
        logical_cfg = logical_system_config(grid, cfg)
        system = WaferscaleSystem(logical_cfg)

        field = np.zeros((grid.rows * 4, grid.cols * 4))
        field[0, :] = 100.0
        result = DistributedStencil(system, field).run(iterations=8)
        np.testing.assert_allclose(result.field, reference_jacobi(field, 8))

    @given(seed=seeds(), faults=fault_counts())
    @settings(max_examples=25, deadline=None)
    def test_remap_properties(self, seed, faults):
        cfg = SystemConfig(rows=8, cols=8)
        fmap = random_fault_map(cfg, faults, rng=seed)
        if fmap.healthy_count == 0:
            return
        rect = largest_fault_free_rectangle(fmap)
        assert 1 <= rect.tiles <= fmap.healthy_count
        assert all(not fmap.is_faulty(t) for t in rect.all_physical())
