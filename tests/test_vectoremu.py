"""Differential tests for the struct-of-arrays vector emulator.

The vector engine replaces the per-message routing loop with one
``np.unique``-keyed flow kernel per superstep; these tests prove every
:class:`~repro.arch.emulator.EmulationStats` field (and every workload
result) bit-identical to the fast and reference engines across
workloads, fault maps and seeds — including the error path, where an
unreachable destination must raise the same :class:`NetworkError`
message — and prove :func:`~repro.arch.vectoremu.emulate_batch`
per-trial stats identical to individual ``engine="vector"`` runs.
"""

import numpy as np
import pytest

from repro.arch.emulator import ENGINES, Emulator
from repro.arch.system import WaferscaleSystem
from repro.arch.vectoremu import BatchEmulator, VectorEmulator, emulate_batch
from repro.config import SystemConfig
from repro.errors import EmulatorError, NetworkError, ReproError
from repro.noc.faults import FaultMap, random_fault_map
from repro.verify.invariants import RouteCoherenceChecker
from repro.workloads.bfs import DistributedBfs
from repro.workloads.graphs import random_graph
from repro.workloads.sssp import DistributedSssp
from repro.workloads.waves import FrontierWave

STAT_FIELDS = (
    "supersteps",
    "messages_sent",
    "message_hops",
    "detoured_messages",
    "local_compute_cycles",
    "network_cycles",
    "per_step_messages",
)


def _system(rows=8, cols=8, faults=0, seed=0):
    cfg = SystemConfig(rows=rows, cols=cols)
    fmap = (
        random_fault_map(cfg, faults, rng=np.random.default_rng(seed))
        if faults
        else None
    )
    return WaferscaleSystem(cfg, fmap)


def _assert_stats_equal(a, b, context=""):
    for field in STAT_FIELDS:
        assert getattr(a, field) == getattr(b, field), (context, field)


class TestEngineSelection:
    def test_vector_engine_instantiates_subclass(self):
        system = _system()
        emulator = Emulator(system, engine="vector")
        assert isinstance(emulator, VectorEmulator)
        assert emulator.engine == "vector"

    def test_default_engine_is_not_vector(self):
        assert not isinstance(Emulator(_system()), VectorEmulator)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ReproError, match="unknown engine"):
            Emulator(_system(), engine="nope")

    def test_engines_tuple_lists_all_tiers(self):
        assert set(ENGINES) == {"reference", "fast", "vector"}


class TestWorkloadDifferential:
    @pytest.mark.parametrize("faults", [0, 3, 8])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_bfs_stats_identical_across_engines(self, faults, seed):
        system = _system(faults=faults, seed=seed)
        graph = random_graph(nodes=40, seed=seed, weighted=True)
        bfs = DistributedBfs(system, graph)
        runs = {e: bfs.run(0, engine=e) for e in ENGINES}
        for engine in ("fast", "vector"):
            assert runs["reference"].distance == runs[engine].distance
            _assert_stats_equal(
                runs["reference"].stats, runs[engine].stats, engine
            )

    def test_sssp_stats_identical_across_engines(self):
        system = _system(faults=5, seed=3)
        graph = random_graph(nodes=36, seed=3, weighted=True)
        sssp = DistributedSssp(system, graph)
        runs = {e: sssp.run(0, engine=e) for e in ENGINES}
        for engine in ("fast", "vector"):
            assert runs["reference"].distance == runs[engine].distance
            _assert_stats_equal(
                runs["reference"].stats, runs[engine].stats, engine
            )

    def test_wave_exercises_detours_identically(self):
        cfg = SystemConfig(rows=8, cols=8)
        fmap = FaultMap(cfg).with_fault((0, 4)).with_fault((4, 0))
        system = WaferscaleSystem(cfg, fmap)
        wave = FrontierWave(system, width=6, fanout=3, ttl=4, seed=5)
        stats = {e: wave.run(engine=e) for e in ENGINES}
        assert stats["vector"].detoured_messages > 0
        for engine in ("fast", "vector"):
            _assert_stats_equal(stats["reference"], stats[engine], engine)

    def test_unreachable_pair_raises_same_message(self):
        cfg = SystemConfig(rows=2, cols=2)
        fmap = FaultMap(cfg).with_fault((0, 1)).with_fault((1, 0))
        system = WaferscaleSystem(cfg, fmap)
        messages = set()
        for engine in ENGINES:
            emulator = Emulator(system, engine=engine)
            emulator.send((0, 0), (1, 1), "ping")
            with pytest.raises(NetworkError) as excinfo:
                emulator.superstep(lambda tile, inbox, em: 0)
            messages.add(str(excinfo.value))
        assert len(messages) == 1
        assert "no path for messages" in messages.pop()

    def test_send_batch_validates_like_scalar_send(self):
        cfg = SystemConfig(rows=4, cols=4)
        fmap = FaultMap(cfg).with_fault((2, 2))
        system = WaferscaleSystem(cfg, fmap)
        errors = {}
        for engine in ENGINES:
            emulator = Emulator(system, engine=engine)
            with pytest.raises(EmulatorError) as excinfo:
                emulator.send_batch((0, 0), [(0, 1), (2, 2)])
            errors[engine] = str(excinfo.value)
        assert len(set(errors.values())) == 1
        assert "faulty or absent" in errors["vector"]

    def test_vector_engine_under_route_checker(self):
        system = _system(faults=4, seed=2)
        checker = RouteCoherenceChecker(sample=1)
        emulator = Emulator(system, engine="vector", checkers=[checker])
        healthy = system.healthy_coords()
        for dst in healthy[1:12]:
            emulator.send(healthy[0], dst, payload=None)
        emulator.superstep(lambda tile, inbox, em: 0)
        assert checker.checks > 0


class TestEmulateBatch:
    def _waves(self, specs):
        waves = []
        for rows, cols, faults, seed in specs:
            system = _system(rows, cols, faults=faults, seed=seed)
            waves.append(
                FrontierWave(system, width=3, fanout=2, ttl=3, seed=seed)
            )
        return waves

    def test_batch_stats_match_individual_vector_runs(self):
        waves = self._waves([(6, 6, 0, 0), (6, 6, 0, 1), (6, 6, 0, 2)])
        expected = [w.run(engine="vector") for w in waves]
        for wave in waves:
            wave.reset()
        batched = emulate_batch(
            [w.system for w in waves],
            [w.compute for w in waves],
            init=[w.seed_sends for w in waves],
        )
        for got, want in zip(batched, expected):
            _assert_stats_equal(got, want)

    def test_batch_with_heterogeneous_convergence(self):
        # Different TTLs converge at different supersteps; per-trial
        # accounting must stop exactly where the individual run stops.
        system = _system(6, 6)
        waves = [
            FrontierWave(system, width=2, fanout=2, ttl=ttl, seed=ttl)
            for ttl in (1, 3, 5)
        ]
        expected = [w.run(engine="vector") for w in waves]
        for wave in waves:
            wave.reset()
        batched = emulate_batch(
            [w.system for w in waves],
            [w.compute for w in waves],
            init=[w.seed_sends for w in waves],
        )
        assert [s.supersteps for s in batched] == [
            s.supersteps for s in expected
        ]
        for got, want in zip(batched, expected):
            _assert_stats_equal(got, want)

    def test_empty_frontier_trial(self):
        # No seed sends: the trial quiesces after one superstep with
        # zero messages, exactly like a solo vector run.
        system = _system(4, 4)
        solo = Emulator(system, engine="vector").run(
            lambda tile, inbox, em: 0
        )
        [batched] = emulate_batch([system], [lambda tile, inbox, em: 0])
        _assert_stats_equal(batched, solo)
        assert batched.messages_sent == 0
        assert batched.supersteps == 1

    def test_single_tile_trial_self_flows(self):
        system = _system(1, 1)

        def seed(em):
            em.send((0, 0), (0, 0), "loop")

        def compute(tile, inbox, em):
            return len(inbox)

        solo_em = Emulator(system, engine="vector")
        seed(solo_em)
        solo = solo_em.run(compute)
        [batched] = emulate_batch([system], [compute], init=[seed])
        _assert_stats_equal(batched, solo)
        # Self-delivery bypasses the network: no send accounting.
        assert batched.messages_sent == 0

    def test_fully_faulty_map_rejected_at_construction(self):
        cfg = SystemConfig(rows=2, cols=2)
        fmap = FaultMap(cfg, frozenset(cfg.tile_coords()))
        with pytest.raises(EmulatorError, match="no healthy tiles"):
            WaferscaleSystem(cfg, fmap)

    def test_batch_validates_lengths(self):
        system = _system(4, 4)
        compute = lambda tile, inbox, em: 0  # noqa: E731
        with pytest.raises(EmulatorError, match="compute callables"):
            emulate_batch([system], [compute, compute])
        with pytest.raises(EmulatorError, match="init callables"):
            emulate_batch([system], [compute], init=[None, None])
        with pytest.raises(EmulatorError):
            BatchEmulator([])

    def test_non_convergent_trial_names_its_index(self):
        system = _system(4, 4)

        def chatty(tile, inbox, em):
            em.send(tile, (0, 0), "again")
            return 0

        def seed(em):
            em.send((0, 1), (0, 0), "go")

        with pytest.raises(EmulatorError, match=r"trial 1"):
            emulate_batch(
                [system, system],
                [lambda tile, inbox, em: 0, chatty],
                init=[None, seed],
                max_supersteps=5,
            )


class TestCheckpointedNocCoUse:
    def test_vector_emulation_between_noc_checkpoint_and_resume(self, tmp_path):
        # A checkpointed NoC run and a vector emulation share the
        # process; neither the route-table cache nor the NoC snapshot
        # may bleed into the other.
        from repro.noc.dualnetwork import NetworkId
        from repro.noc.simulator import NocSimulator
        from repro.workloads.traffic import TrafficPattern, generate_traffic

        cfg = SystemConfig(rows=6, cols=6)
        fmap = FaultMap(cfg).with_fault((2, 3))
        schedule = generate_traffic(
            cfg, TrafficPattern.UNIFORM, 0.05, 40, seed=3
        )

        def drive(sim, from_cycle, to_cycle):
            for cycle, packet in schedule:
                if from_cycle <= cycle < to_cycle:
                    while sim.cycle < cycle:
                        sim.step()
                    sim.inject(packet, network=NetworkId.XY)
            while sim.cycle < to_cycle:
                sim.step()

        baseline = NocSimulator(cfg, fmap, engine="vector")
        drive(baseline, 0, 80)

        sim = NocSimulator(cfg, fmap, engine="vector")
        drive(sim, 0, 40)
        snapshot = tmp_path / "noc.npz"
        sim.save_state(snapshot)

        # Interleave a full vector emulation while the snapshot is live.
        system = WaferscaleSystem(cfg, fmap)
        wave = FrontierWave(system, width=4, fanout=2, ttl=3, seed=1)
        emu_stats = wave.run(engine="vector")
        assert emu_stats.messages_sent > 0

        resumed = NocSimulator.load_state(snapshot, engine="vector")
        drive(resumed, 40, 80)
        assert resumed.report() == baseline.report()

        # And the emulation repeats bit-identically after the NoC run.
        assert wave.run(engine="vector") == emu_stats
