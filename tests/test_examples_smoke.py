"""Smoke tests: the shipped examples must actually run.

Each fast example is executed as a subprocess with a generous timeout and
its output checked for the landmark lines.  The two slow, full-wafer
studies (network_resiliency, scaling_study) are exercised through their
underlying APIs elsewhere; here we verify they at least import/compile.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 420) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamplesRun:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Table I" in out
        assert "All design-flow stages passed." in out

    def test_graph_analytics(self):
        out = run_example("graph_analytics.py")
        assert "BFS" in out and "SSSP" in out
        assert "False" not in out.split("Observations")[0]  # every 'ok' True

    def test_fault_tolerant_bringup(self):
        out = run_example("fault_tolerant_bringup.py")
        assert "BFS matches NetworkX reference: True" in out
        assert "coverage of healthy tiles: 100.0%" in out

    def test_wafer_bringup_pipeline(self):
        out = run_example("wafer_bringup_pipeline.py")
        assert "max rank error vs NetworkX" in out
        assert "communication share" in out

    def test_power_delivery_study(self):
        out = run_example("power_delivery_study.py")
        assert "re-derived choice: edge_ldo" in out


class TestSlowExamplesCompile:
    @pytest.mark.parametrize(
        "name", ["network_resiliency.py", "scaling_study.py"]
    )
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)

    def test_all_examples_present(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert len(names) >= 7
        assert "quickstart.py" in names
