"""Tests for repro.noc routing, topology, faults and dual networks."""

import pytest
from hypothesis import given

from repro.config import SystemConfig
from repro.errors import FaultMapError, NetworkError, RoutingError
from repro.noc.dualnetwork import DualNetwork, NetworkId, response_retraces_request
from repro.noc.faults import FaultMap, bonding_informed_fault_map, random_fault_map
from repro.noc.routing import (
    RoutingPolicy,
    dor_path,
    next_hop,
    path_is_clear,
    paths_are_disjoint,
    route,
    same_row_or_column,
    xy_path,
    yx_path,
)
from repro.noc.topology import MeshTopology
from repro.verify.strategies import coords8


class TestDorPaths:
    def test_xy_routes_row_first(self):
        path = xy_path((1, 1), (3, 4))
        assert path[0] == (1, 1)
        assert path[1] == (1, 2)            # column correction first
        assert path[-1] == (3, 4)

    def test_yx_routes_column_first(self):
        path = yx_path((1, 1), (3, 4))
        assert path[1] == (2, 1)            # row correction first
        assert path[-1] == (3, 4)

    def test_self_path_is_singleton(self):
        assert xy_path((2, 2), (2, 2)) == [(2, 2)]
        assert yx_path((2, 2), (2, 2)) == [(2, 2)]

    def test_path_length_is_manhattan(self):
        src, dst = (0, 0), (5, 3)
        assert len(xy_path(src, dst)) == 1 + 5 + 3
        assert len(yx_path(src, dst)) == 1 + 5 + 3

    @given(src=coords8, dst=coords8)
    def test_paths_are_valid_walks(self, src, dst):
        for path in (xy_path(src, dst), yx_path(src, dst)):
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    @given(src=coords8, dst=coords8)
    def test_disjointness_iff_off_row_column(self, src, dst):
        if src == dst:
            assert not paths_are_disjoint(src, dst)
        else:
            assert paths_are_disjoint(src, dst) == (
                not same_row_or_column(src, dst)
            )

    @given(src=coords8, dst=coords8)
    def test_next_hop_follows_path(self, src, dst):
        if src == dst:
            with pytest.raises(RoutingError):
                next_hop(src, dst, RoutingPolicy.XY)
            return
        for policy in RoutingPolicy:
            path = dor_path(src, dst, policy)
            current = src
            for expected in path[1:]:
                current = next_hop(current, dst, policy)
                assert current == expected

    def test_route_checks_faults(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(0, 3)}))
        # X-Y from (0,0) to (3,7) runs along row 0 first: blocked.
        with pytest.raises(RoutingError):
            route((0, 0), (3, 7), RoutingPolicy.XY, fmap)
        # Y-X goes down column 0 then along row 3: clear.
        path = route((0, 0), (3, 7), RoutingPolicy.YX, fmap)
        assert (0, 3) not in path
        assert path_is_clear(path, fmap)


class TestTopology:
    def test_link_count(self, small_cfg):
        topo = MeshTopology(small_cfg)
        assert topo.link_count() == 2 * 8 * 7
        assert len(topo.links()) == topo.link_count()

    def test_neighbors(self, small_cfg):
        topo = MeshTopology(small_cfg)
        assert topo.are_neighbors((0, 0), (0, 1))
        assert not topo.are_neighbors((0, 0), (1, 1))

    def test_table1_network_bandwidth(self, paper_cfg):
        topo = MeshTopology(paper_cfg)
        assert topo.aggregate_bandwidth_bytes_per_s() / 1e12 == pytest.approx(
            9.83, abs=0.01
        )

    def test_link_bandwidth(self, paper_cfg):
        topo = MeshTopology(paper_cfg)
        assert topo.link_bandwidth_bps() == pytest.approx(400 * 300e6)

    def test_bus_bandwidth_quarter_of_link(self, paper_cfg):
        topo = MeshTopology(paper_cfg)
        assert topo.bus_bandwidth_bps() == pytest.approx(
            topo.link_bandwidth_bps() / 4
        )

    def test_bisection(self, paper_cfg):
        topo = MeshTopology(paper_cfg)
        assert topo.bisection_bandwidth_bps() == pytest.approx(
            32 * 400 * 300e6
        )

    def test_networkx_export_excludes_faulty(self, small_cfg):
        topo = MeshTopology(small_cfg)
        graph = topo.to_networkx(faulty={(0, 0)})
        assert (0, 0) not in graph
        assert graph.number_of_nodes() == 63


class TestFaultMap:
    def test_empty_map(self, small_cfg):
        fmap = FaultMap(small_cfg)
        assert fmap.fault_count == 0
        assert fmap.healthy_count == 64

    def test_out_of_bounds_fault_rejected(self, small_cfg):
        with pytest.raises(FaultMapError):
            FaultMap(small_cfg, frozenset({(9, 9)}))

    def test_with_fault(self, small_cfg):
        fmap = FaultMap(small_cfg).with_fault((1, 1))
        assert fmap.is_faulty((1, 1))
        assert fmap.fault_count == 1

    def test_bool_array_roundtrip(self, small_cfg):
        fmap = random_fault_map(small_cfg, 5, rng=0)
        again = FaultMap.from_bool_array(small_cfg, fmap.as_bool_array())
        assert again.faulty == fmap.faulty

    def test_random_map_exact_count(self, small_cfg):
        for count in (0, 1, 5, 20):
            assert random_fault_map(small_cfg, count, rng=1).fault_count == count

    def test_random_map_rejects_overflow(self, small_cfg):
        with pytest.raises(FaultMapError):
            random_fault_map(small_cfg, 65)

    def test_bonding_informed_map_mostly_clean(self, paper_cfg):
        # With dual pillars, expected faulty ~0.04/wafer of compute
        # chiplets: a random wafer is almost always fault-free.
        fmap = bonding_informed_fault_map(paper_cfg, rng=0)
        assert fmap.fault_count <= 3

    def test_bonding_informed_single_pillar_many_faults(self, paper_cfg):
        fmap = bonding_informed_fault_map(paper_cfg, rng=0, pillars_per_pad=1)
        # ~30% of tiles should fail (either chiplet's bond failing).
        assert fmap.fault_count > 150


class TestDualNetwork:
    def test_complement(self):
        assert NetworkId.XY.complement is NetworkId.YX
        assert NetworkId.YX.complement is NetworkId.XY

    def test_policy_mapping(self):
        assert NetworkId.XY.policy is RoutingPolicy.XY
        assert NetworkId.YX.policy is RoutingPolicy.YX

    @given(src=coords8, dst=coords8)
    def test_response_retraces_request(self, src, dst):
        """The Fig. 7 property, for both networks."""
        for net in NetworkId:
            assert response_retraces_request(src, dst, net)

    def test_round_trip_on_clean_map(self, clean_map):
        dual = DualNetwork(clean_map)
        assert dual.round_trip_ok((0, 0), (7, 7), NetworkId.XY)
        assert dual.usable_networks((0, 0), (7, 7)) == list(NetworkId)

    def test_fault_blocks_one_network(self, small_cfg):
        # Fault on the X-Y path (row 0) but not the Y-X path.
        fmap = FaultMap(small_cfg, frozenset({(0, 4)}))
        dual = DualNetwork(fmap)
        assert not dual.round_trip_ok((0, 0), (3, 7), NetworkId.XY)
        assert dual.round_trip_ok((0, 0), (3, 7), NetworkId.YX)
        assert dual.connected((0, 0), (3, 7))

    def test_same_row_pair_fully_blocked(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(0, 4)}))
        dual = DualNetwork(fmap)
        # Both Ls of a same-row pair run through the faulty column segment.
        assert not dual.connected((0, 0), (0, 7))
        with pytest.raises(RoutingError):
            dual.pick_network((0, 0), (0, 7))

    def test_pick_network_returns_usable(self, clean_map):
        dual = DualNetwork(clean_map)
        assert dual.pick_network((1, 1), (5, 5)) in NetworkId
