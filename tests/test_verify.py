"""Tests for repro.verify: checkers, golden models, campaigns, strategies.

Every shipped invariant checker gets at least one mutation-style test:
a healthy run passes, then a deliberately corrupted state/solution/plan
MUST trip the checker.  A checker whose mutation test cannot fail is a
checker that cannot catch bugs.
"""

import numpy as np
import pytest

from repro.arch.emulator import Emulator, clear_route_cache
from repro.arch.system import WaferscaleSystem
from repro.config import SystemConfig
from repro.dft.multichain import ChainPlan, MultiChainPlan, row_chains, single_chain
from repro.dft.unrolling import ChainTestSession, TileUnderTest, UnrollStep
from repro.engine.cache import ResultCache
from repro.engine.core import ExperimentEngine
from repro.errors import ReproError
from repro.noc.dualnetwork import NetworkId
from repro.noc.faults import FaultMap
from repro.noc.packets import Packet, PacketKind
from repro.noc.router import Port
from repro.noc.simulator import NocSimulator
from repro.pdn.solver import PdnSolver
from repro.verify import run_verify
from repro.verify.campaign import _verify_trial_value
from repro.verify.golden import (
    GoldenNocModel,
    golden_bfs,
    golden_pdn_solve,
    golden_sssp,
)
from repro.verify.invariants import (
    ChainIntegrityChecker,
    DeliveryChecker,
    DorLegalityChecker,
    DroopBoundChecker,
    FifoBoundChecker,
    FlitConservationChecker,
    InvariantViolation,
    KclResidualChecker,
    RoundRobinChecker,
    RouteCoherenceChecker,
    default_noc_checkers,
    full_noc_checkers,
)
from repro.workloads.graphs import random_graph
from repro.workloads.traffic import TrafficPattern, generate_traffic


def _run_checked_sim(engine="reference", checkers=None, faults=(), cycles=200):
    """A small checked simulation with mixed traffic; returns the sim."""
    cfg = SystemConfig(rows=6, cols=6)
    fmap = FaultMap(cfg)
    for coord in faults:
        fmap = fmap.with_fault(coord)
    sim = NocSimulator(
        cfg,
        fault_map=fmap,
        engine=engine,
        checkers=checkers if checkers is not None else full_noc_checkers(),
    )
    schedule = generate_traffic(cfg, TrafficPattern.UNIFORM, 0.02, 40, seed=7)
    nets = list(NetworkId)
    for i, (cycle, packet) in enumerate(schedule):
        while sim.cycle < cycle:
            sim.step()
        sim.inject(packet, nets[i % 2])
    sim.run(cycles)
    return sim


# ---------------------------------------------------------------------------
# NoC checkers: clean runs pass, corrupted state trips
# ---------------------------------------------------------------------------


class TestNocCheckersCleanRuns:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_full_checker_set_stays_silent(self, engine):
        sim = _run_checked_sim(engine=engine, faults=[(2, 2)])
        assert sim.report().flit_conservation_ok
        assert all(c.violations == 0 for c in sim.checkers)
        assert all(c.checks > 0 for c in sim.checkers)

    def test_default_set_is_cheap_subset(self):
        names = [type(c) for c in default_noc_checkers()]
        assert names == [FlitConservationChecker, DeliveryChecker]
        assert len(full_noc_checkers()) == 5


class TestFlitConservationMutation:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_desynced_in_flight_counter_trips(self, engine):
        sim = _run_checked_sim(engine=engine, checkers=[FlitConservationChecker()])
        sim._in_flight += 1                     # lose a packet on the books
        with pytest.raises(InvariantViolation, match="flit_conservation"):
            sim.step()

    def test_desynced_network_occupancy_trips(self):
        sim = _run_checked_sim(checkers=[FlitConservationChecker()])
        # Keep the global balance intact but skew the per-network split.
        sim._net_occupancy[NetworkId.XY] += 1
        with pytest.raises(InvariantViolation, match="per-network"):
            sim.step()


class TestDeliveryCheckerMutation:
    def _delivered_packet(self, sim, latency=4):
        packet = Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(2, 2))
        packet.injected_cycle = sim.cycle - latency
        packet.delivered_cycle = sim.cycle
        return packet

    def test_duplicate_delivery_trips(self):
        sim = NocSimulator(SystemConfig(rows=4, cols=4))
        sim.cycle = 10
        checker = DeliveryChecker()
        packet = self._delivered_packet(sim)
        checker.on_deliver(sim, packet, NetworkId.XY)
        with pytest.raises(InvariantViolation, match="delivered twice"):
            checker.on_deliver(sim, packet, NetworkId.XY)

    def test_sub_manhattan_latency_trips(self):
        sim = NocSimulator(SystemConfig(rows=4, cols=4))
        sim.cycle = 10
        checker = DeliveryChecker()
        packet = self._delivered_packet(sim, latency=3)     # distance is 4
        with pytest.raises(InvariantViolation, match="Manhattan"):
            checker.on_deliver(sim, packet, NetworkId.XY)

    def test_foreign_cycle_stamp_trips(self):
        sim = NocSimulator(SystemConfig(rows=4, cols=4))
        sim.cycle = 10
        checker = DeliveryChecker()
        packet = self._delivered_packet(sim)
        packet.delivered_cycle = 9
        with pytest.raises(InvariantViolation, match="foreign cycle"):
            checker.on_deliver(sim, packet, NetworkId.XY)


class TestDorLegalityMutation:
    def test_wrong_output_port_trips(self):
        sim = NocSimulator(SystemConfig(rows=4, cols=4))
        checker = DorLegalityChecker()
        packet = Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(3, 3))
        # At (0, 0) heading for (3, 3) on XY, the one legal port is East.
        east = list(Port).index(Port.EAST)
        checker.on_grant(sim, NetworkId.XY, (0, 0), east, 4, packet, 0)
        south = list(Port).index(Port.SOUTH)
        with pytest.raises(InvariantViolation, match="non-DoR"):
            checker.on_grant(sim, NetworkId.XY, (0, 0), south, 4, packet, 0)


class TestRoundRobinMutation:
    def test_stuck_pointer_trips(self):
        sim = NocSimulator(SystemConfig(rows=4, cols=4))
        checker = RoundRobinChecker()
        packet = Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(0, 3))
        checker.on_grant(sim, NetworkId.XY, (0, 1), 3, 2, packet, 3)  # (2+1)%5
        with pytest.raises(InvariantViolation, match="round-robin"):
            checker.on_grant(sim, NetworkId.XY, (0, 1), 3, 2, packet, 2)


class TestFifoBoundMutation:
    def test_overfilled_fifo_trips(self):
        checker = FifoBoundChecker()
        sim = NocSimulator(SystemConfig(rows=4, cols=4), checkers=[checker])
        fifo = sim.routers[NetworkId.XY][(1, 1)].inputs[Port.NORTH]
        for _ in range(sim.fifo_depth + 1):     # bypass accept()'s credit check
            fifo.queue.append(Packet(kind=PacketKind.REQUEST, src=(0, 1), dst=(3, 1)))
        sim._in_flight += sim.fifo_depth + 1
        sim.injected_count += sim.fifo_depth + 1
        with pytest.raises(InvariantViolation, match="exceeded its depth"):
            checker.on_step(sim)

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_buffered_total_disagreement_trips(self, engine):
        checker = FifoBoundChecker()
        sim = _run_checked_sim(engine=engine, checkers=[checker])
        sim._in_flight += 1                     # counter says one more than buffered
        sim.injected_count += 1
        with pytest.raises(InvariantViolation, match="in-flight counter"):
            checker.on_step(sim)


# ---------------------------------------------------------------------------
# Report accounting (drained packets attributed before telemetry)
# ---------------------------------------------------------------------------


class TestReportConservation:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_drained_run_balances_exactly(self, engine):
        sim = _run_checked_sim(engine=engine, faults=[(1, 1), (3, 4)], cycles=400)
        assert sim.idle()
        report = sim.report()
        assert report.in_flight == 0
        assert report.packets_unaccounted == 0
        assert report.flit_conservation_ok
        # Faults on the array make both drop categories reachable and the
        # report keeps them separate: in-flight drops count against
        # conservation, unreachable rejections never entered the network.
        assert report.injected == (
            report.delivered + report.dropped_in_flight + report.in_flight
        )

    def test_mid_run_report_accounts_for_in_flight(self):
        cfg = SystemConfig(rows=6, cols=6)
        sim = NocSimulator(cfg)
        schedule = generate_traffic(cfg, TrafficPattern.TRANSPOSE, 0.05, 20, seed=3)
        for _, packet in schedule:
            sim.inject(packet, NetworkId.XY)
        sim.run(3)                              # stop while traffic is in the mesh
        report = sim.report()
        assert report.in_flight > 0
        assert report.packets_unaccounted == 0
        assert report.flit_conservation_ok

    def test_engines_agree_on_new_fields(self):
        reports = []
        for engine in ("reference", "fast"):
            sim = _run_checked_sim(engine=engine, checkers=[], faults=[(2, 3)])
            reports.append(sim.report())
        ref, fast = reports
        assert ref.dropped_in_flight == fast.dropped_in_flight
        assert ref.in_flight == fast.in_flight
        assert ref == fast


# ---------------------------------------------------------------------------
# PDN checkers
# ---------------------------------------------------------------------------


class TestPdnCheckersMutation:
    def test_clean_solves_pass_both_checkers(self):
        kcl, droop = KclResidualChecker(), DroopBoundChecker()
        solver = PdnSolver(SystemConfig(rows=6, cols=6), checkers=[kcl, droop])
        solver.solve()
        solver.solve(load_model="constant_power")
        solver.solve_many([0.5, 1.0])
        assert kcl.checks == 4 and droop.checks == 4
        assert kcl.violations == 0 and droop.violations == 0

    def test_perturbed_voltage_trips_kcl(self):
        checker = KclResidualChecker()
        solver = PdnSolver(SystemConfig(rows=6, cols=6))
        solution = solver.solve()
        solution.voltages[2, 3] += 1e-3         # 1 mV defect on a mOhm mesh
        with pytest.raises(InvariantViolation, match="KCL residual"):
            checker.check_solution(solver, solution)

    def test_overshoot_above_supply_trips_droop_bound(self):
        checker = DroopBoundChecker()
        solver = PdnSolver(SystemConfig(rows=6, cols=6))
        solution = solver.solve()
        solution.voltages[0, 0] = solution.edge_voltage + 0.05
        with pytest.raises(InvariantViolation, match="above the edge supply"):
            checker.check_solution(solver, solution)

    def test_collapsed_node_trips_droop_floor(self):
        checker = DroopBoundChecker()
        solver = PdnSolver(SystemConfig(rows=6, cols=6))
        solution = solver.solve()
        solution.voltages[3, 3] = 0.0
        with pytest.raises(InvariantViolation, match="physical floor"):
            checker.check_solution(solver, solution)


class TestGoldenPdn:
    def test_matches_sparse_solver_exactly(self):
        cfg = SystemConfig(rows=5, cols=7)
        rng = np.random.default_rng(11)
        power = rng.random((5, 7)) * cfg.tile_peak_power_w
        for load_model in ("ldo", "constant_power"):
            fast = PdnSolver(cfg).solve(power, load_model=load_model)
            voltages, currents, iterations = golden_pdn_solve(
                cfg, power, load_model=load_model
            )
            np.testing.assert_allclose(fast.voltages, voltages, atol=1e-7, rtol=0)
            np.testing.assert_allclose(fast.currents, currents, atol=1e-6, rtol=0)
            assert fast.iterations == iterations


# ---------------------------------------------------------------------------
# Emulator route coherence
# ---------------------------------------------------------------------------


class TestRouteCoherenceMutation:
    def _emulator(self, checker):
        clear_route_cache()
        cfg = SystemConfig(rows=6, cols=6)
        fmap = FaultMap(cfg).with_fault((2, 2))
        system = WaferscaleSystem(cfg, fmap)
        return Emulator(system, checkers=[checker])

    @staticmethod
    def _exchange(emulator):
        emulator.send((0, 0), (4, 4), payload=1)
        emulator.send((1, 0), (2, 3), payload=2)
        emulator.superstep(lambda tile, inbox, em: 0)

    def test_clean_cache_hits_pass(self):
        checker = RouteCoherenceChecker(sample=1)
        emulator = self._emulator(checker)
        self._exchange(emulator)                # cache misses populate
        self._exchange(emulator)                # hits fire the checker
        assert checker.checks >= 2
        assert checker.violations == 0

    def test_poisoned_cache_entry_trips(self):
        checker = RouteCoherenceChecker(sample=1)
        emulator = self._emulator(checker)
        self._exchange(emulator)
        hops, is_detour, reachable = emulator._routes[((0, 0), (4, 4))]
        emulator._routes[((0, 0), (4, 4))] = (hops + 3, is_detour, reachable)
        with pytest.raises(InvariantViolation, match="disagrees with recomputation"):
            self._exchange(emulator)

    def test_sample_must_be_positive(self):
        with pytest.raises(ReproError):
            RouteCoherenceChecker(sample=0)


class TestGoldenGraphOracles:
    def test_bfs_matches_networkx(self):
        import networkx as nx

        graph = random_graph(nodes=40, mean_degree=3.0, seed=5)
        expected = nx.single_source_shortest_path_length(graph, 0)
        assert golden_bfs(graph, 0) == dict(expected)

    def test_sssp_matches_networkx(self):
        import networkx as nx

        graph = random_graph(nodes=40, mean_degree=3.0, seed=6, weighted=True)
        expected = nx.single_source_dijkstra_path_length(graph, 0)
        mine = golden_sssp(graph, 0)
        assert mine.keys() == dict(expected).keys()
        for node, dist in expected.items():
            assert mine[node] == pytest.approx(dist, abs=1e-9)


# ---------------------------------------------------------------------------
# DfT chain integrity
# ---------------------------------------------------------------------------


class TestChainIntegrityMutation:
    def test_clean_plans_pass(self):
        checker = ChainIntegrityChecker()
        cfg = SystemConfig(rows=6, cols=6)
        checker.check_plan(row_chains(cfg))
        checker.check_plan(single_chain(cfg))
        assert checker.violations == 0

    @staticmethod
    def _with_first_chain_tiles(plan, tiles):
        """The plan with chain 0's tile tuple replaced (plans are frozen)."""
        mutated = ChainPlan(chain_index=0, tiles=tuple(tiles))
        return MultiChainPlan(
            config=plan.config, chains=(mutated,) + plan.chains[1:]
        )

    def test_duplicated_tile_trips(self):
        checker = ChainIntegrityChecker()
        plan = row_chains(SystemConfig(rows=6, cols=6))
        tiles = (plan.chains[1].tiles[0],) + plan.chains[0].tiles[1:]
        with pytest.raises(InvariantViolation, match="two chain positions"):
            checker.check_plan(self._with_first_chain_tiles(plan, tiles))

    def test_lost_tile_trips(self):
        checker = ChainIntegrityChecker()
        plan = row_chains(SystemConfig(rows=6, cols=6))
        tiles = plan.chains[0].tiles[:-1]
        with pytest.raises(InvariantViolation, match="lost tiles"):
            checker.check_plan(self._with_first_chain_tiles(plan, tiles))

    def test_out_of_range_tile_trips(self):
        checker = ChainIntegrityChecker()
        plan = row_chains(SystemConfig(rows=6, cols=6))
        tiles = ((99, 0),) + plan.chains[0].tiles[1:]
        with pytest.raises(InvariantViolation, match="outside the array"):
            checker.check_plan(self._with_first_chain_tiles(plan, tiles))

    def _session_steps(self, health):
        session = ChainTestSession(
            [TileUnderTest(i, healthy=ok) for i, ok in enumerate(health)]
        )
        session.unroll()
        return session.steps

    def test_clean_unroll_passes(self):
        checker = ChainIntegrityChecker()
        health = [True, True, False, True]
        checker.check_unroll(self._session_steps(health), health)
        assert checker.violations == 0

    def test_flipped_verdict_trips(self):
        checker = ChainIntegrityChecker()
        health = [True, True, True]
        steps = self._session_steps(health)
        steps[1].passed = False
        with pytest.raises(InvariantViolation):
            checker.check_unroll(steps, health)

    def test_walking_past_first_failure_trips(self):
        checker = ChainIntegrityChecker()
        health = [True, False, True]
        steps = self._session_steps(health)
        steps.append(UnrollStep(tile_index=2, passed=True, visible_chain_length=3))
        with pytest.raises(InvariantViolation, match="past the first failure"):
            checker.check_unroll(steps, health)

    def test_wrong_visible_length_trips(self):
        checker = ChainIntegrityChecker()
        health = [True, True]
        steps = self._session_steps(health)
        steps[1].visible_chain_length = 7
        with pytest.raises(InvariantViolation, match="visible chain length"):
            checker.check_unroll(steps, health)


# ---------------------------------------------------------------------------
# Differential campaigns + engine verify mode
# ---------------------------------------------------------------------------


class TestGoldenNocDifferential:
    def test_engines_match_golden_on_faulty_array(self):
        cfg = SystemConfig(rows=6, cols=6)
        fmap = FaultMap(cfg).with_fault((2, 4))
        schedule = generate_traffic(cfg, TrafficPattern.TRANSPOSE, 0.02, 30, seed=9)
        nets = list(NetworkId)

        reports = []
        for builder in (
            lambda: NocSimulator(cfg, fault_map=fmap, engine="reference"),
            lambda: NocSimulator(cfg, fault_map=fmap, engine="fast"),
            lambda: GoldenNocModel(cfg, fault_map=fmap),
        ):
            model = builder()
            fresh = generate_traffic(cfg, TrafficPattern.TRANSPOSE, 0.02, 30, seed=9)
            for i, (cycle, packet) in enumerate(fresh):
                while model.cycle < cycle:
                    model.step()
                model.inject(packet, nets[i % 2])
            model.run(150)
            reports.append(model.report())

        ref, fast, golden = reports
        assert ref == fast
        for name in (
            "injected",
            "delivered",
            "responses_delivered",
            "dropped_unreachable",
            "dropped_in_flight",
            "in_flight",
        ):
            assert getattr(ref, name) == getattr(golden, name), name
        assert sorted(ref.latencies) == sorted(golden.latencies)


class TestVerifyCampaign:
    @pytest.mark.parametrize("suite", ["noc", "pdn", "emu", "dft"])
    def test_reduced_trial_suites_pass(self, suite):
        verdict = run_verify(suite=suite, trials=2, seed=0)
        assert verdict["passed"], verdict
        entry = verdict["suites"][suite]
        assert entry["trials"] == 2
        assert entry["checks"] > 0

    def test_verdict_is_deterministic(self):
        first = run_verify(suite="dft", trials=3, seed=42)
        second = run_verify(suite="dft", trials=3, seed=42)
        for verdict in (first, second):
            for entry in verdict["suites"].values():
                entry.pop("elapsed_s")
        assert first == second

    def test_rejects_unknown_suite_and_zero_trials(self):
        with pytest.raises(ReproError):
            run_verify(suite="bogus", trials=1)
        with pytest.raises(ReproError):
            run_verify(suite="noc", trials=0)

    def test_trial_value_hook_rejects_empty_trials(self):
        _verify_trial_value(0, {"checks": 12})
        with pytest.raises(InvariantViolation, match="no invariant checks"):
            _verify_trial_value(1, {"checks": 0})
        with pytest.raises(InvariantViolation):
            _verify_trial_value(2, None)


def _counting_trial(ctx):
    return {"checks": ctx.index + 1}


class TestEngineVerifyMode:
    def test_hook_sees_every_trial_in_order(self):
        calls = []
        engine = ExperimentEngine()
        engine.run(
            _counting_trial,
            experiment="verify.hook",
            trials=4,
            verify=lambda index, value: calls.append((index, value)),
        )
        assert calls == [(i, {"checks": i + 1}) for i in range(4)]

    def test_failing_hook_aborts_before_cache_write(self, tmp_path):
        def explode(index, value):
            raise InvariantViolation("test", "hook", "nope", {"trial": index})

        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        with pytest.raises(InvariantViolation):
            engine.run(
                _counting_trial, experiment="verify.abort", trials=3, verify=explode
            )
        # Nothing was persisted: the re-run is a cache miss.
        result = engine.run(_counting_trial, experiment="verify.abort", trials=3)
        assert not result.from_cache

    def test_hook_runs_on_cache_hits(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        engine.run(_counting_trial, experiment="verify.cached", trials=3)
        calls = []
        result = engine.run(
            _counting_trial,
            experiment="verify.cached",
            trials=3,
            verify=lambda index, value: calls.append(index),
        )
        assert result.from_cache
        assert calls == [0, 1, 2]


# ---------------------------------------------------------------------------
# Shared strategy library
# ---------------------------------------------------------------------------


class TestSharedStrategies:
    def test_draws_valid_domain_values(self):
        from hypothesis import given, settings

        from repro.verify import strategies as vs

        @given(
            coord=vs.coords8,
            cfg=vs.system_configs(),
            fmap=vs.fault_maps(max_faults=5),
            rate=vs.injection_rates(),
        )
        @settings(max_examples=20, deadline=None)
        def check(coord, cfg, fmap, rate):
            assert 0 <= coord[0] < 8 and 0 <= coord[1] < 8
            assert 4 <= cfg.rows <= 10 and 4 <= cfg.cols <= 10
            assert fmap.healthy_count >= 1
            assert fmap.config.tiles - fmap.healthy_count <= 5
            assert 0.001 <= rate <= 0.05

        check()
