"""Tests for repro.clock (PLL, passive CDN, forwarding, DCD, resiliency)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock.dcd import DccUnit, DutyCycleTracker, tiles_until_clock_dies
from repro.clock.forwarding import (
    ClockSource,
    render_forwarding_map,
    simulate_clock_setup,
)
from repro.clock.passive_cdn import (
    PassiveCdnModel,
    build_waferscale_cdn,
    passive_cdn_is_viable,
)
from repro.clock.pll import PllModel
from repro.clock.resiliency import (
    clock_coverage_theorem_holds,
    fig4_fault_map,
    isolated_tiles,
    monte_carlo_clock_coverage,
    unreachable_tiles,
)
from repro.config import SystemConfig
from repro.errors import ClockError


class TestPll:
    def test_reference_range(self):
        pll = PllModel()
        assert pll.ref_in_range(10e6)
        assert pll.ref_in_range(133e6)
        assert not pll.ref_in_range(5e6)
        assert not pll.ref_in_range(200e6)

    def test_output_multiplication(self):
        assert PllModel().output_hz(50e6, 7) == pytest.approx(350e6)

    def test_output_cap_enforced(self):
        with pytest.raises(ClockError):
            PllModel().output_hz(133e6, 4)      # 532MHz > 400MHz

    def test_max_multiplier(self):
        assert PllModel().max_multiplier(100e6) == 4
        assert PllModel().max_multiplier(133e6) == 3

    def test_noisy_supply_blocks_lock(self):
        pll = PllModel()
        assert pll.can_lock(50e6, supply_ripple_v=0.01)
        assert not pll.can_lock(50e6, supply_ripple_v=0.2)
        with pytest.raises(ClockError):
            pll.output_hz(50e6, 4, supply_ripple_v=0.2)

    def test_interior_tile_cannot_generate(self):
        # Interior regulation wanders the full 1.0-1.2V band: 200mV ripple.
        assert not PllModel().can_lock(100e6, supply_ripple_v=0.2)

    def test_bad_multiplier(self):
        with pytest.raises(ClockError):
            PllModel().output_hz(50e6, 0)


class TestPassiveCdn:
    def test_waferscale_parasitics_exceed_paper_bounds(self, paper_cfg):
        model = build_waferscale_cdn(paper_cfg)
        assert model.capacitance_f > 450e-12
        assert model.inductance_h > 120e-9

    def test_sub_mhz_only(self, paper_cfg):
        model = build_waferscale_cdn(paper_cfg)
        assert model.max_frequency_hz < 1e6 * 50   # far below PLL needs

    def test_not_viable_for_pll_reference(self, paper_cfg):
        assert not passive_cdn_is_viable(paper_cfg, required_hz=10e6)

    def test_small_tree_is_viable(self):
        model = PassiveCdnModel(total_wire_mm=10.0, sink_count=4)
        assert model.max_frequency_hz > 10e6

    def test_invalid_models(self):
        with pytest.raises(ClockError):
            PassiveCdnModel(total_wire_mm=0, sink_count=1)
        with pytest.raises(ClockError):
            PassiveCdnModel(total_wire_mm=10, sink_count=0)


class TestDcd:
    def test_paper_example_5pct_kills_in_10_tiles(self):
        assert tiles_until_clock_dies(0.05) == 10

    def test_negative_distortion_symmetric(self):
        assert tiles_until_clock_dies(-0.05) == 10

    def test_zero_distortion_rejected(self):
        with pytest.raises(ClockError):
            tiles_until_clock_dies(0.0)

    def test_uninverted_chain_dies(self):
        tracker = DutyCycleTracker(dcd_per_tile=0.05, invert_per_hop=False)
        trace = tracker.run(64)
        assert len(trace) < 64
        assert not tracker.alive

    def test_inverted_chain_survives_any_length(self):
        tracker = DutyCycleTracker(dcd_per_tile=0.05, invert_per_hop=True)
        trace = tracker.run(200)
        assert len(trace) == 200
        assert tracker.alive
        assert abs(tracker.duty - 0.5) <= 0.05 + 1e-9

    def test_inversion_bounds_error_to_one_hop(self):
        tracker = DutyCycleTracker(dcd_per_tile=0.03, invert_per_hop=True)
        for duty in tracker.run(100):
            assert abs(duty - 0.5) <= 0.03 + 1e-9

    def test_dcc_corrects_within_range(self):
        dcc = DccUnit(correction_range=0.15, resolution=0.01)
        assert abs(dcc.correct(0.6) - 0.5) <= 0.01 + 1e-12

    def test_dcc_partial_beyond_range(self):
        dcc = DccUnit(correction_range=0.1, resolution=0.01)
        corrected = dcc.correct(0.75)
        assert corrected == pytest.approx(0.65)

    def test_dcc_leaves_small_errors(self):
        dcc = DccUnit(resolution=0.02)
        assert dcc.correct(0.51) == pytest.approx(0.51)

    def test_dcc_dead_clock_rejected(self):
        with pytest.raises(ClockError):
            DccUnit().correct(1.0)

    def test_dcc_rescues_uninverted_chain(self):
        tracker = DutyCycleTracker(
            dcd_per_tile=0.05, invert_per_hop=False, dcc=DccUnit()
        )
        trace = tracker.run(100)
        assert len(trace) == 100
        assert tracker.alive

    def test_forwarding_dead_clock_raises(self):
        tracker = DutyCycleTracker(dcd_per_tile=0.3, invert_per_hop=False)
        tracker.run(10)
        with pytest.raises(ClockError):
            tracker.hop()

    @given(dcd=st.floats(0.001, 0.2))
    @settings(max_examples=25)
    def test_kill_distance_formula(self, dcd):
        hops = tiles_until_clock_dies(dcd)
        assert hops == math.ceil(0.5 / dcd)


class TestForwarding:
    def test_clean_wafer_full_coverage(self, small_cfg):
        result = simulate_clock_setup(small_cfg)
        assert result.coverage == 1.0
        assert not result.unclocked_tiles

    def test_generator_is_generated_source(self, small_cfg):
        result = simulate_clock_setup(small_cfg, generators=[(0, 0)])
        assert result.states[(0, 0)].source is ClockSource.GENERATED
        assert result.states[(0, 1)].source is ClockSource.FORWARDED

    def test_hops_equal_manhattan_on_clean_grid(self, small_cfg):
        result = simulate_clock_setup(small_cfg, generators=[(0, 0)])
        for (r, c), state in result.states.items():
            assert state.hops_from_generator == r + c

    def test_inversion_parity_tracks_hops(self, small_cfg):
        result = simulate_clock_setup(small_cfg, generators=[(0, 0)])
        for state in result.states.values():
            assert state.inverted == (state.hops_from_generator % 2 == 1)

    def test_interior_generator_rejected(self, small_cfg):
        with pytest.raises(ClockError):
            simulate_clock_setup(small_cfg, generators=[(4, 4)])

    def test_faulty_generator_rejected(self, small_cfg):
        with pytest.raises(ClockError):
            simulate_clock_setup(
                small_cfg, generators=[(0, 0)], faulty={(0, 0)}
            )

    def test_fig4_exactly_one_unreachable(self):
        config, generators, faulty = fig4_fault_map()
        result = simulate_clock_setup(config, generators=generators, faulty=faulty)
        assert result.unclocked_tiles == [(3, 3)]

    def test_fig4_tile3_clocked_through_single_neighbor(self):
        config, generators, faulty = fig4_fault_map()
        result = simulate_clock_setup(config, generators=generators, faulty=faulty)
        # (5, 6) has three faulty-ish surroundings but one healthy feed.
        assert result.states[(5, 6)].has_fast_clock

    def test_fig4_render(self):
        config, generators, faulty = fig4_fault_map()
        result = simulate_clock_setup(config, generators=generators, faulty=faulty)
        art = render_forwarding_map(result)
        assert art.count("#") == 6
        assert art.count("X") == 1
        assert art.count("G") == 1

    def test_multiple_generators_reduce_depth(self, small_cfg):
        one = simulate_clock_setup(small_cfg, generators=[(0, 0)])
        two = simulate_clock_setup(small_cfg, generators=[(0, 0), (7, 7)])
        assert two.max_hops < one.max_hops

    def test_setup_time_scales_with_depth(self, small_cfg):
        result = simulate_clock_setup(small_cfg, generators=[(0, 0)])
        expected = result.max_hops * small_cfg.toggle_count / result.clock_hz
        assert result.setup_time_s() == pytest.approx(expected)

    def test_duty_at_depth_all_alive_with_inversion(self, small_cfg):
        result = simulate_clock_setup(small_cfg, generators=[(0, 0)])
        duties = result.duty_at_depth()
        assert all(not math.isnan(d) for d in duties.values())


class TestResiliency:
    def test_unreachable_requires_surrounded_tile(self, small_cfg):
        faulty = {(2, 3), (4, 3), (3, 2), (3, 4)}
        assert unreachable_tiles(small_cfg, faulty) == {(3, 3)}

    def test_isolated_tiles_detection(self, small_cfg):
        faulty = {(2, 3), (4, 3), (3, 2), (3, 4)}
        assert isolated_tiles(small_cfg, faulty) == {(3, 3)}

    def test_theorem_on_fig4(self):
        config, generators, faulty = fig4_fault_map()
        assert clock_coverage_theorem_holds(config, faulty, generators)

    @given(
        fault_seed=st.integers(0, 2**31 - 1),
        fault_count=st.integers(0, 12),
    )
    @settings(max_examples=30, deadline=None)
    def test_theorem_on_random_maps(self, fault_seed, fault_count):
        """The paper's induction claim, machine-checked on random maps."""
        import numpy as np

        config = SystemConfig(rows=8, cols=8)
        rng = np.random.default_rng(fault_seed)
        coords = [
            c for c in config.tile_coords() if c != (0, 0)
        ]
        idx = rng.choice(len(coords), size=fault_count, replace=False)
        faulty = {coords[i] for i in idx}
        assert clock_coverage_theorem_holds(config, faulty, [(0, 0)])

    def test_monte_carlo_coverage_degrades_gracefully(self, small_cfg):
        stats = monte_carlo_clock_coverage(
            small_cfg, fault_counts=[0, 4, 8], trials=20, seed=3
        )
        assert stats[0].mean_coverage == 1.0
        assert stats[-1].mean_coverage > 0.9   # still near-full coverage
        assert stats[0].mean_unreachable <= stats[-1].mean_unreachable + 1e-9

    def test_cannot_fault_everything(self, small_cfg):
        with pytest.raises(ClockError):
            monte_carlo_clock_coverage(small_cfg, [64], trials=1)


class TestGeneratorPlacement:
    def test_mid_edge_beats_corner(self, paper_cfg):
        from repro.clock.placement import best_single_generator, max_depth

        tile, depth = best_single_generator(paper_cfg)
        corner_depth = max_depth(paper_cfg, [(0, 0)])
        assert depth < corner_depth
        assert corner_depth == 62
        # Mid-edge generator: depth ~ rows/2 + cols - 1 = 47 on 32x32.
        assert depth == 47

    def test_more_generators_shallower(self, paper_cfg):
        from repro.clock.placement import depth_report

        series = depth_report(paper_cfg, [1, 2, 4])
        depths = [d for _, d in series]
        assert depths[0] > depths[1] > depths[2]

    def test_depths_match_forwarding_sim(self, small_cfg):
        from repro.clock.placement import forwarding_depths

        depths = forwarding_depths(small_cfg, [(0, 0)])
        result = simulate_clock_setup(small_cfg, generators=[(0, 0)])
        for coord, state in result.states.items():
            assert depths[coord] == state.hops_from_generator

    def test_faulty_generators_rejected(self, small_cfg):
        from repro.clock.placement import best_single_generator, forwarding_depths
        from repro.errors import ClockError

        with pytest.raises(ClockError):
            forwarding_depths(small_cfg, [(0, 0)], faulty={(0, 0)})
        # Whole edge faulty:
        edge = {c for c in small_cfg.tile_coords() if small_cfg.is_edge_tile(c)}
        with pytest.raises(ClockError):
            best_single_generator(small_cfg, faulty=edge)

    def test_placement_respects_faults(self, small_cfg):
        from repro.clock.placement import forwarding_depths

        faulty = {(1, 0), (0, 1)}   # isolate the corner
        depths = forwarding_depths(small_cfg, [(4, 0)], faulty=faulty)
        assert (0, 0) not in depths
