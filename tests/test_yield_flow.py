"""Tests for repro.yieldmodel and the top-level flow/report layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.errors import ConfigError, ReproError
from repro.flow.designer import run_design_flow
from repro.flow.report import table1_report
from repro.yieldmodel.chiplet_yield import (
    DefectModel,
    assembled_system_yield,
    die_yield,
    known_good_die_rate,
)
from repro.yieldmodel.system_yield import compare_monolithic_vs_chiplet


class TestDieYield:
    def test_small_die_high_yield(self):
        assert die_yield(7.5) > 0.95

    def test_yield_decreases_with_area(self):
        areas = [1, 10, 100, 1000]
        yields = [die_yield(a) for a in areas]
        assert yields == sorted(yields, reverse=True)

    def test_waferscale_die_yield_tiny(self):
        # A monolithic 15,000mm2 "die" has dreadful yield.
        assert die_yield(15_000) < 0.01

    def test_zero_defects_perfect_yield(self):
        assert die_yield(100, DefectModel(d0_per_cm2=0.0)) == pytest.approx(1.0)

    def test_kgd_improves_on_raw_yield(self):
        raw = die_yield(7.5)
        kgd = known_good_die_rate(7.5, test_coverage=0.99)
        assert kgd > raw

    def test_perfect_coverage_perfect_kgd(self):
        assert known_good_die_rate(7.5, test_coverage=1.0) == pytest.approx(1.0)

    def test_zero_coverage_equals_raw(self):
        assert known_good_die_rate(7.5, test_coverage=0.0) == pytest.approx(
            die_yield(7.5)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            die_yield(0)
        with pytest.raises(ConfigError):
            known_good_die_rate(10, test_coverage=1.5)
        with pytest.raises(ConfigError):
            DefectModel(alpha=0)

    @given(
        area=st.floats(0.1, 1000),
        coverage=st.floats(0.0, 1.0),
    )
    @settings(max_examples=40)
    def test_kgd_bounds_property(self, area, coverage):
        kgd = known_good_die_rate(area, coverage)
        assert die_yield(area) - 1e-12 <= kgd <= 1.0


class TestSystemYield:
    def test_fault_tolerance_essential(self):
        zero = assembled_system_yield(2048, 0.999, 0.99998, tolerated_faulty=0)
        some = assembled_system_yield(2048, 0.999, 0.99998, tolerated_faulty=16)
        assert zero < 0.25
        assert some > 0.95

    def test_comparison_favors_chiplets(self):
        result = compare_monolithic_vs_chiplet(SystemConfig())
        assert result.chiplet_assembly > result.monolithic_with_redundancy
        assert result.monolithic_zero_redundancy < 1e-6
        assert result.chiplet_advantage > 1.0

    def test_expected_faulty_small(self):
        result = compare_monolithic_vs_chiplet(SystemConfig())
        assert result.expected_faulty_chiplets < 16


class TestTable1:
    @pytest.fixture(scope="class")
    def report(self):
        return table1_report(SystemConfig())

    def test_counts(self, report):
        assert report.compute_chiplets == 1024
        assert report.memory_chiplets == 1024
        assert report.total_cores == 14336

    def test_network_bandwidth(self, report):
        assert report.network_bandwidth_tbps == pytest.approx(9.83, abs=0.01)

    def test_shared_memory_bandwidth(self, report):
        assert report.shared_memory_bandwidth_tbps == pytest.approx(6.144, abs=0.001)

    def test_compute_throughput(self, report):
        assert report.compute_throughput_tops == pytest.approx(4.3, abs=0.01)

    def test_total_area_near_15100(self, report):
        assert report.total_area_mm2 == pytest.approx(15_100, rel=0.01)

    def test_peak_power_near_725(self, report):
        assert report.total_peak_power_w == pytest.approx(725, rel=0.05)

    def test_memory_rows(self, report):
        assert report.total_shared_memory_bytes == 512 * 1024 * 1024
        assert report.private_memory_per_core_bytes == 64 * 1024

    def test_render_contains_all_rows(self, report):
        text = report.render()
        assert "9.83 TBps" in text
        assert "14336" in text
        assert "512 MB" in text
        assert "2020(C)/1250(M)" in text


class TestDesignFlow:
    @pytest.fixture(scope="class")
    def flow(self):
        # Reduced size keeps the substrate route fast; every stage still runs.
        return run_design_flow(SystemConfig(rows=8, cols=8), connectivity_trials=5)

    def test_all_stages_pass(self, flow):
        assert flow.ok, flow.summary()

    def test_stage_names(self, flow):
        names = [stage.name for stage in flow.stages]
        assert names == [
            "geometry", "power", "clock", "io", "network", "dft", "substrate",
        ]

    def test_power_stage_metrics(self, flow):
        power = flow.stage("power")
        assert power.metrics["min_voltage"] < power.metrics["max_voltage"]

    def test_clock_stage_rejects_passive_cdn(self, flow):
        assert flow.stage("clock").metrics["passive_cdn_viable"] is False
        assert flow.stage("clock").metrics["forwarding_coverage"] == 1.0

    def test_substrate_stage_clean(self, flow):
        substrate = flow.stage("substrate")
        assert substrate.metrics["drc_clean"]
        assert substrate.metrics["routed"] == substrate.metrics["nets"]

    def test_unknown_stage_raises(self, flow):
        with pytest.raises(ReproError):
            flow.stage("nonexistent")

    def test_summary_mentions_every_stage(self, flow):
        summary = flow.summary()
        for stage in flow.stages:
            assert stage.name in summary


class TestValidator:
    def test_paper_config_validates(self):
        from repro.flow.validate import validate_design

        report = validate_design(SystemConfig(rows=8, cols=8))
        assert report.ok, report.summary()
        assert len(report.results) == 10

    def test_full_wafer_validates(self):
        from repro.flow.validate import validate_design

        report = validate_design(SystemConfig())
        assert report.ok, report.summary()

    def test_tiny_wafer_flags_connectors(self):
        """A 4x4 wafer's perimeter genuinely cannot carry the connector
        demand — the validator must find exactly that."""
        from repro.flow.validate import validate_design

        report = validate_design(SystemConfig(rows=4, cols=4))
        names = [f.name for f in report.failures()]
        assert names == ["connectors-cover-current"]

    def test_inconsistent_config_caught(self):
        from repro.flow.validate import validate_design

        # A 40x40 array pulls the centre voltage under the LDO floor.
        report = validate_design(SystemConfig(rows=40, cols=40))
        names = [f.name for f in report.failures()]
        assert "ldo-covers-droop" in names

    def test_oversize_array_exceeds_packet_fields(self):
        from repro.flow.validate import validate_design

        report = validate_design(SystemConfig(rows=40, cols=40))
        names = [f.name for f in report.failures()]
        assert "tile-ids-fit-packet-fields" in names

    def test_summary_lines(self):
        from repro.flow.validate import validate_design

        report = validate_design(SystemConfig(rows=8, cols=8))
        assert report.summary().count("\n") == len(report.results) - 1

    def test_cli_validate(self, capsys):
        from repro.cli import main

        assert main(["validate", "--rows", "8", "--cols", "8"]) == 0
        out = capsys.readouterr().out
        assert "ldo-covers-droop" in out
