"""Tests for repro.geometry (wafer, chiplet, reticle, padring)."""

import pytest
from hypothesis import given, strategies as st

from repro.config import SystemConfig
from repro.errors import GeometryError
from repro.geometry.chiplet import (
    ChipletKind,
    ChipletSpec,
    compute_chiplet,
    memory_chiplet,
    tile_area_mm2,
)
from repro.geometry.padring import (
    PadClass,
    PadRing,
    Side,
    IoPad,
    build_pad_ring,
)
from repro.geometry.reticle import plan_reticles
from repro.geometry.wafer import WaferLayout, build_layout


class TestChiplet:
    def test_compute_chiplet_area(self):
        spec = compute_chiplet()
        assert spec.area_mm2 == pytest.approx(3.15 * 2.4)
        assert spec.kind is ChipletKind.COMPUTE
        assert spec.cores == 14

    def test_memory_chiplet_area(self):
        spec = memory_chiplet()
        assert spec.area_mm2 == pytest.approx(3.15 * 1.1)
        assert spec.sram_banks == 5

    def test_tile_area_matches_sum(self):
        assert tile_area_mm2() == pytest.approx(
            compute_chiplet().area_mm2 + memory_chiplet().area_mm2
        )

    def test_perimeter_io_bound_fits_budget(self):
        # 2020 I/Os must fit the compute chiplet perimeter at 10um pitch
        # with two pad rows.
        spec = compute_chiplet()
        assert spec.max_perimeter_ios(10.0, pad_rows=2) >= 2020

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(GeometryError):
            ChipletSpec(kind=ChipletKind.COMPUTE, width_mm=0, height_mm=1, io_count=1)

    def test_negative_io_rejected(self):
        with pytest.raises(GeometryError):
            ChipletSpec(kind=ChipletKind.COMPUTE, width_mm=1, height_mm=1, io_count=-1)

    def test_bad_pitch_rejected(self):
        with pytest.raises(GeometryError):
            compute_chiplet().max_perimeter_ios(0)


class TestWaferLayout:
    def test_full_wafer_active_area(self, paper_cfg):
        layout = WaferLayout(paper_cfg)
        # 2048 chiplets of ~11mm2/tile: ~11,300mm2 of silicon.
        assert layout.active_area_mm2 == pytest.approx(1024 * tile_area_mm2(), rel=1e-9)

    def test_placements_count(self, small_cfg):
        assert len(WaferLayout(small_cfg).placements()) == 64

    def test_placement_positions_monotonic(self, small_cfg):
        layout = WaferLayout(small_cfg)
        p00 = layout.placement((0, 0))
        p11 = layout.placement((1, 1))
        assert p11.origin_x_mm > p00.origin_x_mm
        assert p11.origin_y_mm > p00.origin_y_mm

    def test_memory_chiplet_below_compute(self, small_cfg):
        layout = WaferLayout(small_cfg)
        placement = layout.placement((2, 3))
        cx, cy = placement.chiplet_origin(ChipletKind.COMPUTE)
        mx, my = placement.chiplet_origin(ChipletKind.MEMORY)
        assert cx == mx
        assert my > cy

    def test_center_tile_has_max_edge_distance(self, paper_cfg):
        layout = WaferLayout(paper_cfg)
        center = (16, 16)
        corner = (0, 0)
        assert layout.distance_to_edge_mm(center) > layout.distance_to_edge_mm(corner)

    def test_max_edge_distance_around_50mm(self, paper_cfg):
        # Half the ~104mm array width: the paper's "as far as 70mm from
        # the nearest capacitor" counts to the capacitors beyond the
        # array edge; the array-edge distance is ~52mm.
        distance = WaferLayout(paper_cfg).max_edge_distance_mm()
        assert 45 < distance < 60

    def test_unknown_tile_raises(self, small_cfg):
        with pytest.raises(GeometryError):
            WaferLayout(small_cfg).placement((9, 9))

    @given(rows=st.integers(2, 10), cols=st.integers(2, 10))
    def test_distance_to_edge_bounded(self, rows, cols):
        cfg = SystemConfig(rows=rows, cols=cols)
        layout = WaferLayout(cfg)
        half_min_dim = min(layout.width_mm, layout.height_mm) / 2
        for coord in cfg.tile_coords():
            d = layout.distance_to_edge_mm(coord)
            assert 0 <= d <= half_min_dim + 1e-9


class TestReticle:
    def test_full_wafer_step_count(self, paper_cfg):
        plan = plan_reticles(paper_cfg)
        # 32 rows / 6 per reticle = 6 steps; 32 cols / 12 = 3 steps.
        assert plan.step_count == 6 * 3

    def test_every_tile_covered_once(self, paper_cfg):
        plan = plan_reticles(paper_cfg)
        for coord in paper_cfg.tile_coords():
            reticle = plan.reticle_of(coord)
            assert reticle.covers(coord)

    def test_boundary_pairs_cross(self, paper_cfg):
        plan = plan_reticles(paper_cfg)
        # Column 11 -> 12 crosses the first vertical reticle boundary.
        assert plan.crosses_boundary((0, 11), (0, 12))
        assert not plan.crosses_boundary((0, 0), (0, 1))

    def test_boundary_tile_pairs_nonempty(self, paper_cfg):
        pairs = plan_reticles(paper_cfg).boundary_tile_pairs()
        assert pairs
        for a, b in pairs:
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_edge_reticles_exist(self, paper_cfg):
        plan = plan_reticles(paper_cfg)
        assert plan.edge_reticle_count > 0

    def test_small_array_single_reticle(self):
        cfg = SystemConfig(rows=6, cols=12)
        plan = plan_reticles(cfg)
        assert plan.step_count == 1
        assert not plan.boundary_tile_pairs()


class TestPadRing:
    def test_compute_ring_builds(self):
        ring = build_pad_ring(compute_chiplet())
        assert ring.pads
        assert ring.total_pillars == 2 * len(ring.pads)

    def test_column_sets_partition(self):
        ring = build_pad_ring(compute_chiplet(), memory_extended=60)
        set1 = ring.column_set(1)
        set2 = ring.column_set(2)
        assert set1.count + set2.count == len(ring.pads)

    def test_essential_pads_exclude_extended_memory(self):
        ring = build_pad_ring(
            memory_chiplet(), network_per_side=100,
            memory_essential=40, memory_extended=60,
        )
        essential = ring.essential_pads()
        assert all(p.pad_class is not PadClass.MEMORY_EXTENDED for p in essential)

    def test_side_pads_sorted(self):
        ring = build_pad_ring(compute_chiplet())
        pads = ring.side_pads(Side.NORTH)
        assert list(p.index for p in pads) == sorted(p.index for p in pads)

    def test_overflow_rejected(self):
        tiny = ChipletSpec(
            kind=ChipletKind.COMPUTE, width_mm=0.1, height_mm=0.1, io_count=10
        )
        with pytest.raises(GeometryError):
            build_pad_ring(tiny, network_per_side=500)

    def test_bad_column_set_index(self):
        ring = build_pad_ring(compute_chiplet())
        with pytest.raises(GeometryError):
            ring.column_set(3)

    def test_pad_validation(self):
        with pytest.raises(GeometryError):
            IoPad(side=Side.NORTH, index=0, column_set=5, pad_class=PadClass.SPARE)
        with pytest.raises(GeometryError):
            IoPad(side=Side.NORTH, index=0, column_set=1,
                  pad_class=PadClass.SPARE, pillars=0)
