"""Tests for bring-up orchestration, cost model, interposer, energy, load-latency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.energy import EnergyModel
from repro.config import SystemConfig
from repro.errors import ConfigError, EmulatorError, NetworkError, ReproError
from repro.flow.bringup import (
    fault_map_from_json,
    fault_map_to_json,
    run_bringup,
)
from repro.io.interposer import (
    IntegrationTechnology,
    density_advantage,
    interposer,
    si_if,
    technology_comparison,
)
from repro.noc.faults import FaultMap, random_fault_map
from repro.noc.loadlatency import measure_load_latency
from repro.yieldmodel.cost import (
    CostInputs,
    chiplet_system_cost,
    cost_comparison,
    monolithic_system_cost,
)


class TestBringup:
    def test_clean_wafer(self, small_cfg):
        report = run_bringup(small_cfg)
        assert report.all_faults == set()
        assert report.usable_tiles == 64
        assert report.clock is not None and report.clock.coverage == 1.0
        assert report.system is not None

    def test_locates_multiple_faults_per_row(self, small_cfg):
        faults = {(2, 1), (2, 4), (2, 6), (5, 0)}
        report = run_bringup(small_cfg, true_bonding_faults=faults)
        assert report.bonding_faults == faults

    def test_memory_faults_found_by_mbist(self, small_cfg):
        report = run_bringup(small_cfg, memory_fault_tiles={(3, 3)})
        assert report.memory_faults == {(3, 3)}
        assert report.final_map is not None
        assert report.final_map.is_faulty((3, 3))

    def test_clock_unreachable_tiles_excluded(self, small_cfg):
        # Surround (3, 3): it bonds fine but can never receive the clock.
        faults = {(2, 3), (4, 3), (3, 2), (3, 4)}
        report = run_bringup(small_cfg, true_bonding_faults=faults)
        assert (3, 3) in report.clock_unreachable
        assert report.final_map.is_faulty((3, 3))
        assert report.usable_tiles == 64 - 5

    def test_overlapping_fault_sets_rejected(self, small_cfg):
        with pytest.raises(ReproError):
            run_bringup(
                small_cfg,
                true_bonding_faults={(1, 1)},
                memory_fault_tiles={(1, 1)},
            )

    def test_unroll_test_count_reasonable(self, small_cfg):
        report = run_bringup(small_cfg, true_bonding_faults={(0, 4)})
        # Row 0 tests 0..4 then resumes 5..7 => 8 tests total for row 0;
        # other rows test all 8 tiles.
        assert report.unroll_tests_run == 8 * 8

    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_bringup_always_finds_ground_truth(self, seed):
        cfg = SystemConfig(rows=6, cols=6)
        fmap = random_fault_map(cfg, 4, rng=seed)
        report = run_bringup(cfg, true_bonding_faults=set(fmap.faulty))
        assert report.bonding_faults == set(fmap.faulty)


class TestFaultMapPersistence:
    def test_roundtrip(self, small_cfg):
        fmap = random_fault_map(small_cfg, 6, rng=1)
        loaded = fault_map_from_json(fault_map_to_json(fmap))
        assert loaded.faulty == fmap.faulty
        assert (loaded.config.rows, loaded.config.cols) == (8, 8)

    def test_grid_mismatch_rejected(self, small_cfg):
        fmap = FaultMap(small_cfg)
        text = fault_map_to_json(fmap)
        with pytest.raises(ReproError):
            fault_map_from_json(text, SystemConfig(rows=4, cols=4))

    def test_bad_json_rejected(self):
        with pytest.raises(ReproError):
            fault_map_from_json("not json")
        with pytest.raises(ReproError):
            fault_map_from_json("{}")


class TestCostModel:
    def test_chiplet_dramatically_cheaper(self, paper_cfg):
        comparison = cost_comparison(paper_cfg)
        assert comparison["monolithic_over_chiplet"] > 10
        assert comparison["chiplet_yield"] > 0.99
        assert comparison["monolithic_yield"] < 0.2

    def test_cost_components_positive(self, paper_cfg):
        cost = chiplet_system_cost(paper_cfg)
        assert cost.silicon_cost > 0
        assert cost.substrate_cost > 0
        assert cost.assembly_cost > 0
        assert cost.cost_per_good_system >= cost.cost_per_attempt * (1 - 1e-12)

    def test_monolithic_yield_drives_cost(self, paper_cfg):
        cost = monolithic_system_cost(paper_cfg)
        assert cost.cost_per_good_system == pytest.approx(
            cost.cost_per_attempt / cost.assembled_yield
        )

    def test_zero_yield_infinite_cost(self, paper_cfg):
        tight = CostInputs(tolerated_faulty_tiles=0)
        cost = monolithic_system_cost(paper_cfg, tight)
        assert cost.cost_per_good_system > 1e6   # effectively unbuildable

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            CostInputs(logic_wafer_cost=-1)


class TestInterposer:
    def test_16x_density_claim(self):
        assert density_advantage() == pytest.approx(16.0)

    def test_si_if_wins_link_width(self):
        rows = {r["name"]: r for r in technology_comparison()}
        assert rows["Si-IF"]["link_width"] > 3 * rows["interposer"]["link_width"]

    def test_si_if_supports_paper_link(self):
        # A 2.4mm edge must carry the 400-bit link + clocks/tests.
        assert si_if().link_width_per_edge(2.4) >= 406

    def test_interposer_cannot(self):
        assert interposer().link_width_per_edge(2.4) < 406

    def test_bump_pitch_limits_interposer(self):
        tech = interposer()
        assert tech.edge_ios_per_mm < tech.edge_wires_per_mm

    def test_invalid_technology(self):
        with pytest.raises(ConfigError):
            IntegrationTechnology("bad", 0, 5, 2, 100)
        with pytest.raises(ConfigError):
            si_if().link_width_per_edge(0)


class TestEnergy:
    def test_breakdown_totals(self):
        model = EnergyModel()
        result = model.workload_energy(core_ops=1000, sram_accesses=500, packet_hops=100)
        assert result.total_j == pytest.approx(
            result.core_j + result.sram_j
            + result.network_link_j + result.network_router_j
        )
        assert 0 <= result.communication_fraction <= 1

    def test_link_energy_from_section5_cell(self):
        model = EnergyModel()
        per_packet = model.link_energy_per_packet_j()
        # 100 bits at ~0.063pJ/bit: ~6pJ.
        assert per_packet == pytest.approx(6.3e-12, rel=0.1)

    def test_on_wafer_vs_off_package(self):
        model = EnergyModel()
        result = model.waferscale_vs_off_package(bits_moved=10**9, mean_hops=10)
        assert result["advantage_x"] > 5     # Section I's motivation

    def test_emulation_energy(self, tiny_cfg):
        from repro.arch.system import WaferscaleSystem
        from repro.workloads.bfs import DistributedBfs
        from repro.workloads.graphs import random_graph

        system = WaferscaleSystem(tiny_cfg)
        result = DistributedBfs(system, random_graph(100, 4.0, seed=1)).run(0)
        breakdown = EnergyModel(tiny_cfg).emulation_energy(result.stats)
        assert breakdown.total_j > 0
        assert len(breakdown.rows()) == 6

    def test_negative_counts_rejected(self):
        with pytest.raises(EmulatorError):
            EnergyModel().workload_energy(-1, 0, 0)


class TestLoadLatency:
    def test_latency_rises_with_load(self):
        cfg = SystemConfig(rows=6, cols=6)
        curve = measure_load_latency(
            cfg, rates=[0.02, 0.5], warm_cycles=150, seed=1
        )
        assert curve.points[-1].mean_latency > curve.points[0].mean_latency

    def test_zero_load_latency_sane(self):
        cfg = SystemConfig(rows=6, cols=6)
        curve = measure_load_latency(cfg, rates=[0.02], warm_cycles=80)
        # Mean Manhattan distance on 6x6 is ~4; plus injection overhead.
        assert 2.0 < curve.zero_load_latency() < 15.0

    def test_bad_rates_rejected(self):
        cfg = SystemConfig(rows=4, cols=4)
        with pytest.raises(NetworkError):
            measure_load_latency(cfg, rates=[0.0])
        with pytest.raises(NetworkError):
            measure_load_latency(cfg, rates=[1.5])

    def test_rows_render(self):
        cfg = SystemConfig(rows=4, cols=4)
        curve = measure_load_latency(cfg, rates=[0.05], warm_cycles=40)
        assert len(curve.rows()) == 1
