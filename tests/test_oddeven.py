"""Tests for odd-even turn-model adaptive routing (future work, ref [18])."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.noc.connectivity import disconnected_fraction
from repro.noc.faults import FaultMap, random_fault_map
from repro.noc.oddeven import (
    EAST,
    NORTH,
    SOUTH,
    WEST,
    _turn_allowed,
    compare_routing_schemes,
    odd_even_connectivity,
    odd_even_path,
    path_respects_turn_model,
)


class TestTurnRules:
    def test_injection_always_allowed(self):
        for direction in (EAST, WEST, NORTH, SOUTH):
            assert _turn_allowed(None, direction, (3, 4))

    def test_straight_always_allowed(self):
        for direction in (EAST, WEST, NORTH, SOUTH):
            assert _turn_allowed(direction, direction, (2, 2))
            assert _turn_allowed(direction, direction, (2, 3))

    def test_u_turns_never_allowed(self):
        assert not _turn_allowed(EAST, WEST, (0, 0))
        assert not _turn_allowed(NORTH, SOUTH, (1, 1))

    def test_rule1_en_even_columns(self):
        assert not _turn_allowed(EAST, NORTH, (3, 4))   # even column
        assert _turn_allowed(EAST, NORTH, (3, 5))       # odd column

    def test_rule1_nw_odd_columns(self):
        assert not _turn_allowed(NORTH, WEST, (3, 5))
        assert _turn_allowed(NORTH, WEST, (3, 4))

    def test_rule2_es_even_columns(self):
        assert not _turn_allowed(EAST, SOUTH, (3, 4))
        assert _turn_allowed(EAST, SOUTH, (3, 5))

    def test_rule2_sw_odd_columns(self):
        assert not _turn_allowed(SOUTH, WEST, (3, 5))
        assert _turn_allowed(SOUTH, WEST, (3, 4))

    def test_west_turns_unrestricted_by_rules(self):
        # WN / WS turns are never restricted by odd-even.
        for col in (4, 5):
            assert _turn_allowed(WEST, NORTH, (3, col))
            assert _turn_allowed(WEST, SOUTH, (3, col))


class TestPaths:
    def test_clean_grid_all_pairs_routable(self, small_cfg):
        fmap = FaultMap(small_cfg)
        for src in [(0, 0), (7, 0), (3, 4)]:
            for dst in small_cfg.tile_coords():
                if src == dst:
                    continue
                path = odd_even_path(src, dst, fmap)
                assert path is not None
                assert path[0] == src and path[-1] == dst
                assert path_respects_turn_model(path)

    def test_faulty_endpoint_unroutable(self, small_cfg):
        fmap = FaultMap(small_cfg, frozenset({(3, 3)}))
        assert odd_even_path((0, 0), (3, 3), fmap) is None
        assert odd_even_path((3, 3), (0, 0), fmap) is None

    def test_routes_around_fault_wall(self, small_cfg):
        # A fault pattern that kills both DoR paths of a same-row pair,
        # but not adaptive routing.
        fmap = FaultMap(small_cfg, frozenset({(0, 4), (1, 4)}))
        dor = disconnected_fraction(fmap)
        path = odd_even_path((0, 0), (0, 7), fmap)
        assert path is not None
        assert path_respects_turn_model(path)
        assert all(not fmap.is_faulty(t) for t in path)
        # The route must duck below the two-deep wall.
        assert any(r >= 2 for r, _ in path)

    def test_path_avoids_faults_property(self):
        cfg = SystemConfig(rows=8, cols=8)
        for seed in range(10):
            fmap = random_fault_map(cfg, 6, rng=seed)
            healthy = fmap.healthy_tiles()
            src, dst = healthy[0], healthy[-1]
            path = odd_even_path(src, dst, fmap)
            if path is not None:
                assert path_respects_turn_model(path)
                assert all(not fmap.is_faulty(t) for t in path)

    @given(
        src=st.tuples(st.integers(0, 5), st.integers(0, 5)),
        dst=st.tuples(st.integers(0, 5), st.integers(0, 5)),
    )
    @settings(max_examples=40, deadline=None)
    def test_clean_paths_near_minimal(self, src, dst):
        """On a fault-free mesh, odd-even routes are at most slightly
        longer than Manhattan (the turn rules cost at most ~2 hops)."""
        cfg = SystemConfig(rows=6, cols=6)
        fmap = FaultMap(cfg)
        path = odd_even_path(src, dst, fmap)
        assert path is not None
        manhattan = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        assert len(path) - 1 <= manhattan + 4


class TestConnectivity:
    def test_clean_map_fully_connected(self, tiny_cfg):
        result = odd_even_connectivity(FaultMap(tiny_cfg))
        assert result.disconnected == 0

    def test_adaptive_beats_dual_dor(self):
        cfg = SystemConfig(rows=16, cols=16)
        comparison = compare_routing_schemes(cfg, [4], trials=5, seed=2)[0]
        assert comparison["odd_even_pct"] <= comparison["dual_dor_pct"]
        assert comparison["dual_dor_pct"] < comparison["single_dor_pct"]

    def test_only_graph_disconnection_defeats_adaptive(self, small_cfg):
        """Odd-even disconnection should track true graph disconnection
        closely: turn rules rarely cost connectivity beyond topology."""
        for seed in range(5):
            fmap = random_fault_map(small_cfg, 8, rng=seed)
            graph = nx.Graph()
            healthy = fmap.healthy_tiles()
            graph.add_nodes_from(healthy)
            for r, c in healthy:
                for nbr in ((r + 1, c), (r, c + 1)):
                    if nbr in set(healthy):
                        graph.add_edge((r, c), nbr)
            # Count ordered pairs disconnected in the plain graph.
            components = list(nx.connected_components(graph))
            n = len(healthy)
            connected_pairs = sum(len(comp) * (len(comp) - 1) for comp in components)
            graph_disconnected = n * (n - 1) - connected_pairs

            result = odd_even_connectivity(fmap)
            assert result.disconnected >= graph_disconnected
            # Turn rules cost some connectivity around dense fault
            # clusters (forbidden west-bound turns), but the overhead
            # stays a modest fraction of all pairs even at this high
            # fault density (8 faults in 64 tiles).
            assert (
                result.disconnected - graph_disconnected
            ) <= 0.15 * result.healthy_pairs
