"""Tests for the unified ``engine="fast"|"reference"`` selection.

One vocabulary across every dual-implementation entry point
(:mod:`repro.fastpath`), with deprecation shims for the historical
per-entry-point knobs: ``PdnSolver(factorize=)``, emulator/BFS
``route_cache=``, connectivity ``method=``.  Each shim must (a) keep
producing the old behaviour, (b) emit :class:`DeprecationWarning`, and
(c) refuse a conflicting combination with the new keyword.
"""

import warnings

import numpy as np
import pytest

import networkx as nx

from repro.arch.emulator import Emulator
from repro.arch.system import WaferscaleSystem
from repro.config import SystemConfig
from repro.errors import ReproError
from repro.fastpath import ENGINE_KINDS, resolve_engine_kind
from repro.noc.connectivity import (
    disconnected_fraction,
    disconnected_fractions,
    monte_carlo_disconnection,
    same_row_col_share,
)
from repro.noc.faults import random_fault_map
from repro.noc.simulator import NocSimulator
from repro.pdn.solver import PdnSolver
from repro.workloads.bfs import DistributedBfs


@pytest.fixture()
def cfg():
    return SystemConfig.from_dict({"rows": 6, "cols": 6})


@pytest.fixture()
def fmap(cfg):
    return random_fault_map(cfg, 4, rng=3)


class TestResolver:
    def test_default_is_fast(self):
        assert resolve_engine_kind(None) == "fast"
        assert ENGINE_KINDS == ("fast", "reference")

    def test_explicit_kind_wins(self):
        assert resolve_engine_kind("reference") == "reference"
        assert resolve_engine_kind("fast", default="reference") == "fast"

    def test_unknown_kind_raises(self):
        with pytest.raises(ReproError, match="unknown engine"):
            resolve_engine_kind("warp", entry_point="X")

    def test_legacy_value_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="use engine='fast'"):
            kind = resolve_engine_kind(
                None, entry_point="X", deprecated_name="turbo",
                deprecated_value=True, deprecated_map={True: "fast", False: "reference"},
            )
        assert kind == "fast"

    def test_conflicting_keywords_raise(self):
        with pytest.raises(ReproError, match="conflicts"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            resolve_engine_kind(
                "reference", entry_point="X", deprecated_name="turbo",
                deprecated_value=True, deprecated_map={True: "fast", False: "reference"},
            )

    def test_consistent_keywords_allowed(self):
        with pytest.warns(DeprecationWarning):
            kind = resolve_engine_kind(
                "fast", entry_point="X", deprecated_name="turbo",
                deprecated_value=True, deprecated_map={True: "fast", False: "reference"},
            )
        assert kind == "fast"

    def test_unknown_legacy_value_raises(self):
        with pytest.raises(ReproError, match="turbo"):
            resolve_engine_kind(
                None, entry_point="X", deprecated_name="turbo",
                deprecated_value="sideways", deprecated_map={True: "fast"},
            )


class TestPdnSolverShim:
    def test_engine_kinds_agree(self, cfg):
        fast = PdnSolver(cfg, engine="fast").solve()
        reference = PdnSolver(cfg, engine="reference").solve()
        np.testing.assert_allclose(fast.voltages, reference.voltages)

    def test_factorize_warns_and_maps(self, cfg):
        with pytest.warns(DeprecationWarning, match="use engine='fast'"):
            solver = PdnSolver(cfg, factorize=True)
        assert solver.engine == "fast" and solver.factorize is True
        with pytest.warns(DeprecationWarning, match="use engine='reference'"):
            solver = PdnSolver(cfg, factorize=False)
        assert solver.engine == "reference" and solver.factorize is False

    def test_conflict_raises(self, cfg):
        with pytest.raises(ReproError, match="conflicts"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            PdnSolver(cfg, engine="reference", factorize=True)


class TestEmulatorShim:
    def _bfs(self, cfg, fmap):
        system = WaferscaleSystem(cfg, fmap)
        graph = nx.gnm_random_graph(40, 80, seed=9)
        return DistributedBfs(system, graph)

    def test_engine_kinds_agree(self, cfg, fmap):
        fast = self._bfs(cfg, fmap).run(0, engine="fast")
        reference = self._bfs(cfg, fmap).run(0, engine="reference")
        assert fast.distance == reference.distance

    def test_route_cache_warns_and_maps(self, cfg, fmap):
        system = WaferscaleSystem(cfg, fmap)
        with pytest.warns(DeprecationWarning, match="use engine='fast'"):
            emulator = Emulator(system, route_cache=True)
        assert emulator.engine == "fast"
        with pytest.warns(DeprecationWarning, match="use engine='reference'"):
            emulator = Emulator(system, route_cache=False)
        assert emulator.engine == "reference"

    def test_bfs_run_forwards_shim(self, cfg, fmap):
        with pytest.warns(DeprecationWarning, match="route_cache"):
            legacy = self._bfs(cfg, fmap).run(0, route_cache=False)
        reference = self._bfs(cfg, fmap).run(0, engine="reference")
        assert legacy.distance == reference.distance

    def test_conflict_raises(self, cfg, fmap):
        system = WaferscaleSystem(cfg, fmap)
        with pytest.raises(ReproError, match="conflicts"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            Emulator(system, engine="fast", route_cache=False)


class TestConnectivityShim:
    def test_engine_kinds_agree(self, fmap):
        fast = disconnected_fraction(fmap, engine="fast")
        reference = disconnected_fraction(fmap, engine="reference")
        assert fast.single == pytest.approx(reference.single)
        assert fast.dual == pytest.approx(reference.dual)
        assert same_row_col_share(fmap, engine="fast") == pytest.approx(
            same_row_col_share(fmap, engine="reference")
        )
        np.testing.assert_allclose(
            [p.single for p in disconnected_fractions([fmap, fmap], engine="fast")],
            [p.single for p in disconnected_fractions([fmap, fmap], engine="reference")],
        )

    def test_method_warns_and_maps(self, fmap):
        baseline = disconnected_fraction(fmap)
        with pytest.warns(DeprecationWarning, match="use engine='fast'"):
            legacy = disconnected_fraction(fmap, method="vectorized")
        assert legacy == baseline
        with pytest.warns(DeprecationWarning, match="use engine='reference'"):
            legacy_ref = disconnected_fraction(fmap, method="reference")
        assert legacy_ref == pytest.approx(baseline)

    def test_conflict_raises(self, fmap):
        with pytest.raises(ReproError, match="conflicts"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            disconnected_fraction(fmap, engine="fast", method="reference")

    def test_monte_carlo_accepts_unified_value(self, cfg):
        base = monte_carlo_disconnection(
            cfg, fault_counts=[2], trials=3, seed=1, cache=None
        )
        unified = monte_carlo_disconnection(
            cfg, fault_counts=[2], trials=3, seed=1, cache=None, method="fast"
        )
        assert [s.mean_single_pct for s in base] == [
            s.mean_single_pct for s in unified
        ]


class TestNocSimulatorKinds:
    def test_accepts_both_kinds(self, cfg):
        for kind in ENGINE_KINDS:
            sim = NocSimulator(cfg, engine=kind)
            assert sim.engine == kind
