#!/usr/bin/env python3
"""Scaling study: beyond the prototype (the paper's future work).

Uses the library as the paper's authors would for their stated ongoing
work — "characterizing the waferscale prototype and developing design
methods for higher-power waferscale systems":

1. array-size DSE: where edge power delivery stops working;
2. what TWV backside delivery and deep-trench decap buy back;
3. the thermal envelope under air vs liquid cooling;
4. adaptive (odd-even) routing vs the prototype's dual-DoR networks;
5. an ASCII droop map of the full wafer for intuition.

Run:  python examples/scaling_study.py
"""

from repro import SystemConfig
from repro.analysis.dse import sweep_array_size
from repro.analysis.render import render_field
from repro.noc.oddeven import compare_routing_schemes
from repro.pdn.dtc import dtc_upgrade_summary
from repro.pdn.solver import solve_pdn
from repro.pdn.twv import max_tile_power_w, solve_twv_delivery
from repro.thermal.grid import ThermalGrid
from repro.thermal.limits import max_power_per_tile_w


def main() -> None:
    paper = SystemConfig()

    print("-- 1. Array-size design-space exploration --")
    print(f"{'array':>8} {'tiles':>6} {'cores':>7} {'min V':>7} "
          f"{'clk hops':>9} {'BW TB/s':>8} {'load':>9}")
    for point in sweep_array_size([8, 16, 24, 32, 40]):
        print(f"{point.label:>8} {point.tiles:>6} {point.cores:>7} "
              f"{point.min_delivered_v:>6.2f}V {point.max_clock_hops:>9} "
              f"{point.network_bw_tbps:>8.2f} {point.load_time_min:>8.1f}m")
    print("-> at 32x32 the centre voltage sits exactly on the LDO's 1.4V")
    print("   floor: the prototype is at the edge-delivery wall; 40x40 is")
    print("   under it, which is why TWV matters for anything bigger.")

    print("\n-- 2. TWV delivery + deep-trench decap --")
    edge_limit = max_tile_power_w(paper, scheme="edge")
    twv_limit = max_tile_power_w(paper, scheme="twv")
    twv = solve_twv_delivery(paper)
    print(f"edge-delivery tile-power limit: {edge_limit * 1e3:.0f} mW")
    print(f"TWV tile-power limit:          >= {twv_limit:.0f} W "
          f"(droop {twv.tile_droop_v * 1e3:.2f} mV at the prototype's load)")
    dtc = dtc_upgrade_summary(paper)
    print(f"deep-trench decap: {dtc['dtc_capacitance_nf']:.0f} nF/tile "
          f"({dtc['capacitance_gain_x']:.0f}x the on-chip MOS decap), "
          f"reclaiming {dtc['reclaimed_chiplet_area_mm2']:.1f} mm2 of "
          "silicon per tile")

    print("\n-- 3. Thermal envelope --")
    for name, h in (("air (h=500)", 500.0), ("cold plate (h=5000)", 5000.0)):
        limit = max_power_per_tile_w(paper, sink_h_w_per_m2_k=h)
        grid = ThermalGrid(paper, sink_h_w_per_m2_k=h)
        prototype = grid.solve()
        print(f"{name:>20}: prototype hotspot {prototype.max_temperature_c:.0f}C, "
              f"limit {limit:.1f} W/tile ({limit * paper.tiles / 1e3:.1f} kW wafer)")

    print("\n-- 4. Adaptive routing vs dual DoR (16x16, Monte Carlo) --")
    print(f"{'faults':>7} {'single DoR':>11} {'dual DoR':>9} {'odd-even':>9}")
    for row in compare_routing_schemes(SystemConfig(rows=16, cols=16),
                                       [2, 4, 6], trials=8, seed=1):
        print(f"{int(row['fault_count']):>7} {row['single_dor_pct']:>10.2f}% "
              f"{row['dual_dor_pct']:>8.3f}% {row['odd_even_pct']:>8.3f}%")

    print("\n-- 5. Delivered-voltage map (32x32, '@'=2.5V, ' '=1.4V) --")
    solution = solve_pdn(paper)
    print(render_field(solution.voltages))


if __name__ == "__main__":
    main()
