#!/usr/bin/env python3
"""Reproduce Fig. 6: dual-DoR network resiliency Monte Carlo.

Sweeps fault counts on the full 32x32 wafer and prints the Fig. 6 series:
mean percentage of disconnected source-destination round trips for a
single X-Y network versus the paper's two complementary networks, plus
the residual analysis (which pairs remain disconnected and why).

Run:  python examples/network_resiliency.py
"""

from repro import SystemConfig
from repro.noc.connectivity import (
    disconnected_fraction,
    monte_carlo_disconnection,
    same_row_col_share,
)
from repro.noc.faults import random_fault_map


def main() -> None:
    config = SystemConfig()

    print("Fig. 6 — disconnected pairs vs faulty chiplets (32x32 wafer)")
    print(f"{'faults':>7} {'single DoR %':>13} {'dual DoR %':>11} {'gain':>7}")
    stats = monte_carlo_disconnection(
        config, fault_counts=[1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        trials=25, seed=0,
    )
    for s in stats:
        print(f"{s.fault_count:>7} {s.mean_single_pct:>13.2f} "
              f"{s.mean_dual_pct:>11.3f} {s.improvement:>6.1f}x")

    at5 = next(s for s in stats if s.fault_count == 5)
    print(f"\npaper @5 faults: single >12%, dual <2%")
    print(f"ours  @5 faults: single {at5.mean_single_pct:.1f}%, "
          f"dual {at5.mean_dual_pct:.2f}%")

    print("\nResidual analysis: who stays disconnected under two networks?")
    fmap = random_fault_map(config, 5, rng=7)
    exact = disconnected_fraction(fmap)
    share = same_row_col_share(fmap)
    print(f"one example map with 5 faults: dual-disconnected "
          f"{exact.dual:.3%} of pairs; {share:.0%} of those share a "
          "row/column with no second disjoint path (the paper's residue)")


if __name__ == "__main__":
    main()
