#!/usr/bin/env python3
"""Quickstart: re-derive Table I and run the full design flow.

This is the 60-second tour: build the paper's 32x32 configuration,
regenerate Table I from first principles, then run every stage of the
design methodology (geometry, power, clock, I/O, network, DfT, substrate)
on a reduced 8x8 instance and print the stage report.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, run_design_flow, table1_report


def main() -> None:
    paper = SystemConfig()

    print("=" * 64)
    print("Table I, re-derived from the models (not restated):")
    print("=" * 64)
    print(table1_report(paper).render())

    print()
    print("=" * 64)
    print("Design flow on a reduced 8x8 instance (all seven stages):")
    print("=" * 64)
    flow = run_design_flow(paper.scaled(8, 8), connectivity_trials=10)
    print(flow.summary())

    print()
    if flow.ok:
        print("All design-flow stages passed.")
    else:
        failing = [s.name for s in flow.stages if not s.ok]
        print(f"Stages needing attention: {', '.join(failing)}")

    # Key stage metrics, the numbers the paper's sections argue from.
    power = flow.stage("power")
    print(
        f"\nPower: {power.metrics['max_voltage']:.2f}V edge -> "
        f"{power.metrics['min_voltage']:.2f}V centre, "
        f"{power.metrics['total_current_a']:.0f}A total"
    )
    network = flow.stage("network")
    print(
        f"Network @5 faults: single {network.metrics['single_net_disconnected_pct']:.1f}% "
        f"vs dual {network.metrics['dual_net_disconnected_pct']:.2f}% disconnected"
    )
    dft = flow.stage("dft")
    print(
        f"DfT: {dft.metrics['chains']} chains at {dft.metrics['tck_mhz']:.0f}MHz, "
        f"full memory load in {dft.metrics['full_load_minutes']:.1f} minutes"
    )


if __name__ == "__main__":
    main()
