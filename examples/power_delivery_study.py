#!/usr/bin/env python3
"""Power-delivery design study (paper Section III, Fig. 2).

Walks the full Section III argument on the real 32x32 wafer:

1. solve the edge-delivery IR-droop problem (2.5V edge -> ~1.4V centre);
2. check every tile's LDO stays in its tracking range and the regulated
   output stays inside the guaranteed 1.0-1.2V band;
3. size the on-chip decap from the 200mA load-step requirement;
4. compare the three delivery schemes the paper weighed and re-derive
   its choice.

Run:  python examples/power_delivery_study.py
"""

from repro import SystemConfig
from repro.geometry.chiplet import tile_area_mm2
from repro.pdn.decap import DecapModel, required_decap_f
from repro.pdn.delivery import chosen_scheme, compare_delivery_schemes
from repro.pdn.ldo import LdoModel
from repro.pdn.solver import PdnSolver


def main() -> None:
    config = SystemConfig()

    print("-- 1. IR droop across the wafer (Fig. 2) --")
    solution = PdnSolver(config).solve()
    print(f"edge voltage:   {solution.max_voltage:.3f} V")
    print(f"centre voltage: {solution.min_voltage:.3f} V")
    print(f"total current:  {solution.total_current_a:.0f} A")
    print(f"supply power:   {solution.supply_power_w:.0f} W "
          f"({solution.plane_loss_w:.0f} W lost in the planes)")
    print("middle-row cross-section (V):")
    cross = solution.center_cross_section()
    print("  " + " ".join(f"{v:.2f}" for v in cross[::4]))

    print("\n-- 2. LDO regulation check --")
    ldo = LdoModel()
    worst = min(solution.voltage_at(c) for c in config.tile_coords())
    ok = all(ldo.regulation_ok(solution.voltage_at(c)) for c in config.tile_coords())
    print(f"worst delivered input: {worst:.3f} V (LDO tracks "
          f"{ldo.v_in_min}-{ldo.v_in_max} V)")
    print(f"all tiles regulated within {ldo.v_out_min}-{ldo.v_out_max} V: {ok}")
    print(f"LDO efficiency at the edge:   {ldo.efficiency(2.5, 0.29):.1%}")
    print(f"LDO efficiency at the centre: {ldo.efficiency(1.4, 0.29):.1%}")

    print("\n-- 3. Decap sizing (200mA step, 10ns loop response) --")
    needed = required_decap_f(0.2, 10e-9, droop_budget_v=0.1)
    model = DecapModel(tile_area_mm2(config))
    print(f"required:  {needed * 1e9:.0f} nF")
    print(f"available: {model.capacitance_f * 1e9:.1f} nF "
          f"({model.area_fraction:.0%} of tile area)")
    print(f"transient droop: {model.droop_for_step() * 1e3:.0f} mV "
          f"(budget 100 mV) -> meets band: {model.meets_band()}")

    print("\n-- 4. Delivery-scheme comparison --")
    options = compare_delivery_schemes(config)
    for scheme, option in options.items():
        print(f"{scheme.value:16s} eff={option.end_to_end_efficiency:.2f} "
              f"area+={option.area_overhead_fraction:.0%} "
              f"feasible={option.feasible}")
        print(f"                 {option.notes}")
    print(f"\nre-derived choice: {chosen_scheme(options).value} "
          "(the paper's Section III decision)")


if __name__ == "__main__":
    main()
