#!/usr/bin/env python3
"""End-to-end fault-tolerant bring-up of a waferscale system.

The full life of one (reduced, 8x8) wafer, exactly as Sections V-VII
describe it:

1. show why single-pillar bonding is hopeless (the bonding-informed
   fault map marks ~30% of tiles bad) and draw a realistic dual-pillar-era
   fault map instead — a pessimistic wafer with several faulty tiles;
2. locate the faulty tiles with progressive JTAG chain unrolling, row by
   row;
3. run the clock setup phase and confirm every healthy tile gets the
   forwarded clock;
4. let the kernel assign source-destination pairs to the two networks
   around the faults (with software detours for fully-blocked pairs);
5. boot the system and run distributed BFS on it, validating the result
   against NetworkX.

Run:  python examples/fault_tolerant_bringup.py
"""

from repro import SystemConfig
from repro.arch.system import WaferscaleSystem
from repro.clock.forwarding import render_forwarding_map, simulate_clock_setup
from repro.dft.unrolling import locate_faulty_tiles
from repro.noc.faults import bonding_informed_fault_map, random_fault_map
from repro.noc.kernel import KernelRouter
from repro.workloads.bfs import DistributedBfs, reference_bfs
from repro.workloads.graphs import random_graph


def main() -> None:
    config = SystemConfig(rows=8, cols=8)

    print("-- 1. Assembly: why two pillars per pad --")
    single = bonding_informed_fault_map(config, rng=11, pillars_per_pad=1)
    print(f"single-pillar bonding: {single.fault_count}/{config.tiles} tiles "
          "faulty -- unusable, exactly the paper's Section V argument")
    # Proceed with a pessimistic dual-pillar-era wafer: a few faulty tiles
    # (a perfect dual-pillar map would usually have zero; we want to show
    # the fault-tolerance machinery doing real work).
    fault_map = random_fault_map(config, 5, rng=11)
    print(f"this wafer's faulty tiles: {sorted(fault_map.faulty)}")

    print("\n-- 2. Post-assembly test: progressive chain unrolling per row --")
    located: set = set()
    for row in range(config.rows):
        health = [not fault_map.is_faulty((row, col)) for col in range(config.cols)]
        for col in locate_faulty_tiles(health):
            located.add((row, col))
            print(f"row {row}: fault located at tile ({row}, {col})")
    # Unrolling stops at the first fault per row; re-testing after repair
    # or skip-chaining finds the rest.  For the demo, take the union of
    # what the tester found and proceed with the true map.
    print(f"located by first-pass unrolling: {sorted(located)}")

    print("\n-- 3. Clock setup phase --")
    result = simulate_clock_setup(config, faulty=fault_map.faulty)
    print(render_forwarding_map(result))
    print(f"coverage of healthy tiles: {result.coverage:.1%}, "
          f"deepest chain {result.max_hops} hops")

    print("\n-- 4. Kernel network assignment around the faults --")
    kernel = KernelRouter(fault_map)
    report = kernel.assign_all_pairs(allow_detour=True)
    print(f"pairs: {report.total_pairs}  direct: {report.direct_pairs}  "
          f"detoured: {report.detoured_pairs}  unreachable: {report.unreachable_pairs}")
    print(f"network load balance (XY vs YX): {report.balance:.3f}")

    print("\n-- 5. Boot and run BFS on the degraded wafer --")
    system = WaferscaleSystem(config, fault_map)
    graph = random_graph(500, 5.0, seed=2)
    result_bfs = DistributedBfs(system, graph).run(source=0)
    correct = result_bfs.distance == reference_bfs(graph, 0)
    print(f"graph: {graph.number_of_nodes()} nodes / {graph.number_of_edges()} edges")
    print(f"BFS supersteps: {result_bfs.stats.supersteps}, "
          f"messages: {result_bfs.stats.messages_sent}, "
          f"detoured: {result_bfs.stats.detoured_messages}")
    print(f"BFS matches NetworkX reference: {correct}")


if __name__ == "__main__":
    main()
