#!/usr/bin/env python3
"""The complete wafer bring-up pipeline, start to finish.

Runs :func:`repro.flow.bringup.run_bringup` against a ground-truth fault
scenario and then puts the booted system to work:

1. dead chiplets located by progressive JTAG unrolling (Fig. 10);
2. a memory-faulty tile caught by March C- MBIST;
3. clock setup over the combined fault map (Section IV);
4. the fault map persisted to JSON for the kernel (Section VI);
5. PageRank executed on the surviving tiles, validated against NetworkX;
6. an energy breakdown of the run from the Section V link-energy model.

Run:  python examples/wafer_bringup_pipeline.py
"""

from repro import SystemConfig
from repro.arch.energy import EnergyModel
from repro.clock.forwarding import render_forwarding_map
from repro.flow.bringup import fault_map_to_json, run_bringup
from repro.workloads.graphs import rmat_graph
from repro.workloads.pagerank import DistributedPageRank, reference_pagerank


def main() -> None:
    config = SystemConfig(rows=8, cols=8)
    dead = {(1, 5), (4, 2), (6, 6)}
    memory_bad = {(3, 3)}

    print("-- bring-up --")
    report = run_bringup(
        config,
        true_bonding_faults=dead,
        memory_fault_tiles=memory_bad,
    )
    print(f"unroll located dead tiles:  {sorted(report.bonding_faults)} "
          f"({report.unroll_tests_run} chain tests)")
    print(f"MBIST located memory fails: {sorted(report.memory_faults)} "
          f"({report.mbist_operations} march operations)")
    print(f"clock-unreachable tiles:    {sorted(report.clock_unreachable) or 'none'}")
    print(f"usable tiles: {report.usable_tiles}/{config.tiles}")
    print()
    print(render_forwarding_map(report.clock))

    print("\n-- persisted fault map (kernel input) --")
    print(fault_map_to_json(report.final_map))

    print("\n-- workload on the survivors: PageRank --")
    graph = rmat_graph(8, edge_factor=8, seed=3)
    pagerank = DistributedPageRank(report.system, graph)
    result = pagerank.run(iterations=60)
    reference = reference_pagerank(graph)
    worst = max(abs(result.ranks[v] - reference[v]) for v in graph.nodes)
    print(f"graph: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges")
    print(f"iterations: {result.iterations}, messages: "
          f"{result.stats.messages_sent}, detoured: "
          f"{result.stats.detoured_messages}")
    print(f"max rank error vs NetworkX: {worst:.2e}")

    print("\n-- energy breakdown (Section V link model) --")
    breakdown = EnergyModel(config).emulation_energy(result.stats)
    for label, value in breakdown.rows():
        print(f"  {label:<22} {value}")


if __name__ == "__main__":
    main()
