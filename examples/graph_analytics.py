#!/usr/bin/env python3
"""Graph analytics on the emulated waferscale system (paper Section II).

The paper's motivating workload class: run distributed BFS and SSSP over
three graph shapes (random, grid, RMAT power-law) on an emulated
multi-tile system, report the communication profile each produces, and
validate every result against NetworkX.

Run:  python examples/graph_analytics.py
"""

from repro import SystemConfig
from repro.arch.system import WaferscaleSystem
from repro.workloads.bfs import DistributedBfs, reference_bfs
from repro.workloads.graphs import grid_graph, random_graph, rmat_graph
from repro.workloads.sssp import DistributedSssp, reference_sssp


def main() -> None:
    system = WaferscaleSystem(SystemConfig(rows=4, cols=4))

    graphs = {
        "random (n=600, d=6)": random_graph(600, 6.0, seed=1, weighted=True),
        "grid 24x24": grid_graph(24, weighted=True),
        "RMAT scale 9": rmat_graph(9, edge_factor=8, seed=1, weighted=True),
    }

    header = (
        f"{'graph':>20} {'kernel':>6} {'steps':>6} {'msgs':>8} "
        f"{'hops/msg':>9} {'cycles':>9} {'ok':>4}"
    )
    print(header)
    print("-" * len(header))

    for name, graph in graphs.items():
        bfs = DistributedBfs(system, graph).run(source=0)
        bfs_ok = bfs.distance == reference_bfs(graph, 0)
        print(f"{name:>20} {'BFS':>6} {bfs.stats.supersteps:>6} "
              f"{bfs.stats.messages_sent:>8} "
              f"{bfs.stats.mean_hops_per_message:>9.2f} "
              f"{bfs.stats.total_cycles:>9} {str(bfs_ok):>4}")

        sssp = DistributedSssp(system, graph).run(source=0)
        ref = reference_sssp(graph, 0)
        sssp_ok = all(
            abs(sssp.distance[n] - d) < 1e-9 for n, d in ref.items()
        ) and set(sssp.distance) == set(ref)
        print(f"{name:>20} {'SSSP':>6} {sssp.stats.supersteps:>6} "
              f"{sssp.stats.messages_sent:>8} "
              f"{sssp.stats.mean_hops_per_message:>9.2f} "
              f"{sssp.stats.total_cycles:>9} {str(sssp_ok):>4}")

    print("\nObservations (matching the paper's motivation):")
    print(" * BFS supersteps track graph diameter: the grid needs many")
    print("   shallow steps, the power-law RMAT very few wide ones.")
    print(" * SSSP label correction re-sends improvements, so weighted")
    print("   graphs produce more messages than their BFS runs.")


if __name__ == "__main__":
    main()
